//! The wire protocol: length-prefixed binary frames over any byte
//! stream (TCP in production, `Vec<u8>` buffers in tests).
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload. Requests carry a client-chosen correlation id, an optional
//! relative deadline, and a fully self-describing parameter binding for
//! one of the 25 BI or 14 Interactive complex queries — the server
//! never needs out-of-band context to execute a request, so any client
//! that speaks the codec can drive it. Responses echo the correlation
//! id with either an execution summary (row count, result fingerprint,
//! queue wait, execution time, optional operator profile) or a typed
//! error from the service taxonomy ([`ErrorKind`]).
//!
//! The codec is hand-rolled (the container has no serde): integers are
//! little-endian, strings are `u16` length + UTF-8 bytes, string lists
//! are `u16` count + strings. [`encode_params`]/[`decode_params`] are
//! exact inverses for every binding the parameter generator can
//! produce, which the round-trip tests pin down.

use snb_bi::BiParams;
use snb_core::Date;
use snb_engine::QueryProfile;
use snb_interactive::{IcParams, IsParams};

/// Protocol version byte leading every request and response payload.
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on a sane frame payload; anything larger is treated as a
/// protocol error rather than an allocation request.
pub const MAX_FRAME: u32 = 1 << 20;

/// A parameter binding for either workload — the unit of work a client
/// submits.
#[derive(Clone, Debug)]
pub enum ServiceParams {
    /// A Business Intelligence query (BI 1–25).
    Bi(BiParams),
    /// An Interactive complex read (IC 1–14).
    Ic(IcParams),
    /// An Interactive short read (IS 1–7): single-entity lookups and
    /// one-hop expansions — the latency-critical traffic class.
    Is(IsParams),
    /// A sequenced update/delete batch for the write path.
    Write(WriteBatch),
}

/// The admission lane a request is classified into. Each lane has its
/// own bounded queue, capacity, default deadline, and shed policy
/// (see [`crate::queue::LaneQueues`]); the read lanes are drained by a
/// weighted scheduler that guarantees short-read progress while heavy
/// analytical queries flood the service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// IS/IC short reads: sublinear point lookups and bounded
    /// traversals that must stay fast under analytical load.
    Short,
    /// Heavy BI analytical reads (BI 1–25).
    Heavy,
    /// Sequenced durable write batches.
    Write,
}

impl Lane {
    /// Stable lower-case name used in logs, error details, and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Short => "short",
            Lane::Heavy => "heavy",
            Lane::Write => "write",
        }
    }

    /// Lane index into per-lane arrays (`short = 0`, `heavy = 1`,
    /// `write = 2`).
    pub fn index(self) -> usize {
        match self {
            Lane::Short => 0,
            Lane::Heavy => 1,
            Lane::Write => 2,
        }
    }

    /// All lanes, in index order.
    pub const ALL: [Lane; 3] = [Lane::Short, Lane::Heavy, Lane::Write];
}

/// One sequenced write batch. Sequence numbers are assigned by the
/// client, start at 1, and must be contiguous: the server applies
/// `last_applied + 1`, acknowledges (without re-applying) anything at or
/// below `last_applied`, and rejects gaps — which makes blind
/// re-submission after a lost ack safe (exactly-once apply, at-least-once
/// delivery).
#[derive(Clone, Debug)]
pub struct WriteBatch {
    /// Client-assigned contiguous batch sequence number (1-based).
    pub seq: u64,
    /// The operations to apply atomically with respect to acks.
    pub ops: WriteOps,
}

/// The payload of a write batch.
#[derive(Clone, Debug)]
pub enum WriteOps {
    /// Insert events (IU 1–8) in stream order.
    Updates(Vec<snb_datagen::stream::TimedEvent>),
    /// A delete batch (DEL 1–8 flavours, cascades applied store-side).
    Deletes(Vec<snb_store::DeleteOp>),
}

impl WriteOps {
    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        match self {
            WriteOps::Updates(v) => v.len(),
            WriteOps::Deletes(v) => v.len(),
        }
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The wire tag occupying the query-number slot (1 = updates,
    /// 2 = deletes).
    pub(crate) fn query_tag(&self) -> u8 {
        match self {
            WriteOps::Updates(_) => 1,
            WriteOps::Deletes(_) => 2,
        }
    }
}

impl ServiceParams {
    /// Workload tag + query number, e.g. `("BI", 4)`. Write batches
    /// report the op-family in place of a query number (1 = updates,
    /// 2 = deletes).
    pub fn label(&self) -> (&'static str, u8) {
        match self {
            ServiceParams::Bi(p) => ("BI", p.query()),
            ServiceParams::Ic(p) => ("IC", p.query()),
            ServiceParams::Is(p) => ("IS", p.query()),
            ServiceParams::Write(b) => {
                ("WR", if matches!(b.ops, WriteOps::Updates(_)) { 1 } else { 2 })
            }
        }
    }

    /// The admission lane this binding is classified into: IS and IC
    /// reads ride the short lane, BI analytics the heavy lane, write
    /// batches the write lane. Classification is static — it depends
    /// only on the workload family, so a client can predict the lane
    /// (and its shed policy) from the request alone.
    pub fn lane(&self) -> Lane {
        match self {
            ServiceParams::Is(_) | ServiceParams::Ic(_) => Lane::Short,
            ServiceParams::Bi(_) => Lane::Heavy,
            ServiceParams::Write(_) => Lane::Write,
        }
    }

    /// A stable FNV-1a hash of the binding (over its `Debug` form) —
    /// the access-log key tying latency records back to bindings. Write
    /// batches hash to their sequence number: the identity that matters
    /// for dedupe tracing, and far cheaper than formatting the payload.
    pub fn binding_hash(&self) -> u64 {
        let s = match self {
            ServiceParams::Write(b) => return b.seq,
            other => format!("{other:?}"),
        };
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

/// One client request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Relative deadline in microseconds from server admission; `0`
    /// means "no deadline" (the server default applies).
    pub deadline_us: u64,
    /// Bounded-staleness floor: the server must have applied at least
    /// this write sequence number before serving the read, else it
    /// answers [`ErrorKind::StaleRead`]. `0` means "any version" —
    /// every request before replication existed, and every client that
    /// doesn't care about freshness.
    pub min_seq: u64,
    /// The query binding to execute.
    pub params: ServiceParams,
}

/// The service error taxonomy — every non-OK outcome a request can
/// have, as a closed set so clients can switch on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The admission queue was full; the request was shed, not queued.
    Overloaded,
    /// The request's deadline passed before a worker picked it up; it
    /// was not executed.
    DeadlineExceeded,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The request frame failed to decode.
    BadRequest,
    /// The query itself failed (store-level error).
    Internal,
    /// A write panicked mid-apply and the store may hold a half-applied
    /// batch; all requests are refused until the operator restarts the
    /// server, which recovers a consistent image from the WAL.
    StorePoisoned,
    /// The request started inside its budget but overran the deadline
    /// mid-execution: the work was done (and is reflected in exec
    /// time), but the result arrived too late to be useful. Terminal —
    /// retrying a spent deadline only burns more of the caller's
    /// budget.
    DeadlineOverrun,
    /// A write was sent to a read-only replica. Terminal with redirect:
    /// re-sending the same write here can never succeed — the client
    /// must route it to the primary instead. The detail names the
    /// node's role so operators can see misrouted traffic in logs.
    NotPrimary,
    /// A read demanded `min_seq` freshness the node hasn't replayed
    /// yet. Retryable — replication lag drains, so the same request
    /// sent a moment later (or to a fresher node) succeeds.
    StaleRead,
    /// The node observed a higher fencing epoch: it *was* a primary,
    /// but a follower has since been promoted, and acking writes here
    /// would fork history. Terminal with redirect — like
    /// [`ErrorKind::NotPrimary`], the detail carries the current
    /// primary's address when known.
    Fenced,
}

impl ErrorKind {
    fn code(self) -> u8 {
        match self {
            ErrorKind::Overloaded => 1,
            ErrorKind::DeadlineExceeded => 2,
            ErrorKind::ShuttingDown => 3,
            ErrorKind::BadRequest => 4,
            ErrorKind::Internal => 5,
            ErrorKind::StorePoisoned => 6,
            ErrorKind::DeadlineOverrun => 7,
            ErrorKind::NotPrimary => 8,
            ErrorKind::StaleRead => 9,
            ErrorKind::Fenced => 10,
        }
    }

    fn from_code(code: u8) -> Option<ErrorKind> {
        match code {
            1 => Some(ErrorKind::Overloaded),
            2 => Some(ErrorKind::DeadlineExceeded),
            3 => Some(ErrorKind::ShuttingDown),
            4 => Some(ErrorKind::BadRequest),
            5 => Some(ErrorKind::Internal),
            6 => Some(ErrorKind::StorePoisoned),
            7 => Some(ErrorKind::DeadlineOverrun),
            8 => Some(ErrorKind::NotPrimary),
            9 => Some(ErrorKind::StaleRead),
            10 => Some(ErrorKind::Fenced),
            _ => None,
        }
    }

    /// Stable lower-case name used in logs and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Internal => "internal",
            ErrorKind::StorePoisoned => "store_poisoned",
            ErrorKind::DeadlineOverrun => "deadline_overrun",
            ErrorKind::NotPrimary => "not_primary",
            ErrorKind::StaleRead => "stale_read",
            ErrorKind::Fenced => "fenced",
        }
    }
}

/// A successful execution summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OkBody {
    /// Result row count.
    pub rows: u64,
    /// Order-sensitive result fingerprint (0 for Interactive reads,
    /// which report row counts only).
    pub fingerprint: u64,
    /// Time the request spent queued before a worker picked it up.
    pub queue_us: u64,
    /// Pure execution time.
    pub exec_us: u64,
    /// The highest write sequence number applied to the store version
    /// this request observed — the bounded-staleness stamp. A client
    /// computes its lag as `primary_seq - applied_seq`, and can demand
    /// freshness with [`Request::min_seq`].
    pub applied_seq: u64,
    /// Operator counters for this request (present when the server runs
    /// with per-request profiling enabled).
    pub profile: Option<QueryProfile>,
}

/// One server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Correlation id copied from the request.
    pub id: u64,
    /// Execution summary or typed error.
    pub body: Result<OkBody, ErrorBody>,
}

/// The error arm of a response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorBody {
    /// Which taxonomy entry this is.
    pub kind: ErrorKind,
    /// Queue wait observed before the outcome (meaningful for
    /// `DeadlineExceeded`; 0 for sheds, which are never queued).
    pub queue_us: u64,
    /// Human-readable detail.
    pub detail: String,
}

/// A decode failure (malformed frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The correlation id, when enough of the frame was readable to
    /// recover it — lets the server send a typed `BadRequest` back.
    pub id: Option<u64>,
    /// What was wrong.
    pub detail: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.detail)
    }
}

// ---------------------------------------------------------------------
// Primitive put/get helpers.
// ---------------------------------------------------------------------

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    put_u16(buf, bytes.len().min(u16::MAX as usize) as u16);
    buf.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

pub(crate) fn put_strs(buf: &mut Vec<u8>, ss: &[String]) {
    put_u16(buf, ss.len().min(u16::MAX as usize) as u16);
    for s in ss {
        put_str(buf, s);
    }
}

pub(crate) fn put_date(buf: &mut Vec<u8>, d: Date) {
    put_i32(buf, d.0);
}

/// A bounds-checked read cursor over a frame payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Correlation id once parsed, for error attribution.
    id: Option<u64>,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0, id: None }
    }

    pub(crate) fn err(&self, detail: impl Into<String>) -> DecodeError {
        DecodeError { id: self.id, detail: detail.into() }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(self.err(format!(
                "truncated frame: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid UTF-8 in string"))
    }

    pub(crate) fn strings(&mut self) -> Result<Vec<String>, DecodeError> {
        let n = self.u16()? as usize;
        (0..n).map(|_| self.string()).collect()
    }

    pub(crate) fn date(&mut self) -> Result<Date, DecodeError> {
        Ok(Date(self.i32()?))
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn finish(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(
                self.err(format!("{} trailing bytes after payload", self.buf.len() - self.pos))
            );
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Binding codec.
// ---------------------------------------------------------------------

const WORKLOAD_BI: u8 = 0;
const WORKLOAD_IC: u8 = 1;
const WORKLOAD_WR: u8 = 2;
const WORKLOAD_IS: u8 = 3;

/// Serialises a binding (workload byte + query byte + fields).
pub fn encode_params(buf: &mut Vec<u8>, params: &ServiceParams) {
    match params {
        ServiceParams::Bi(p) => {
            put_u8(buf, WORKLOAD_BI);
            put_u8(buf, p.query());
            encode_bi(buf, p);
        }
        ServiceParams::Ic(p) => {
            put_u8(buf, WORKLOAD_IC);
            put_u8(buf, p.query());
            encode_ic(buf, p);
        }
        ServiceParams::Is(p) => {
            put_u8(buf, WORKLOAD_IS);
            put_u8(buf, p.query());
            put_u64(buf, p.key());
        }
        ServiceParams::Write(b) => {
            put_u8(buf, WORKLOAD_WR);
            put_u8(buf, b.ops.query_tag());
            put_u64(buf, b.seq);
            crate::events::encode_write_ops(buf, &b.ops);
        }
    }
}

fn encode_bi(buf: &mut Vec<u8>, p: &BiParams) {
    use snb_bi::*;
    match p {
        BiParams::Q1(q) => put_date(buf, q.date),
        BiParams::Q2(q) => {
            put_date(buf, q.start_date);
            put_date(buf, q.end_date);
            put_str(buf, &q.country1);
            put_str(buf, &q.country2);
            put_u64(buf, q.min_count);
        }
        BiParams::Q3(q) => {
            put_i32(buf, q.year);
            put_u32(buf, q.month);
        }
        BiParams::Q4(q) => {
            put_str(buf, &q.tag_class);
            put_str(buf, &q.country);
        }
        BiParams::Q5(q) => put_str(buf, &q.country),
        BiParams::Q6(q) => put_str(buf, &q.tag),
        BiParams::Q7(q) => put_str(buf, &q.tag),
        BiParams::Q8(q) => put_str(buf, &q.tag),
        BiParams::Q9(q) => {
            put_str(buf, &q.tag_class1);
            put_str(buf, &q.tag_class2);
            put_u64(buf, q.threshold);
        }
        BiParams::Q10(q) => {
            put_str(buf, &q.tag);
            put_date(buf, q.date);
        }
        BiParams::Q11(q) => {
            put_str(buf, &q.country);
            put_strs(buf, &q.blacklist);
        }
        BiParams::Q12(q) => {
            put_date(buf, q.date);
            put_u64(buf, q.like_threshold);
        }
        BiParams::Q13(q) => put_str(buf, &q.country),
        BiParams::Q14(q) => {
            put_date(buf, q.begin);
            put_date(buf, q.end);
        }
        BiParams::Q15(q) => put_str(buf, &q.country),
        BiParams::Q16(q) => {
            put_u64(buf, q.person_id);
            put_str(buf, &q.country);
            put_str(buf, &q.tag_class);
            put_u32(buf, q.min_path_distance);
            put_u32(buf, q.max_path_distance);
        }
        BiParams::Q17(q) => put_str(buf, &q.country),
        BiParams::Q18(q) => {
            put_date(buf, q.date);
            put_u32(buf, q.length_threshold);
            put_strs(buf, &q.languages);
        }
        BiParams::Q19(q) => {
            put_date(buf, q.date);
            put_str(buf, &q.tag_class1);
            put_str(buf, &q.tag_class2);
        }
        BiParams::Q20(q) => put_strs(buf, &q.tag_classes),
        BiParams::Q21(q) => {
            put_str(buf, &q.country);
            put_date(buf, q.end_date);
        }
        BiParams::Q22(q) => {
            put_str(buf, &q.country1);
            put_str(buf, &q.country2);
        }
        BiParams::Q23(q) => put_str(buf, &q.country),
        BiParams::Q24(q) => put_str(buf, &q.tag_class),
        BiParams::Q25(q) => {
            put_u64(buf, q.person1_id);
            put_u64(buf, q.person2_id);
            put_date(buf, q.start_date);
            put_date(buf, q.end_date);
        }
    }
}

fn encode_ic(buf: &mut Vec<u8>, p: &IcParams) {
    use snb_interactive::*;
    match p {
        IcParams::Q1(q) => {
            put_u64(buf, q.person_id);
            put_str(buf, &q.first_name);
        }
        IcParams::Q2(q) => {
            put_u64(buf, q.person_id);
            put_date(buf, q.max_date);
        }
        IcParams::Q3(q) => {
            put_u64(buf, q.person_id);
            put_str(buf, &q.country_x);
            put_str(buf, &q.country_y);
            put_date(buf, q.start_date);
            put_u32(buf, q.duration_days);
        }
        IcParams::Q4(q) => {
            put_u64(buf, q.person_id);
            put_date(buf, q.start_date);
            put_u32(buf, q.duration_days);
        }
        IcParams::Q5(q) => {
            put_u64(buf, q.person_id);
            put_date(buf, q.min_date);
        }
        IcParams::Q6(q) => {
            put_u64(buf, q.person_id);
            put_str(buf, &q.tag_name);
        }
        IcParams::Q7(q) => put_u64(buf, q.person_id),
        IcParams::Q8(q) => put_u64(buf, q.person_id),
        IcParams::Q9(q) => {
            put_u64(buf, q.person_id);
            put_date(buf, q.max_date);
        }
        IcParams::Q10(q) => {
            put_u64(buf, q.person_id);
            put_u32(buf, q.month);
        }
        IcParams::Q11(q) => {
            put_u64(buf, q.person_id);
            put_str(buf, &q.country);
            put_i32(buf, q.work_from_year);
        }
        IcParams::Q12(q) => {
            put_u64(buf, q.person_id);
            put_str(buf, &q.tag_class_name);
        }
        IcParams::Q13(q) => {
            put_u64(buf, q.person1_id);
            put_u64(buf, q.person2_id);
        }
        IcParams::Q14(q) => {
            put_u64(buf, q.person1_id);
            put_u64(buf, q.person2_id);
        }
    }
}

fn decode_bi(r: &mut Reader<'_>, query: u8) -> Result<BiParams, DecodeError> {
    use snb_bi::*;
    Ok(match query {
        1 => BiParams::Q1(bi01::Params { date: r.date()? }),
        2 => BiParams::Q2(bi02::Params {
            start_date: r.date()?,
            end_date: r.date()?,
            country1: r.string()?,
            country2: r.string()?,
            min_count: r.u64()?,
        }),
        3 => BiParams::Q3(bi03::Params { year: r.i32()?, month: r.u32()? }),
        4 => BiParams::Q4(bi04::Params { tag_class: r.string()?, country: r.string()? }),
        5 => BiParams::Q5(bi05::Params { country: r.string()? }),
        6 => BiParams::Q6(bi06::Params { tag: r.string()? }),
        7 => BiParams::Q7(bi07::Params { tag: r.string()? }),
        8 => BiParams::Q8(bi08::Params { tag: r.string()? }),
        9 => BiParams::Q9(bi09::Params {
            tag_class1: r.string()?,
            tag_class2: r.string()?,
            threshold: r.u64()?,
        }),
        10 => BiParams::Q10(bi10::Params { tag: r.string()?, date: r.date()? }),
        11 => BiParams::Q11(bi11::Params { country: r.string()?, blacklist: r.strings()? }),
        12 => BiParams::Q12(bi12::Params { date: r.date()?, like_threshold: r.u64()? }),
        13 => BiParams::Q13(bi13::Params { country: r.string()? }),
        14 => BiParams::Q14(bi14::Params { begin: r.date()?, end: r.date()? }),
        15 => BiParams::Q15(bi15::Params { country: r.string()? }),
        16 => BiParams::Q16(bi16::Params {
            person_id: r.u64()?,
            country: r.string()?,
            tag_class: r.string()?,
            min_path_distance: r.u32()?,
            max_path_distance: r.u32()?,
        }),
        17 => BiParams::Q17(bi17::Params { country: r.string()? }),
        18 => BiParams::Q18(bi18::Params {
            date: r.date()?,
            length_threshold: r.u32()?,
            languages: r.strings()?,
        }),
        19 => BiParams::Q19(bi19::Params {
            date: r.date()?,
            tag_class1: r.string()?,
            tag_class2: r.string()?,
        }),
        20 => BiParams::Q20(bi20::Params { tag_classes: r.strings()? }),
        21 => BiParams::Q21(bi21::Params { country: r.string()?, end_date: r.date()? }),
        22 => BiParams::Q22(bi22::Params { country1: r.string()?, country2: r.string()? }),
        23 => BiParams::Q23(bi23::Params { country: r.string()? }),
        24 => BiParams::Q24(bi24::Params { tag_class: r.string()? }),
        25 => BiParams::Q25(bi25::Params {
            person1_id: r.u64()?,
            person2_id: r.u64()?,
            start_date: r.date()?,
            end_date: r.date()?,
        }),
        other => return Err(r.err(format!("unknown BI query {other}"))),
    })
}

fn decode_ic(r: &mut Reader<'_>, query: u8) -> Result<IcParams, DecodeError> {
    use snb_interactive::*;
    Ok(match query {
        1 => IcParams::Q1(ic01::Params { person_id: r.u64()?, first_name: r.string()? }),
        2 => IcParams::Q2(ic02::Params { person_id: r.u64()?, max_date: r.date()? }),
        3 => IcParams::Q3(ic03::Params {
            person_id: r.u64()?,
            country_x: r.string()?,
            country_y: r.string()?,
            start_date: r.date()?,
            duration_days: r.u32()?,
        }),
        4 => IcParams::Q4(ic04::Params {
            person_id: r.u64()?,
            start_date: r.date()?,
            duration_days: r.u32()?,
        }),
        5 => IcParams::Q5(ic05::Params { person_id: r.u64()?, min_date: r.date()? }),
        6 => IcParams::Q6(ic06::Params { person_id: r.u64()?, tag_name: r.string()? }),
        7 => IcParams::Q7(ic07::Params { person_id: r.u64()? }),
        8 => IcParams::Q8(ic08::Params { person_id: r.u64()? }),
        9 => IcParams::Q9(ic09::Params { person_id: r.u64()?, max_date: r.date()? }),
        10 => IcParams::Q10(ic10::Params { person_id: r.u64()?, month: r.u32()? }),
        11 => IcParams::Q11(ic11::Params {
            person_id: r.u64()?,
            country: r.string()?,
            work_from_year: r.i32()?,
        }),
        12 => IcParams::Q12(ic12::Params { person_id: r.u64()?, tag_class_name: r.string()? }),
        13 => IcParams::Q13(ic13::Params { person1_id: r.u64()?, person2_id: r.u64()? }),
        14 => IcParams::Q14(ic14::Params { person1_id: r.u64()?, person2_id: r.u64()? }),
        other => return Err(r.err(format!("unknown IC query {other}"))),
    })
}

// ---------------------------------------------------------------------
// Request / response payloads.
// ---------------------------------------------------------------------

/// Serialises a request into a frame payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u8(&mut buf, PROTO_VERSION);
    put_u64(&mut buf, req.id);
    put_u64(&mut buf, req.deadline_us);
    put_u64(&mut buf, req.min_seq);
    encode_params(&mut buf, &req.params);
    buf
}

/// Everything the reactor needs before handing a raw frame to a lane
/// worker: the correlation id (for typed error replies), the header
/// fields admission gates on, and the lane (which queue to enqueue the
/// undecoded frame into). Full binding decode happens on the worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestHeader {
    /// Client correlation id.
    pub id: u64,
    /// Relative deadline in microseconds (`0` = server default).
    pub deadline_us: u64,
    /// Bounded-staleness floor (`0` = any version).
    pub min_seq: u64,
    /// Admission lane, derived from the workload tag byte.
    pub lane: Lane,
}

/// Parses just the fixed-offset request header — version, id, deadline,
/// staleness floor, and the workload byte that determines the lane —
/// without touching the binding payload. This is the reactor's entire
/// per-frame parse: a few bounds-checked reads, so a peer sending
/// parse-heavy bindings cannot stall transport reads for everyone else.
/// The binding itself is decoded later on a lane worker, which still
/// answers a typed `bad_request` on failure.
pub fn peek_header(payload: &[u8]) -> Result<RequestHeader, DecodeError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != PROTO_VERSION {
        return Err(r.err(format!("unsupported protocol version {version}")));
    }
    let id = r.u64()?;
    r.id = Some(id);
    let deadline_us = r.u64()?;
    let min_seq = r.u64()?;
    let lane = match r.u8()? {
        WORKLOAD_BI => Lane::Heavy,
        WORKLOAD_IC | WORKLOAD_IS => Lane::Short,
        WORKLOAD_WR => Lane::Write,
        other => return Err(r.err(format!("unknown workload tag {other}"))),
    };
    Ok(RequestHeader { id, deadline_us, min_seq, lane })
}

/// Parses a request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != PROTO_VERSION {
        return Err(r.err(format!("unsupported protocol version {version}")));
    }
    let id = r.u64()?;
    r.id = Some(id);
    let deadline_us = r.u64()?;
    let min_seq = r.u64()?;
    let workload = r.u8()?;
    let query = r.u8()?;
    let params = match workload {
        WORKLOAD_BI => ServiceParams::Bi(decode_bi(&mut r, query)?),
        WORKLOAD_IC => ServiceParams::Ic(decode_ic(&mut r, query)?),
        WORKLOAD_IS => {
            let id = r.u64()?;
            ServiceParams::Is(
                IsParams::from_parts(query, id)
                    .ok_or_else(|| r.err(format!("unknown IS query {query}")))?,
            )
        }
        WORKLOAD_WR => {
            let seq = r.u64()?;
            let ops = crate::events::decode_write_ops(&mut r, query)?;
            ServiceParams::Write(WriteBatch { seq, ops })
        }
        other => return Err(r.err(format!("unknown workload tag {other}"))),
    };
    r.finish()?;
    Ok(Request { id, deadline_us, min_seq, params })
}

const STATUS_OK: u8 = 0;

fn encode_profile(buf: &mut Vec<u8>, profile: &Option<QueryProfile>) {
    match profile {
        None => put_u8(buf, 0),
        Some(p) => {
            put_u8(buf, 1);
            for v in [
                p.par_calls,
                p.morsels,
                p.rows_scanned,
                p.index_hits,
                p.index_rows,
                p.index_fallbacks,
                p.fallback_rows,
                p.topk_offered,
                p.topk_pruned,
                p.edges_traversed,
            ] {
                put_u64(buf, v);
            }
        }
    }
}

fn decode_profile(r: &mut Reader<'_>) -> Result<Option<QueryProfile>, DecodeError> {
    if r.u8()? == 0 {
        return Ok(None);
    }
    Ok(Some(QueryProfile {
        par_calls: r.u64()?,
        morsels: r.u64()?,
        rows_scanned: r.u64()?,
        index_hits: r.u64()?,
        index_rows: r.u64()?,
        index_fallbacks: r.u64()?,
        fallback_rows: r.u64()?,
        topk_offered: r.u64()?,
        topk_pruned: r.u64()?,
        edges_traversed: r.u64()?,
        worker_busy_ns: Vec::new(),
    }))
}

/// Serialises a response into a frame payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u8(&mut buf, PROTO_VERSION);
    put_u64(&mut buf, resp.id);
    match &resp.body {
        Ok(ok) => {
            put_u8(&mut buf, STATUS_OK);
            put_u64(&mut buf, ok.rows);
            put_u64(&mut buf, ok.fingerprint);
            put_u64(&mut buf, ok.queue_us);
            put_u64(&mut buf, ok.exec_us);
            put_u64(&mut buf, ok.applied_seq);
            encode_profile(&mut buf, &ok.profile);
        }
        Err(e) => {
            put_u8(&mut buf, e.kind.code());
            put_u64(&mut buf, e.queue_us);
            put_str(&mut buf, &e.detail);
        }
    }
    buf
}

/// Parses a response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != PROTO_VERSION {
        return Err(r.err(format!("unsupported protocol version {version}")));
    }
    let id = r.u64()?;
    r.id = Some(id);
    let status = r.u8()?;
    let body = if status == STATUS_OK {
        Ok(OkBody {
            rows: r.u64()?,
            fingerprint: r.u64()?,
            queue_us: r.u64()?,
            exec_us: r.u64()?,
            applied_seq: r.u64()?,
            profile: decode_profile(&mut r)?,
        })
    } else {
        let kind = ErrorKind::from_code(status)
            .ok_or_else(|| r.err(format!("unknown status code {status}")))?;
        Err(ErrorBody { kind, queue_us: r.u64()?, detail: r.string()? })
    };
    r.finish()?;
    Ok(Response { id, body })
}

// ---------------------------------------------------------------------
// Framing over byte streams.
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Extracts the next complete frame from `buf`, draining its bytes.
/// Returns `Ok(None)` when the buffer does not yet hold a full frame,
/// and an error for oversized length prefixes (protocol violation).
pub fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, DecodeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(DecodeError {
            id: None,
            detail: format!("frame length {len} exceeds maximum {MAX_FRAME}"),
        });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = buf[4..total].to_vec();
    buf.drain(..total);
    Ok(Some(payload))
}

/// Reads one length-prefixed frame from a blocking reader.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds maximum {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------
// Replication frames.
// ---------------------------------------------------------------------

/// Version byte leading every replication frame payload. Separate from
/// [`PROTO_VERSION`] so the shipping protocol can evolve without
/// breaking query clients.
pub const REPL_VERSION: u8 = 1;

const REPL_HELLO: u8 = 1;
const REPL_RECORD: u8 = 2;
const REPL_CAUGHT_UP: u8 = 3;
const REPL_HEARTBEAT: u8 = 4;
const REPL_PROMOTE: u8 = 5;
const REPL_PROMOTED: u8 = 6;
const REPL_DENY: u8 = 7;
const REPL_ANNOUNCE: u8 = 8;
const REPL_IMAGE_OFFER: u8 = 9;
const REPL_IMAGE_CHUNK: u8 = 10;

/// Largest `data` run carried by a single [`ReplFrame::ImageChunk`].
/// Comfortably under [`MAX_FRAME`] (1 MiB) with headroom for the frame
/// envelope, version byte, tag, and offset.
pub const IMAGE_CHUNK_BYTES: usize = 256 * 1024;

/// One frame of the log-shipping protocol, spoken on the replication
/// listener (a separate port from query traffic). A follower opens the
/// stream with `Hello`; the primary replays the acked WAL tail as
/// `Record`s, marks the live edge with `CaughtUp`, then keeps shipping
/// new records interleaved with `Heartbeat`s. `Promote`/`Promoted` ride
/// the same codec because the operator (or failover harness) speaks to
/// the follower's own replication listener to flip it writable.
///
/// Every primary-originated frame is stamped with the sender's
/// **fencing epoch**: a receiver that knows a higher term drops the
/// connection (the sender is a zombie), and a receiver that sees a
/// higher term adopts it. The epoch is durable (WAL header) and bumped
/// on promotion *before* the node goes writable, so two nodes can
/// never ack writes under the same term.
#[derive(Clone, Debug)]
pub enum ReplFrame {
    /// Follower → primary: subscribe to the log from `from_seq`
    /// (exclusive — the follower already has everything at or below
    /// it). Scale/seed/partitions must match the primary's or it
    /// answers `Deny`: shipping records into a store built from a
    /// different deterministic world would corrupt it silently.
    Hello {
        /// The follower's configured scale label.
        scale: String,
        /// The follower's datagen seed.
        seed: u64,
        /// The follower's partition count.
        partitions: u32,
        /// Ship records with `seq > from_seq`.
        from_seq: u64,
        /// The highest fencing epoch the follower has observed. A
        /// primary whose own epoch is lower has been fenced and must
        /// refuse the subscription (and stop acking writes).
        epoch: u64,
    },
    /// Primary → follower: one acked WAL record. `partition` is the
    /// segment the record lives in on the primary — followers write it
    /// to the same segment so their WAL layout mirrors the primary's
    /// and a promoted follower's log is indistinguishable from a
    /// primary's.
    Record {
        /// Global write sequence number.
        seq: u64,
        /// Originating WAL partition.
        partition: u32,
        /// The batch payload.
        ops: WriteOps,
        /// The shipping primary's fencing epoch.
        epoch: u64,
    },
    /// Primary → follower: the backlog through `through_seq` has been
    /// shipped; everything after this frame is live tail. The follower
    /// uses it to mark catch-up complete (and stamp catch-up duration).
    CaughtUp {
        /// Highest sequence shipped before this marker.
        through_seq: u64,
    },
    /// Primary → follower: periodic liveness + lag beacon carrying the
    /// primary's current acked high-water mark.
    Heartbeat {
        /// The primary's flushed (acked) sequence high-water mark.
        last_seq: u64,
        /// The sender's fencing epoch — a follower that knows a higher
        /// term treats the sender as a zombie and drops the stream.
        epoch: u64,
    },
    /// Operator → follower: stop following, become a writable primary
    /// at (at least) `epoch`. Idempotent — promoting an
    /// already-promoted node re-acks. The addresses let the promoted
    /// node announce itself: `repl_addr`/`client_addr` are *its own*
    /// advertised endpoints (carried back to siblings and clients),
    /// `siblings` lists the replication listeners of the other nodes —
    /// including, ideally, the old primary's, so a partitioned zombie
    /// gets fenced the moment the partition heals.
    Promote {
        /// Minimum term to promote into; the node takes
        /// `max(own + 1, epoch)`. `0` lets the node pick.
        epoch: u64,
        /// The promoted node's own replication listener address, as
        /// siblings should dial it. Empty = don't announce.
        repl_addr: String,
        /// The promoted node's query listener address, for client
        /// redirect hints. Empty = unknown.
        client_addr: String,
        /// Replication listeners of surviving siblings (and the old
        /// primary) to notify with [`ReplFrame::Announce`].
        siblings: Vec<String>,
    },
    /// Follower → operator: promotion done; writes are accepted from
    /// `seq + 1` onward under term `epoch`.
    Promoted {
        /// The node's last applied sequence at promotion.
        seq: u64,
        /// The durably bumped fencing epoch the node now serves at.
        epoch: u64,
    },
    /// Either side: the request was refused (mismatched world, Hello to
    /// a non-primary, promote of a node that can't promote). Carries
    /// the denier's epoch so a zombie that subscribes somewhere learns
    /// it was fenced.
    Deny {
        /// Why.
        detail: String,
        /// The denier's fencing epoch (0 when irrelevant).
        epoch: u64,
    },
    /// New primary → any node's replication listener: "I am the
    /// primary at `epoch`; re-subscribe to `repl_addr`". A read-only
    /// node adopts the target and its follower loop reconnects there; a
    /// writable node with a lower term fences itself (it is the
    /// zombie). Acked with a [`ReplFrame::Heartbeat`]; denied (with the
    /// higher term) if the receiver's epoch is newer.
    Announce {
        /// The announcing primary's fencing epoch.
        epoch: u64,
        /// The announcing primary's replication listener address.
        repl_addr: String,
        /// The announcing primary's query listener address (redirect
        /// hint for clients).
        client_addr: String,
    },
    /// Primary → follower: "instead of replaying the whole history,
    /// here comes a store image covering everything through `seq`".
    /// Sent before any `Record` when the subscriber's `from_seq` is so
    /// far behind the primary's image that log replay would be slower
    /// (or the shipped tail no longer reaches back that far). The raw
    /// image file follows as [`ReplFrame::ImageChunk`]s; after `len`
    /// bytes have been shipped the primary resumes normal `Record`
    /// shipping from `seq`. The follower assembles the blob, verifies
    /// `checksum` (FNV-1a 64 over the whole file), installs it
    /// atomically, and only then applies the tail.
    ImageOffer {
        /// The image covers every write with sequence ≤ this.
        seq: u64,
        /// The fencing epoch the image was written under.
        epoch: u64,
        /// Total image file length in bytes (header + body).
        len: u64,
        /// FNV-1a 64 of the whole file, checked after reassembly.
        checksum: u64,
        /// The shipping primary's current fencing epoch.
        primary_epoch: u64,
    },
    /// Primary → follower: one run of image bytes at `offset` within
    /// the blob promised by the preceding [`ReplFrame::ImageOffer`].
    /// Runs are shipped in order and are at most
    /// [`IMAGE_CHUNK_BYTES`] long, so every frame stays well under
    /// [`MAX_FRAME`].
    ImageChunk {
        /// Byte offset of `data` within the image file.
        offset: u64,
        /// The raw bytes.
        data: Vec<u8>,
    },
}

/// Serialises a replication frame into a frame payload (no length
/// prefix — transport framing is the same [`write_frame`] as queries).
pub fn encode_repl(frame: &ReplFrame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u8(&mut buf, REPL_VERSION);
    match frame {
        ReplFrame::Hello { scale, seed, partitions, from_seq, epoch } => {
            put_u8(&mut buf, REPL_HELLO);
            put_str(&mut buf, scale);
            put_u64(&mut buf, *seed);
            put_u32(&mut buf, *partitions);
            put_u64(&mut buf, *from_seq);
            put_u64(&mut buf, *epoch);
        }
        ReplFrame::Record { seq, partition, ops, epoch } => {
            put_u8(&mut buf, REPL_RECORD);
            put_u64(&mut buf, *seq);
            put_u32(&mut buf, *partition);
            put_u64(&mut buf, *epoch);
            put_u8(&mut buf, ops.query_tag());
            crate::events::encode_write_ops(&mut buf, ops);
        }
        ReplFrame::CaughtUp { through_seq } => {
            put_u8(&mut buf, REPL_CAUGHT_UP);
            put_u64(&mut buf, *through_seq);
        }
        ReplFrame::Heartbeat { last_seq, epoch } => {
            put_u8(&mut buf, REPL_HEARTBEAT);
            put_u64(&mut buf, *last_seq);
            put_u64(&mut buf, *epoch);
        }
        ReplFrame::Promote { epoch, repl_addr, client_addr, siblings } => {
            put_u8(&mut buf, REPL_PROMOTE);
            put_u64(&mut buf, *epoch);
            put_str(&mut buf, repl_addr);
            put_str(&mut buf, client_addr);
            put_u32(&mut buf, siblings.len() as u32);
            for s in siblings {
                put_str(&mut buf, s);
            }
        }
        ReplFrame::Promoted { seq, epoch } => {
            put_u8(&mut buf, REPL_PROMOTED);
            put_u64(&mut buf, *seq);
            put_u64(&mut buf, *epoch);
        }
        ReplFrame::Deny { detail, epoch } => {
            put_u8(&mut buf, REPL_DENY);
            put_str(&mut buf, detail);
            put_u64(&mut buf, *epoch);
        }
        ReplFrame::Announce { epoch, repl_addr, client_addr } => {
            put_u8(&mut buf, REPL_ANNOUNCE);
            put_u64(&mut buf, *epoch);
            put_str(&mut buf, repl_addr);
            put_str(&mut buf, client_addr);
        }
        ReplFrame::ImageOffer { seq, epoch, len, checksum, primary_epoch } => {
            put_u8(&mut buf, REPL_IMAGE_OFFER);
            put_u64(&mut buf, *seq);
            put_u64(&mut buf, *epoch);
            put_u64(&mut buf, *len);
            put_u64(&mut buf, *checksum);
            put_u64(&mut buf, *primary_epoch);
        }
        ReplFrame::ImageChunk { offset, data } => {
            put_u8(&mut buf, REPL_IMAGE_CHUNK);
            put_u64(&mut buf, *offset);
            put_u32(&mut buf, data.len() as u32);
            buf.extend_from_slice(data);
        }
    }
    buf
}

/// Parses a replication frame payload.
pub fn decode_repl(payload: &[u8]) -> Result<ReplFrame, DecodeError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != REPL_VERSION {
        return Err(r.err(format!("unsupported replication version {version}")));
    }
    let frame = match r.u8()? {
        REPL_HELLO => ReplFrame::Hello {
            scale: r.string()?,
            seed: r.u64()?,
            partitions: r.u32()?,
            from_seq: r.u64()?,
            epoch: r.u64()?,
        },
        REPL_RECORD => {
            let seq = r.u64()?;
            let partition = r.u32()?;
            let epoch = r.u64()?;
            let family = r.u8()?;
            let ops = crate::events::decode_write_ops(&mut r, family)?;
            ReplFrame::Record { seq, partition, ops, epoch }
        }
        REPL_CAUGHT_UP => ReplFrame::CaughtUp { through_seq: r.u64()? },
        REPL_HEARTBEAT => ReplFrame::Heartbeat { last_seq: r.u64()?, epoch: r.u64()? },
        REPL_PROMOTE => {
            let epoch = r.u64()?;
            let repl_addr = r.string()?;
            let client_addr = r.string()?;
            let n = r.u32()? as usize;
            if n > 1024 {
                return Err(r.err(format!("implausible sibling count {n}")));
            }
            let mut siblings = Vec::with_capacity(n);
            for _ in 0..n {
                siblings.push(r.string()?);
            }
            ReplFrame::Promote { epoch, repl_addr, client_addr, siblings }
        }
        REPL_PROMOTED => ReplFrame::Promoted { seq: r.u64()?, epoch: r.u64()? },
        REPL_DENY => ReplFrame::Deny { detail: r.string()?, epoch: r.u64()? },
        REPL_ANNOUNCE => ReplFrame::Announce {
            epoch: r.u64()?,
            repl_addr: r.string()?,
            client_addr: r.string()?,
        },
        REPL_IMAGE_OFFER => ReplFrame::ImageOffer {
            seq: r.u64()?,
            epoch: r.u64()?,
            len: r.u64()?,
            checksum: r.u64()?,
            primary_epoch: r.u64()?,
        },
        REPL_IMAGE_CHUNK => {
            let offset = r.u64()?;
            let n = r.u32()? as usize;
            if n > IMAGE_CHUNK_BYTES {
                return Err(r.err(format!(
                    "image chunk of {n} bytes exceeds maximum {IMAGE_CHUNK_BYTES}"
                )));
            }
            let data = r.take(n)?.to_vec();
            ReplFrame::ImageChunk { offset, data }
        }
        other => return Err(r.err(format!("unknown replication frame tag {other}"))),
    };
    r.finish()?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_bi::{bi02, bi11, bi16, bi18, bi20, bi25};
    use snb_interactive::{ic03, ic11};

    fn sample_bindings() -> Vec<ServiceParams> {
        vec![
            ServiceParams::Bi(BiParams::Q2(bi02::Params {
                start_date: Date::from_ymd(2011, 3, 1),
                end_date: Date::from_ymd(2011, 5, 1),
                country1: "China".into(),
                country2: "India".into(),
                min_count: 100,
            })),
            ServiceParams::Bi(BiParams::Q11(bi11::Params {
                country: "Germany".into(),
                blacklist: vec!["also".into(), "belongs".into()],
            })),
            ServiceParams::Bi(BiParams::Q16(bi16::Params {
                person_id: 42,
                country: "Sweden".into(),
                tag_class: "MusicalArtist".into(),
                min_path_distance: 1,
                max_path_distance: 3,
            })),
            ServiceParams::Bi(BiParams::Q18(bi18::Params {
                date: Date::from_ymd(2012, 7, 1),
                length_threshold: 100,
                languages: vec!["en".into()],
            })),
            ServiceParams::Bi(BiParams::Q20(bi20::Params { tag_classes: vec![] })),
            ServiceParams::Bi(BiParams::Q25(bi25::Params {
                person1_id: 7,
                person2_id: 11,
                start_date: Date::from_ymd(2010, 1, 1),
                end_date: Date::from_ymd(2012, 12, 31),
            })),
            ServiceParams::Ic(IcParams::Q3(ic03::Params {
                person_id: 9,
                country_x: "Spain".into(),
                country_y: "France".into(),
                start_date: Date::from_ymd(2011, 6, 1),
                duration_days: 30,
            })),
            ServiceParams::Ic(IcParams::Q11(ic11::Params {
                person_id: 3,
                country: "Japan".into(),
                work_from_year: 2009,
            })),
            ServiceParams::Is(IsParams::from_parts(1, 42).unwrap()),
            ServiceParams::Is(IsParams::from_parts(7, 0xdead_beef).unwrap()),
        ]
    }

    #[test]
    fn request_roundtrip_preserves_bindings() {
        for (i, params) in sample_bindings().into_iter().enumerate() {
            let req =
                Request { id: i as u64 + 100, deadline_us: 5_000, min_seq: i as u64 * 3, params };
            let bytes = encode_request(&req);
            // The header peek and the full decode must agree on every
            // fixed-offset field — the reactor gates on the peek, the
            // worker on the decode.
            let head = peek_header(&bytes).unwrap();
            let back = decode_request(&bytes).unwrap();
            assert_eq!(back.id, req.id);
            assert_eq!(back.deadline_us, req.deadline_us);
            assert_eq!(back.min_seq, req.min_seq);
            assert_eq!(format!("{:?}", back.params), format!("{:?}", req.params));
            assert_eq!(
                head,
                RequestHeader {
                    id: req.id,
                    deadline_us: req.deadline_us,
                    min_seq: req.min_seq,
                    lane: req.params.lane(),
                }
            );
        }
    }

    #[test]
    fn response_roundtrip_all_arms() {
        let cases = vec![
            Response {
                id: 1,
                body: Ok(OkBody {
                    rows: 20,
                    fingerprint: 0xdead_beef,
                    queue_us: 12,
                    exec_us: 345,
                    applied_seq: 9,
                    profile: None,
                }),
            },
            Response {
                id: 2,
                body: Ok(OkBody {
                    rows: 3,
                    fingerprint: 7,
                    queue_us: 1,
                    exec_us: 2,
                    applied_seq: 0,
                    profile: Some(QueryProfile {
                        par_calls: 4,
                        morsels: 8,
                        rows_scanned: 100,
                        topk_offered: 10,
                        ..Default::default()
                    }),
                }),
            },
            Response {
                id: 3,
                body: Err(ErrorBody {
                    kind: ErrorKind::Overloaded,
                    queue_us: 0,
                    detail: "queue full (cap 4)".into(),
                }),
            },
            Response {
                id: 4,
                body: Err(ErrorBody {
                    kind: ErrorKind::DeadlineExceeded,
                    queue_us: 950,
                    detail: "deadline 500us, waited 950us".into(),
                }),
            },
            Response {
                id: 5,
                body: Err(ErrorBody {
                    kind: ErrorKind::DeadlineOverrun,
                    queue_us: 12,
                    detail: "deadline 500us, finished at 820us (exec 780us)".into(),
                }),
            },
            Response {
                id: 6,
                body: Err(ErrorBody {
                    kind: ErrorKind::NotPrimary,
                    queue_us: 0,
                    detail: "read-only follower; route writes to the primary".into(),
                }),
            },
            Response {
                id: 7,
                body: Err(ErrorBody {
                    kind: ErrorKind::StaleRead,
                    queue_us: 0,
                    detail: "min_seq 40, applied 37 (lag 3)".into(),
                }),
            },
            Response {
                id: 8,
                body: Err(ErrorBody {
                    kind: ErrorKind::Fenced,
                    queue_us: 0,
                    detail: "fenced at epoch 2 by epoch 3 (primary=127.0.0.1:9999)".into(),
                }),
            },
        ];
        for resp in cases {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn bad_frames_are_typed_errors_not_panics() {
        // Truncated request still recovers the correlation id.
        let req = Request {
            id: 77,
            deadline_us: 0,
            min_seq: 0,
            params: ServiceParams::Bi(BiParams::Q5(snb_bi::bi05::Params {
                country: "China".into(),
            })),
        };
        let mut bytes = encode_request(&req);
        bytes.truncate(bytes.len() - 2);
        let err = decode_request(&bytes).unwrap_err();
        assert_eq!(err.id, Some(77));

        // Unknown query number.
        let mut buf = Vec::new();
        put_u8(&mut buf, PROTO_VERSION);
        put_u64(&mut buf, 5);
        put_u64(&mut buf, 0);
        put_u64(&mut buf, 0);
        put_u8(&mut buf, WORKLOAD_BI);
        put_u8(&mut buf, 99);
        assert!(decode_request(&buf).is_err());
        // ... but the header peek succeeds: the lane is known from the
        // workload byte alone, and the bad query number surfaces as a
        // typed error on the worker.
        assert_eq!(peek_header(&buf).unwrap().lane, Lane::Heavy);

        // Bad version.
        let mut buf = encode_request(&req);
        buf[0] = 9;
        assert!(decode_request(&buf).is_err());

        // Trailing garbage.
        let mut buf = encode_request(&req);
        buf.push(0);
        assert!(decode_request(&buf).is_err());

        // A write-batch frame truncated at *every* byte boundary:
        // typed error each time, never a panic or an over-read.
        let write = Request {
            id: 13,
            deadline_us: 0,
            min_seq: 0,
            params: ServiceParams::Write(WriteBatch {
                seq: 4,
                ops: WriteOps::Deletes(vec![
                    snb_store::DeleteOp::Like(7, 9),
                    snb_store::DeleteOp::Forum(3),
                ]),
            }),
        };
        let bytes = encode_request(&write);
        assert!(decode_request(&bytes).is_ok());
        for cut in 0..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err(), "cut at {cut} must not decode");
        }

        // Frame layer: an oversized length prefix is refused before any
        // allocation, a zero-length frame yields an empty payload that
        // decodes to a typed error, and a mid-frame disconnect (length
        // promises more bytes than arrive) is an I/O error, not a hang.
        let mut oversized = Vec::new();
        put_u32(&mut oversized, MAX_FRAME + 1);
        let err = read_frame(&mut std::io::Cursor::new(&oversized)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        let mut zero = Vec::new();
        put_u32(&mut zero, 0);
        let payload = read_frame(&mut std::io::Cursor::new(&zero)).expect("empty frame reads");
        assert!(payload.is_empty());
        assert!(decode_request(&payload).is_err(), "empty payload is a typed decode error");

        let mut torn = Vec::new();
        put_u32(&mut torn, 64);
        torn.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut std::io::Cursor::new(&torn)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_buffer_reassembly() {
        let payload_a = encode_response(&Response { id: 1, body: Ok(OkBody::default()) });
        let payload_b = encode_response(&Response {
            id: 2,
            body: Err(ErrorBody { kind: ErrorKind::ShuttingDown, queue_us: 0, detail: "".into() }),
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload_a).unwrap();
        write_frame(&mut wire, &payload_b).unwrap();

        // Feed the wire bytes one at a time; frames must pop out intact.
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for b in wire {
            buf.push(b);
            while let Some(frame) = take_frame(&mut buf).unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], payload_a);
        assert_eq!(got[1], payload_b);
        assert!(buf.is_empty());

        // Oversized length prefix is a protocol error.
        let mut bad = (MAX_FRAME + 1).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0; 8]);
        assert!(take_frame(&mut bad).is_err());
    }

    #[test]
    fn lane_classification_is_static_per_workload() {
        for params in sample_bindings() {
            let want = match params {
                ServiceParams::Bi(_) => Lane::Heavy,
                ServiceParams::Ic(_) | ServiceParams::Is(_) => Lane::Short,
                ServiceParams::Write(_) => Lane::Write,
            };
            assert_eq!(params.lane(), want, "lane for {:?}", params.label());
        }
        let write = ServiceParams::Write(WriteBatch {
            seq: 1,
            ops: WriteOps::Deletes(vec![snb_store::DeleteOp::Forum(3)]),
        });
        assert_eq!(write.lane(), Lane::Write);
        // Names and indices are stable — logs and JSON key on them.
        assert_eq!(Lane::ALL.map(Lane::name), ["short", "heavy", "write"]);
        for (i, lane) in Lane::ALL.iter().enumerate() {
            assert_eq!(lane.index(), i);
        }
    }

    fn sample_repl_frames() -> Vec<ReplFrame> {
        let config = snb_datagen::GeneratorConfig::for_scale_name("0.001").unwrap();
        let (_, stream) = snb_store::bulk_store_and_stream(&config);
        assert!(stream.len() >= 3, "stream too short for repl samples");
        vec![
            ReplFrame::Hello {
                scale: "0.001".into(),
                seed: 42,
                partitions: 2,
                from_seq: 17,
                epoch: 3,
            },
            ReplFrame::Record {
                seq: 18,
                partition: 1,
                ops: WriteOps::Updates(stream[..3].to_vec()),
                epoch: 3,
            },
            ReplFrame::Record {
                seq: 19,
                partition: 0,
                ops: WriteOps::Deletes(vec![
                    snb_store::DeleteOp::Like(7, 9),
                    snb_store::DeleteOp::Forum(3),
                ]),
                epoch: 3,
            },
            ReplFrame::CaughtUp { through_seq: 19 },
            ReplFrame::Heartbeat { last_seq: 25, epoch: 3 },
            ReplFrame::Promote {
                epoch: 4,
                repl_addr: "127.0.0.1:7001".into(),
                client_addr: "127.0.0.1:7000".into(),
                siblings: vec!["127.0.0.1:7003".into(), "127.0.0.1:7005".into()],
            },
            ReplFrame::Promote {
                epoch: 0,
                repl_addr: String::new(),
                client_addr: String::new(),
                siblings: Vec::new(),
            },
            ReplFrame::Promoted { seq: 25, epoch: 4 },
            ReplFrame::Deny { detail: "scale mismatch".into(), epoch: 4 },
            ReplFrame::Announce {
                epoch: 4,
                repl_addr: "127.0.0.1:7001".into(),
                client_addr: "127.0.0.1:7000".into(),
            },
            ReplFrame::ImageOffer {
                seq: 640,
                epoch: 3,
                len: 1 << 22,
                checksum: 0xdead_beef_cafe_f00d,
                primary_epoch: 4,
            },
            ReplFrame::ImageChunk { offset: 262_144, data: vec![0xab; 97] },
            ReplFrame::ImageChunk { offset: 0, data: Vec::new() },
        ]
    }

    #[test]
    fn repl_frames_roundtrip_exactly() {
        for frame in sample_repl_frames() {
            let bytes = encode_repl(&frame);
            let back = decode_repl(&bytes).expect("repl frame decodes");
            // WriteOps payloads don't implement PartialEq; Debug form is
            // the repo-wide stand-in (same as the event codec tests).
            assert_eq!(format!("{back:?}"), format!("{frame:?}"));
        }
    }

    #[test]
    fn bad_repl_frames_are_typed_errors_not_panics() {
        // Every frame flavour truncated at every byte boundary: typed
        // error each time, never a panic or an over-read.
        for frame in sample_repl_frames() {
            let bytes = encode_repl(&frame);
            for cut in 0..bytes.len() {
                assert!(
                    decode_repl(&bytes[..cut]).is_err(),
                    "cut at {cut} of {:?} must not decode",
                    bytes[..cut.min(2)].first()
                );
            }
            // Trailing garbage is refused too.
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(decode_repl(&padded).is_err());
        }

        // Bad version byte.
        let mut bytes = encode_repl(&ReplFrame::CaughtUp { through_seq: 1 });
        bytes[0] = 9;
        assert!(decode_repl(&bytes).is_err());

        // Unknown frame tag.
        let mut buf = Vec::new();
        put_u8(&mut buf, REPL_VERSION);
        put_u8(&mut buf, 99);
        assert!(decode_repl(&buf).is_err());

        // An image chunk claiming more than the chunk ceiling is
        // refused before allocation, even if the bytes were present.
        let mut big = Vec::new();
        put_u8(&mut big, REPL_VERSION);
        put_u8(&mut big, REPL_IMAGE_CHUNK);
        put_u64(&mut big, 0);
        put_u32(&mut big, IMAGE_CHUNK_BYTES as u32 + 1);
        big.resize(big.len() + IMAGE_CHUNK_BYTES + 1, 0);
        assert!(decode_repl(&big).is_err());

        // Transport layer is shared with queries, so the oversized /
        // mid-frame-disconnect behaviour pinned there applies here: an
        // oversized prefix is refused before allocation, a torn frame
        // is an I/O error, not a hang.
        let mut oversized = Vec::new();
        put_u32(&mut oversized, MAX_FRAME + 1);
        let err = read_frame(&mut std::io::Cursor::new(&oversized)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let mut torn = Vec::new();
        put_u32(&mut torn, 64);
        torn.extend_from_slice(&encode_repl(&ReplFrame::Heartbeat { last_seq: 1, epoch: 0 }));
        let err = read_frame(&mut std::io::Cursor::new(&torn)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn binding_hash_distinguishes_bindings() {
        let hashes: Vec<u64> = sample_bindings().iter().map(ServiceParams::binding_hash).collect();
        let mut uniq = hashes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), hashes.len(), "hash collision among sample bindings");
        // Stable across calls.
        for (p, h) in sample_bindings().iter().zip(&hashes) {
            assert_eq!(p.binding_hash(), *h);
        }
    }
}
