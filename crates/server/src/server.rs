//! The query service: admission, execution, deadlines, shutdown.
//!
//! Life of a request:
//!
//! 1. a transport (the epoll reactor draining TCP connections, or an
//!    in-process client) decodes a [`Request`] and calls `admit`;
//! 2. admission classifies the request into a [`Lane`] (IS/IC short
//!    reads, heavy BI, writes) and either queues a [`Job`] on that
//!    lane's bounded queue or responds immediately — `Overloaded` when
//!    the lane is full (the shed detail names the lane and the
//!    observed depths), `ShuttingDown` during drain, `BadRequest` for
//!    undecodable frames;
//! 3. a read worker pops under the weighted lane scheduler
//!    ([`LaneQueues::pop_read`] — short reads cannot be starved by a
//!    BI flood), **checks the deadline at dequeue** (a request whose
//!    deadline passed while queued is answered `DeadlineExceeded`
//!    without touching the store), binds its [`QueryContext`] to the
//!    **store snapshot pinned at admission**, executes, **re-checks
//!    the deadline at completion** (a job that starts inside its
//!    budget but overruns mid-execution is answered — and counted —
//!    `deadline_overrun`, not `ok`), and writes the response through
//!    the job's responder; write batches drain on dedicated write
//!    workers so a WAL fsync never stalls a read worker;
//! 4. every path appends exactly one access-log record (carrying the
//!    lane, the `store_version` read, and the snapshot's age at
//!    execution).
//!
//! Graceful shutdown ([`Server::shutdown`]): stop accepting (transport
//! rejections + acceptor exit), close the queue, let workers drain the
//! already-admitted jobs, join every thread, and hand back the final
//! [`ServiceReport`] with the access log intact.
//!
//! **Concurrency model** — there is no lock anywhere on the read path.
//! The store lives behind a [`StoreHandle`]: writes (update-stream
//! replay through [`StoreWriter`], durable batches through the WAL
//! path) build the next immutable store version on a private
//! copy-on-write clone and publish it with an atomic swap
//! ([`StoreHandle::publish_with`]); reads pin the current version at
//! admission and run the whole query against it, unaffected by — and
//! never blocking — concurrent publishes. A failed or panicking apply
//! discards the private clone, so mid-batch state is unpublishable;
//! the server still degrades to `store_poisoned` in that case because
//! the WAL holds a batch the published store does not (restart +
//! recovery re-converges them).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, TryLockError};
use std::time::{Duration, Instant};

use snb_core::{SnbError, SnbResult};
use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::stream::TimedEvent;
use snb_engine::QueryContext;
use snb_store::{
    DeleteOp, DeleteStats, PartitionedStore, SnapshotStats, Store, StoreHandle, StoreSnapshot,
};

use crate::log::{AccessLog, AccessRecord};
use crate::proto::{
    self, ErrorBody, ErrorKind, Lane, OkBody, Request, Response, ServiceParams, WriteBatch,
    WriteOps,
};
use crate::queue::{Admitted, LaneQueues, PushError, ShedPolicy};
use crate::wal::SegmentedWal;

/// Group-commit formation window: how long an ack-waiter parks before
/// volunteering as the flusher. Long enough for the successor batch
/// (whose client is typically already retrying a sequence-gap
/// rejection) to append and join the fsync; short enough to bound the
/// extra ack latency when the waiter turns out to be alone.
const GROUP_COMMIT_WINDOW: Duration = Duration::from_micros(250);

/// How long a response write to a slow TCP peer may retry on a full
/// socket buffer before the response is dropped (the request outcome
/// is already logged). The reactor's connections are non-blocking, so
/// the dup'd write halves are too; this bounds how long a dead or
/// stalled client can pin a worker in the write loop.
const WRITE_STALL_BUDGET: Duration = Duration::from_secs(2);

/// Per-lane admission settings. Zero / `None` fields inherit the
/// server-wide `queue_capacity` / `default_deadline`, so existing
/// callers that only set the global knobs keep their exact semantics.
#[derive(Clone, Copy, Debug)]
pub struct LaneSettings {
    /// Lane queue capacity; `0` inherits [`ServerConfig::queue_capacity`].
    pub capacity: usize,
    /// Deadline for requests on this lane that carry none; `None`
    /// inherits [`ServerConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// What to do when the lane is full.
    pub shed: ShedPolicy,
}

impl Default for LaneSettings {
    fn default() -> Self {
        LaneSettings { capacity: 0, deadline: None, shed: ShedPolicy::Reject }
    }
}

/// Admission-lane configuration: one [`LaneSettings`] per lane plus
/// the read-scheduler weight.
#[derive(Clone, Debug, Default)]
pub struct LanesConfig {
    /// IS/IC short reads.
    pub short: LaneSettings,
    /// Heavy BI analytics.
    pub heavy: LaneSettings,
    /// Sequenced write batches.
    pub write: LaneSettings,
    /// Short pops per heavy pop when both read lanes hold work; `0`
    /// means the default (4:1).
    pub short_weight: u64,
}

impl LanesConfig {
    /// The settings for one lane.
    pub fn lane(&self, lane: Lane) -> &LaneSettings {
        match lane {
            Lane::Short => &self.short,
            Lane::Heavy => &self.heavy,
            Lane::Write => &self.write,
        }
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue. `0` means no
    /// background workers: queued jobs run inline during `shutdown`
    /// (deterministic unit-test mode).
    pub workers: usize,
    /// Admission-queue capacity; pushes beyond it are shed.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Attach a per-request operator profile to responses and log
    /// records (the `--profile` seam).
    pub profiling: bool,
    /// Intra-query parallelism per worker (`QueryContext` width).
    /// Defaults to 1: the workers themselves are the unit of
    /// concurrency, matching the throughput-test design.
    pub threads_per_worker: usize,
    /// Close a TCP connection that makes no read progress for this long
    /// (slowloris protection: a half-open or stalled client must not pin
    /// a thread-per-connection handler forever). `None` disables the
    /// idle check. Stalled closes are logged with outcome
    /// `conn_stalled`.
    pub conn_read_timeout: Option<Duration>,
    /// Horizontal partition count: the store is wrapped in a
    /// [`PartitionedStore`] with this many shards, worker
    /// `QueryContext`s emit partition-aligned morsels, and (when the
    /// server owns a WAL opened with the same count) write batches are
    /// routed to per-partition log segments. `0`/`1` = unpartitioned.
    pub partitions: usize,
    /// Per-lane capacities, deadlines, and shed policies (fields left
    /// at their defaults inherit `queue_capacity` /
    /// `default_deadline`).
    pub lanes: LanesConfig,
    /// Dedicated threads draining the write lane (TCP write batches),
    /// so a WAL fsync never stalls a read worker. Clamped to at least
    /// 1 when `workers > 0`; with `workers == 0` (deterministic test
    /// mode) no write workers spawn either and both drains happen
    /// inline at shutdown.
    pub write_workers: usize,
    /// Start in read-only (follower) mode: client write batches are
    /// refused with `not_primary` (terminal-with-redirect) while the
    /// replication applier keeps the store moving. Flipped off by
    /// [`Server::promote`].
    pub read_only: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_capacity: 1024,
            default_deadline: None,
            profiling: false,
            threads_per_worker: 1,
            conn_read_timeout: Some(Duration::from_secs(30)),
            partitions: 1,
            lanes: LanesConfig::default(),
            write_workers: 2,
            read_only: false,
        }
    }
}

impl ServerConfig {
    /// The resolved capacity of one lane (its own, or the inherited
    /// `queue_capacity`).
    pub fn lane_capacity(&self, lane: Lane) -> usize {
        let own = self.lanes.lane(lane).capacity;
        if own > 0 {
            own
        } else {
            self.queue_capacity
        }
    }

    /// The resolved no-deadline default of one lane (its own, or the
    /// inherited `default_deadline`).
    pub fn lane_deadline(&self, lane: Lane) -> Option<Duration> {
        self.lanes.lane(lane).deadline.or(self.default_deadline)
    }

    /// The resolved short:heavy drain ratio.
    pub fn short_weight(&self) -> u64 {
        if self.lanes.short_weight > 0 {
            self.lanes.short_weight
        } else {
            4
        }
    }
}

/// Aggregate outcome counters, returned by [`Server::shutdown`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Requests executed to completion.
    pub served: u64,
    /// Requests shed by admission control (lane full).
    pub shed: u64,
    /// Requests whose deadline passed before execution.
    pub deadline_missed: u64,
    /// Requests that started inside their budget but finished past the
    /// deadline — executed, then answered `deadline_overrun` instead of
    /// `ok` (the satellite bugfix: overruns used to be miscounted as
    /// served).
    pub deadline_overrun: u64,
    /// Requests rejected because the server was draining.
    pub rejected_shutdown: u64,
    /// Frames that failed to decode.
    pub bad_requests: u64,
    /// Requests that failed during execution.
    pub internal_errors: u64,
    /// Update events applied through [`StoreWriter`].
    pub updates_applied: u64,
    /// Delete operations applied through [`StoreWriter`].
    pub deletes_applied: u64,
    /// Sequenced write batches applied through the durable write path.
    pub batches_applied: u64,
    /// Write batches acknowledged without re-applying (sequence number
    /// at or below the last applied one — a client retry of a batch
    /// whose ack was lost).
    pub batches_deduped: u64,
    /// Requests refused because the store was poisoned by a mid-apply
    /// panic (recovery = restart and replay the WAL).
    pub poisoned_rejects: u64,
    /// TCP connections closed for making no read progress within the
    /// configured timeout.
    pub conn_stalled: u64,
    /// Total access-log records (one per request that reached the
    /// server).
    pub log_records: u64,
    /// Store versions published over the server's lifetime (0 = the
    /// bulk-loaded base version was never superseded).
    pub versions_published: u64,
    /// High-water mark of store versions simultaneously alive
    /// (publication ring + reader-pinned snapshots).
    pub peak_live_snapshots: u64,
    /// Snapshot-reader pin attempts that raced a publish and retried.
    pub reader_retries: u64,
    /// Snapshot-reader retry loops that hit the safety valve and
    /// yielded — must be zero under any sane publish rate (asserted by
    /// the interference CI stage).
    pub reader_blocked: u64,
    /// Requests served per lane, indexed by [`Lane::index`]
    /// (`[short, heavy, write]`; the write slot counts applied +
    /// deduped batches routed through the write lane or inline path).
    pub served_by_lane: [u64; 3],
    /// Requests shed (lane full) per lane, indexed by [`Lane::index`].
    pub shed_by_lane: [u64; 3],
    /// TCP connections accepted over the server's lifetime.
    pub conn_accepted: u64,
    /// High-water mark of simultaneously open TCP connections.
    pub conn_peak: u64,
    /// Write batches refused because the node was a read-only follower
    /// (`not_primary` — the client must redirect to the primary).
    pub not_primary_rejects: u64,
    /// Reads refused because the node had not yet applied the
    /// requested `min_seq` (`stale_read` — retryable, lag drains).
    pub stale_read_rejects: u64,
    /// Write batches refused because the node was fenced — a higher
    /// fencing epoch was observed, so a newer primary exists and acking
    /// here would fork history (`fenced` — terminal with redirect).
    pub fenced_rejects: u64,
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    deadline_missed: AtomicU64,
    deadline_overrun: AtomicU64,
    rejected_shutdown: AtomicU64,
    bad_requests: AtomicU64,
    internal_errors: AtomicU64,
    updates_applied: AtomicU64,
    deletes_applied: AtomicU64,
    batches_applied: AtomicU64,
    batches_deduped: AtomicU64,
    poisoned_rejects: AtomicU64,
    conn_stalled: AtomicU64,
    served_by_lane: [AtomicU64; 3],
    shed_by_lane: [AtomicU64; 3],
    conn_accepted: AtomicU64,
    conn_peak: AtomicU64,
    not_primary_rejects: AtomicU64,
    stale_read_rejects: AtomicU64,
    fenced_rejects: AtomicU64,
}

/// Where a job's response goes.
enum Responder {
    /// Write a response frame to the connection's shared write half.
    Tcp(Arc<Mutex<TcpStream>>),
    /// Hand the response to a waiting in-process caller.
    InProc(crossbeam::channel::Sender<Response>),
}

impl Responder {
    fn send(&self, resp: Response) {
        match self {
            Responder::Tcp(stream) => {
                let payload = proto::encode_response(&resp);
                let mut guard = stream.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                // A write error means the client hung up or stalled past
                // the budget; the request outcome is already logged, so
                // drop it silently.
                let _ = send_frame_resilient(&mut guard, &payload);
            }
            Responder::InProc(tx) => {
                let _ = tx.send(resp);
            }
        }
    }
}

/// Writes one length-prefixed frame to a possibly *non-blocking*
/// stream. The reactor puts connections in non-blocking mode, and
/// `O_NONBLOCK` lives on the open file description — shared with every
/// `try_clone`d write half — so a plain `write_all` could return
/// `WouldBlock` mid-frame and corrupt the framing for good. This
/// helper serialises the whole frame into one buffer and retries from
/// the exact offset on `WouldBlock`, bounded by [`WRITE_STALL_BUDGET`].
fn send_frame_resilient(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    if snb_fault::partition_active() {
        // `net.partition` black-holes the wire: the write "succeeds"
        // locally but the peer never sees the bytes, and the socket
        // stays open — exactly a mid-network drop, not a close.
        return Ok(());
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    let started = Instant::now();
    let mut off = 0usize;
    while off < frame.len() {
        match stream.write(&frame[off..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if started.elapsed() > WRITE_STALL_BUDGET {
                    return Err(std::io::ErrorKind::TimedOut.into());
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// What a queued job carries: a fully decoded request (in-process
/// transport), or the raw frame payload plus its peeked header (TCP
/// transports). Raw frames are decoded on the lane worker that pops
/// them — the reactor thread only ever runs the cheap fixed-offset
/// [`proto::peek_header`], so a peer flooding parse-heavy bindings
/// burns worker time, never transport-read time.
enum JobPayload {
    Decoded(Request),
    Raw { payload: Vec<u8>, header: proto::RequestHeader },
}

impl JobPayload {
    fn id(&self) -> u64 {
        match self {
            JobPayload::Decoded(req) => req.id,
            JobPayload::Raw { header, .. } => header.id,
        }
    }

    /// `(workload, query, binding_hash)` for access-log records. Raw
    /// frames are unlabelled until decoded — shed records for them
    /// carry empty labels, exactly like the garbage path.
    fn labels(&self) -> (&'static str, u8, u64) {
        match self {
            JobPayload::Decoded(req) => {
                let (w, q) = req.params.label();
                (w, q, req.params.binding_hash())
            }
            JobPayload::Raw { .. } => ("", 0, 0),
        }
    }
}

/// One admitted unit of work, carrying the store version pinned at
/// admission: whatever the writer publishes while this job is queued,
/// the job reads the version that was current when it was admitted.
struct Job {
    payload: JobPayload,
    seq: u64,
    lane: Lane,
    admitted: Instant,
    deadline: Option<Instant>,
    snapshot: StoreSnapshot,
    /// The node's applied write sequence loaded at admission — stamped
    /// into the response as the bounded-staleness contract: the pinned
    /// snapshot contains every write at or below it.
    applied_seq: u64,
    responder: Responder,
}

/// The durable-write machinery a server starts with when it owns a WAL:
/// typically built from [`crate::wal::Recovered`] via
/// [`Recovered::into_durability`](crate::wal::Recovered).
pub struct Durability {
    /// Open append handle (post-recovery), one segment per partition.
    pub wal: SegmentedWal,
    /// Seeded dictionaries needed by `apply_event`.
    pub world: StaticWorld,
    /// Highest batch sequence number already applied (recovered);
    /// deduplication resumes from here.
    pub last_seq: u64,
    /// Fencing epoch recovered from the WAL headers — the replication
    /// term the node serves at until promotion bumps it.
    pub epoch: u64,
}

/// Serialized under one mutex so WAL append, store apply, and sequence
/// accounting are atomic with respect to other write batches.
struct DurableState {
    wal: SegmentedWal,
    world: StaticWorld,
}

pub(crate) struct ServerInner {
    store: Arc<StoreHandle>,
    queue: LaneQueues<Job>,
    log: AccessLog,
    accepting: AtomicBool,
    config: ServerConfig,
    counters: Counters,
    durable: Option<Mutex<DurableState>>,
    last_applied_seq: AtomicU64,
    /// Group-commit ack gate: the highest sequence number covered by a
    /// completed flush. With `group_commit` on, a write's ack is held
    /// until this reaches its sequence number — many submitters then
    /// share one fsync without weakening "acknowledged ⇒ durable".
    flushed_seq: AtomicU64,
    /// Parking lot for ack-waiters ([`ServerInner::wait_for_flush`]).
    flush_mutex: Mutex<()>,
    flush_cv: Condvar,
    /// Set when a write failed or panicked mid-apply. The *published*
    /// store is still consistent (the failed version was discarded
    /// unpublished), but the WAL and the store have diverged — an
    /// appended batch was never applied — so every request is refused
    /// with `store_poisoned` until restart-and-recovery re-converges
    /// them.
    degraded: AtomicBool,
    /// Follower mode: client writes are refused with `not_primary`.
    /// The replication applier bypasses admission (it calls
    /// [`ServerInner::submit_batch`] directly), so shipped records
    /// apply regardless. Cleared by promotion.
    read_only: AtomicBool,
    /// The node's fencing epoch — the replication term it serves under.
    /// Durable in the WAL header; bumped (and fsynced) by promotion
    /// *before* `read_only` clears.
    epoch: AtomicU64,
    /// Set when the node observes a higher fencing epoch than its own
    /// while writable: a newer primary exists, so every client write is
    /// refused with `fenced` instead of acking into a forked history.
    /// Never cleared except by promotion (which bumps past the fencing
    /// term).
    fenced: AtomicBool,
    /// Client-facing address of the current primary, when known —
    /// carried in `not_primary`/`fenced` details as a redirect hint.
    primary_hint: Mutex<String>,
    /// Replication-listener address the follower loop should subscribe
    /// to. Updated by `Announce`/`Deny` handling; the follower loop
    /// re-reads it each reconnect, which is what makes re-subscription
    /// to a new primary automatic.
    repl_target: Mutex<String>,
}

impl ServerInner {
    /// Whether the server is still accepting work (replication ship
    /// loops exit when this clears).
    pub(crate) fn is_accepting(&self) -> bool {
        self.accepting.load(Ordering::Acquire)
    }

    /// Highest applied write sequence (the follower's Hello cursor and
    /// the non-group-commit ship bound).
    pub(crate) fn applied_seq(&self) -> u64 {
        self.last_applied_seq.load(Ordering::Acquire)
    }

    /// The replication ship bound: the highest sequence whose ack has
    /// been released. Under group commit an applied-but-unflushed batch
    /// is not yet acked, so shipping stops at `flushed_seq`; otherwise
    /// apply and ack coincide at `last_applied_seq`. Followers must
    /// never see a record the primary could still disavow.
    pub(crate) fn acked_seq(&self, group_commit: bool) -> u64 {
        if group_commit {
            self.flushed_seq.load(Ordering::Acquire)
        } else {
            self.last_applied_seq.load(Ordering::Acquire)
        }
    }

    /// Whether the WAL runs group commit (`None` without a WAL) — read
    /// once per replication listener, not per poll.
    pub(crate) fn wal_group_commit(&self) -> Option<bool> {
        let durable = self.durable.as_ref()?;
        let state = durable.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Some(state.wal.options().group_commit)
    }

    /// Whether client writes are refused (follower mode).
    pub(crate) fn read_only_flag(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// The node's current fencing epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether the node has been fenced by a higher epoch.
    pub(crate) fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    /// Fences the node at `epoch`: a newer primary exists, so client
    /// writes are refused with `fenced` from here on. `primary` (when
    /// non-empty) becomes the redirect hint. Raises the stored epoch so
    /// later frames at the same term aren't "higher" again.
    pub(crate) fn fence(&self, epoch: u64, primary: &str) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        self.fenced.store(true, Ordering::Release);
        if !primary.is_empty() {
            self.set_primary_hint(primary);
        }
    }

    /// Adopts a newer epoch observed on the wire *without* fencing —
    /// the follower path: a read-only node tracking its primary's term
    /// is not a zombie, it just learned the term changed.
    pub(crate) fn observe_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// The current redirect hint (client-facing primary address), empty
    /// when unknown.
    pub(crate) fn primary_hint(&self) -> String {
        self.primary_hint.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    pub(crate) fn set_primary_hint(&self, addr: &str) {
        let mut hint = self.primary_hint.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *hint = addr.to_string();
    }

    /// The replication listener the follower loop should subscribe to
    /// (empty = stick with the address it was started with).
    pub(crate) fn repl_target(&self) -> String {
        self.repl_target.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    pub(crate) fn set_repl_target(&self, addr: &str) {
        let mut t = self.repl_target.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *t = addr.to_string();
    }

    /// Promotion: durably bumps the fencing epoch to at least
    /// `min_epoch` (and at least one past the node's own term), *then*
    /// clears follower mode — the order matters, because a crash
    /// between the two must leave a node that recovers fenced-forward,
    /// never a writable node at the old term. Returns the writable-from
    /// seq and the new epoch. Idempotent: re-promoting an
    /// already-writable node only reports its state.
    pub(crate) fn promote_inner(&self, min_epoch: u64) -> SnbResult<(u64, u64)> {
        if self.read_only.load(Ordering::Acquire) || self.is_fenced() {
            let new_epoch = min_epoch.max(self.epoch().saturating_add(1));
            if let Some(durable) = self.durable.as_ref() {
                let mut state = durable.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                state.wal.bump_epoch(new_epoch)?;
            }
            self.epoch.fetch_max(new_epoch, Ordering::AcqRel);
            // A fenced ex-primary re-promoted into a newer term is a
            // primary again; its writes carry the new epoch.
            self.fenced.store(false, Ordering::Release);
            self.read_only.store(false, Ordering::Release);
        }
        Ok((self.last_applied_seq.load(Ordering::Acquire), self.epoch()))
    }

    /// Renders the consistent per-lane depth snapshot that admission
    /// refusals carry, so clients and the chaos harness can distinguish
    /// lane-full from global overload (the satellite bugfix for shed
    /// responses that used to report nothing but `queue_us: 0`).
    fn depths_detail(&self) -> String {
        let d = self.queue.depths();
        format!("lanes short={} heavy={} write={}", d[0], d[1], d[2])
    }

    /// The single refusal path behind every admission rejection:
    /// counters, one access-log record, and a typed error response.
    /// `labels` is `(workload, query, binding_hash)` — empty for raw
    /// frames that were never decoded. `min_seq` feeds the `stale_read`
    /// detail so the client sees its lag.
    #[allow(clippy::too_many_arguments)]
    fn refuse(
        &self,
        seq: u64,
        id: u64,
        labels: (&'static str, u8, u64),
        lane: Lane,
        kind: ErrorKind,
        min_seq: u64,
        responder: &Responder,
    ) {
        let (workload, query, binding_hash) = labels;
        match kind {
            ErrorKind::Overloaded => {
                self.counters.shed_by_lane[lane.index()].fetch_add(1, Ordering::Relaxed);
                self.counters.shed.fetch_add(1, Ordering::Relaxed)
            }
            ErrorKind::ShuttingDown => {
                self.counters.rejected_shutdown.fetch_add(1, Ordering::Relaxed)
            }
            ErrorKind::StorePoisoned => {
                self.counters.poisoned_rejects.fetch_add(1, Ordering::Relaxed)
            }
            ErrorKind::NotPrimary => {
                self.counters.not_primary_rejects.fetch_add(1, Ordering::Relaxed)
            }
            ErrorKind::StaleRead => {
                self.counters.stale_read_rejects.fetch_add(1, Ordering::Relaxed)
            }
            ErrorKind::Fenced => self.counters.fenced_rejects.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        self.log.push(AccessRecord {
            seq,
            workload,
            query,
            binding_hash,
            lane: lane.name(),
            queue_us: 0,
            exec_us: 0,
            outcome: kind.name(),
            rows: 0,
            fingerprint: 0,
            store_version: self.store.version(),
            snapshot_age_us: 0,
            profile: None,
        });
        let detail = match kind {
            ErrorKind::Overloaded => {
                format!(
                    "{} lane full (capacity {}; {})",
                    lane.name(),
                    self.queue.capacity(lane),
                    self.depths_detail()
                )
            }
            ErrorKind::ShuttingDown => {
                format!("server is draining for shutdown ({})", self.depths_detail())
            }
            ErrorKind::StorePoisoned => {
                "store poisoned by a mid-apply panic; restart to recover from the WAL".to_string()
            }
            ErrorKind::NotPrimary => {
                let hint = self.primary_hint();
                if hint.is_empty() {
                    "read-only follower; route writes to the primary".to_string()
                } else {
                    format!("read-only follower; route writes to the primary (primary={hint})")
                }
            }
            ErrorKind::Fenced => {
                let hint = self.primary_hint();
                let epoch = self.epoch();
                if hint.is_empty() {
                    format!("fenced: a newer primary exists at epoch {epoch}")
                } else {
                    format!("fenced: a newer primary exists at epoch {epoch} (primary={hint})")
                }
            }
            ErrorKind::StaleRead => {
                let applied = self.last_applied_seq.load(Ordering::Acquire);
                format!(
                    "min_seq {min_seq}, applied {applied} (lag {})",
                    min_seq.saturating_sub(applied)
                )
            }
            other => other.name().to_string(),
        };
        responder.send(Response { id, body: Err(ErrorBody { kind, queue_us: 0, detail }) });
    }

    fn reject(
        &self,
        seq: u64,
        request: &Request,
        lane: Lane,
        kind: ErrorKind,
        responder: &Responder,
    ) {
        let (workload, query) = request.params.label();
        self.refuse(
            seq,
            request.id,
            (workload, query, request.params.binding_hash()),
            lane,
            kind,
            request.min_seq,
            responder,
        );
    }

    /// Refuses one already-queued job (shed victim or closed-queue
    /// push-back) whichever payload form it carries.
    fn reject_job(&self, job: Job, kind: ErrorKind) {
        let min_seq = match &job.payload {
            JobPayload::Decoded(req) => req.min_seq,
            JobPayload::Raw { header, .. } => header.min_seq,
        };
        self.refuse(
            job.seq,
            job.payload.id(),
            job.payload.labels(),
            job.lane,
            kind,
            min_seq,
            &job.responder,
        );
    }

    /// Admission control: queue the request on its lane or answer
    /// immediately. In-process write batches are applied on the
    /// submitting thread (they serialize on the durability lock anyway,
    /// and the group-commit formation window wants concurrent
    /// submitters parked *in* `submit_batch`); TCP write batches are
    /// queued on the write lane and drained by the dedicated write
    /// workers, so a WAL fsync never stalls the reactor or a read
    /// worker.
    fn admit(&self, request: Request, responder: Responder) {
        let lane = request.params.lane();
        if lane == Lane::Write && self.read_only.load(Ordering::Acquire) {
            // Follower: client writes can never succeed here (the
            // replication applier is the only writer) — terminal with
            // redirect, checked before anything queues.
            let seq = self.log.next_seq();
            self.reject(seq, &request, lane, ErrorKind::NotPrimary, &responder);
            return;
        }
        if lane == Lane::Write && self.is_fenced() {
            // Zombie ex-primary: a newer term exists, so acking this
            // write would fork history — terminal with redirect.
            let seq = self.log.next_seq();
            self.reject(seq, &request, lane, ErrorKind::Fenced, &responder);
            return;
        }
        if lane == Lane::Write {
            if let Responder::InProc(_) = responder {
                self.admit_write(request, responder);
                return;
            }
        }
        let seq = self.log.next_seq();
        if !self.accepting.load(Ordering::Acquire) {
            self.reject(seq, &request, lane, ErrorKind::ShuttingDown, &responder);
            return;
        }
        if self.degraded.load(Ordering::Acquire) {
            self.reject(seq, &request, lane, ErrorKind::StorePoisoned, &responder);
            return;
        }
        // Bounded-staleness gate: load the applied high-water mark
        // *before* pinning the snapshot. `submit_batch` publishes the
        // store version before bumping `last_applied_seq`, so a
        // snapshot pinned after this load necessarily contains every
        // write at or below it.
        let applied_seq = self.last_applied_seq.load(Ordering::Acquire);
        if request.min_seq > applied_seq {
            self.reject(seq, &request, lane, ErrorKind::StaleRead, &responder);
            return;
        }
        let admitted = Instant::now();
        let deadline = if request.deadline_us > 0 {
            Some(admitted + Duration::from_micros(request.deadline_us))
        } else {
            self.config.lane_deadline(lane).map(|d| admitted + d)
        };
        // Pin the store version here, at admission: the job reads this
        // version no matter how many publishes land while it queues.
        let snapshot = self.store.snapshot();
        let job = Job {
            payload: JobPayload::Decoded(request),
            seq,
            lane,
            admitted,
            deadline,
            snapshot,
            applied_seq,
            responder,
        };
        self.push_job(lane, job);
    }

    /// Admission for a raw TCP frame: peek the fixed-offset header (id,
    /// deadline, staleness floor, lane), run every admission gate on
    /// it, and queue the *undecoded* payload — the lane worker that
    /// pops it does the full binding decode. This keeps the reactor
    /// thread's per-frame cost flat regardless of binding complexity.
    fn admit_frame(&self, payload: Vec<u8>, responder: Responder) {
        let header = match proto::peek_header(&payload) {
            Ok(h) => h,
            Err(e) => {
                self.admit_garbage(e.id, e.detail, responder);
                return;
            }
        };
        let lane = header.lane;
        let seq = self.log.next_seq();
        let labels = ("", 0, 0);
        if lane == Lane::Write && self.read_only.load(Ordering::Acquire) {
            self.refuse(seq, header.id, labels, lane, ErrorKind::NotPrimary, 0, &responder);
            return;
        }
        if lane == Lane::Write && self.is_fenced() {
            self.refuse(seq, header.id, labels, lane, ErrorKind::Fenced, 0, &responder);
            return;
        }
        if !self.accepting.load(Ordering::Acquire) {
            self.refuse(seq, header.id, labels, lane, ErrorKind::ShuttingDown, 0, &responder);
            return;
        }
        if self.degraded.load(Ordering::Acquire) {
            self.refuse(seq, header.id, labels, lane, ErrorKind::StorePoisoned, 0, &responder);
            return;
        }
        let applied_seq = self.last_applied_seq.load(Ordering::Acquire);
        if header.min_seq > applied_seq {
            self.refuse(
                seq,
                header.id,
                labels,
                lane,
                ErrorKind::StaleRead,
                header.min_seq,
                &responder,
            );
            return;
        }
        let admitted = Instant::now();
        let deadline = if header.deadline_us > 0 {
            Some(admitted + Duration::from_micros(header.deadline_us))
        } else {
            self.config.lane_deadline(lane).map(|d| admitted + d)
        };
        let snapshot = self.store.snapshot();
        let job = Job {
            payload: JobPayload::Raw { payload, header },
            seq,
            lane,
            admitted,
            deadline,
            snapshot,
            applied_seq,
            responder,
        };
        self.push_job(lane, job);
    }

    fn push_job(&self, lane: Lane, job: Job) {
        match self.queue.try_push(lane, job) {
            Ok(Admitted::Queued) => {}
            Ok(Admitted::QueuedEvicting(victim)) => {
                // DropOldest lane: the newcomer is queued and the stalest
                // entry is shed in its place — answered Overloaded like
                // any other shed, never silently dropped.
                self.reject_job(victim, ErrorKind::Overloaded);
            }
            Err(PushError::Full(job)) => self.reject_job(job, ErrorKind::Overloaded),
            Err(PushError::Closed(job)) => self.reject_job(job, ErrorKind::ShuttingDown),
        }
    }

    /// Handles one undecodable frame. The rejection carries the lane
    /// depths so a flooding client can tell protocol failure apart from
    /// overload even on the garbage path.
    fn admit_garbage(&self, id: Option<u64>, detail: String, responder: Responder) {
        let seq = self.log.next_seq();
        self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        self.log.push(AccessRecord {
            seq,
            workload: "",
            query: 0,
            binding_hash: 0,
            lane: "",
            queue_us: 0,
            exec_us: 0,
            outcome: ErrorKind::BadRequest.name(),
            rows: 0,
            fingerprint: 0,
            store_version: self.store.version(),
            snapshot_age_us: 0,
            profile: None,
        });
        let detail = format!("{detail} ({})", self.depths_detail());
        responder.send(Response {
            id: id.unwrap_or(u64::MAX),
            body: Err(ErrorBody { kind: ErrorKind::BadRequest, queue_us: 0, detail }),
        });
    }

    /// Handles one sequenced write batch on the submitting thread
    /// (in-process transport) and answers it.
    fn admit_write(&self, request: Request, responder: Responder) {
        let seq = self.log.next_seq();
        self.run_write(request, responder, seq, 0);
    }

    /// Drains one write-lane job on a write worker. Raw TCP frames are
    /// decoded here — a decode failure still answers a typed
    /// `bad_request`, it just does so off the reactor thread.
    fn execute_write(&self, job: Job) {
        let queue_us = job.admitted.elapsed().as_micros() as u64;
        let request = match job.payload {
            JobPayload::Decoded(req) => req,
            JobPayload::Raw { payload, .. } => match proto::decode_request(&payload) {
                Ok(req) => req,
                Err(e) => {
                    self.admit_garbage(e.id, e.detail, job.responder);
                    return;
                }
            },
        };
        self.run_write(request, job.responder, job.seq, queue_us);
    }

    /// Runs one sequenced write batch and answers it (ack ⇔ the batch
    /// is durable and applied, or was already applied and is being
    /// re-acknowledged). `queue_us` is 0 on the inline in-process path
    /// and the observed lane wait on the write-worker path.
    fn run_write(&self, request: Request, responder: Responder, seq: u64, queue_us: u64) {
        let (workload, query) = request.params.label();
        let binding_hash = request.params.binding_hash();
        let ServiceParams::Write(batch) = &request.params else {
            unreachable!("run_write is only called for Write params");
        };
        let started = Instant::now();
        let result = self.submit_batch(batch);
        let exec_us = started.elapsed().as_micros() as u64;
        let (outcome, rows, fingerprint) = match &result {
            Ok((outcome, ok)) => (*outcome, ok.rows, ok.fingerprint),
            Err(e) => (e.kind.name(), 0, 0),
        };
        if result.is_ok() {
            self.counters.served_by_lane[Lane::Write.index()].fetch_add(1, Ordering::Relaxed);
        }
        self.log.push(AccessRecord {
            seq,
            workload,
            query,
            binding_hash,
            lane: Lane::Write.name(),
            queue_us,
            exec_us,
            outcome,
            rows,
            fingerprint,
            store_version: self.store.version(),
            snapshot_age_us: 0,
            profile: None,
        });
        let body = match result {
            Ok((_, mut ok)) => {
                ok.queue_us = queue_us;
                ok.exec_us = exec_us;
                Ok(ok)
            }
            Err(mut e) => {
                e.queue_us = queue_us;
                Err(e)
            }
        };
        responder.send(Response { id: request.id, body });
    }

    /// The durable write path: dedupe check → WAL append (flushed) →
    /// build + publish the next store version → bump the applied
    /// sequence → maybe rotate the snapshot. Returns the log outcome
    /// label with the ack body.
    ///
    /// The ack body encodes the contract: `fingerprint` is the highest
    /// applied sequence number after this call, and `rows` is the
    /// number of operations applied *by this call* — `0` for a dedupe
    /// re-ack, so a client can tell first-apply from replay.
    pub(crate) fn submit_batch(
        &self,
        batch: &WriteBatch,
    ) -> Result<(&'static str, OkBody), ErrorBody> {
        let err = |kind: ErrorKind, detail: String| ErrorBody { kind, queue_us: 0, detail };
        // The split-brain chaos point: firing it opens the process-wide
        // partition window (`partition:MS@hN` = at the N-th submitted
        // batch), under which the transport black-holes traffic without
        // closing sockets. Hit-counted here so the window opens at a
        // deterministic point in the write stream.
        if let Some(fault) = snb_fault::check("net.partition") {
            fault.trip("net.partition");
        }
        if self.is_fenced() {
            self.counters.fenced_rejects.fetch_add(1, Ordering::Relaxed);
            let hint = self.primary_hint();
            let detail = if hint.is_empty() {
                format!("fenced: a newer primary exists at epoch {}", self.epoch())
            } else {
                format!("fenced: a newer primary exists at epoch {} (primary={hint})", self.epoch())
            };
            return Err(err(ErrorKind::Fenced, detail));
        }
        if self.degraded.load(Ordering::Acquire) {
            self.counters.poisoned_rejects.fetch_add(1, Ordering::Relaxed);
            return Err(err(
                ErrorKind::StorePoisoned,
                "store poisoned by a mid-apply panic; restart to recover from the WAL".into(),
            ));
        }
        if !self.accepting.load(Ordering::Acquire) {
            self.counters.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(err(ErrorKind::ShuttingDown, "server is draining for shutdown".into()));
        }
        let Some(durable) = &self.durable else {
            self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Err(err(
                ErrorKind::BadRequest,
                "server has no write-ahead log (start with --wal-dir)".into(),
            ));
        };
        let mut state = durable.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let group = state.wal.options().group_commit;
        let last = self.last_applied_seq.load(Ordering::Acquire);
        if batch.seq <= last {
            // Already applied; the ack was lost somewhere. With group
            // commit the covering flush may not have run yet — a re-ack
            // must not get ahead of the durability the original ack
            // would have waited for.
            if group && self.flushed_seq.load(Ordering::Acquire) < batch.seq {
                if let Err(e) = state.wal.sync_all() {
                    self.counters.internal_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(err(ErrorKind::Internal, format!("WAL flush failed: {e}")));
                }
                self.note_flushed(state.wal.last_seq());
            }
            self.counters.batches_deduped.fetch_add(1, Ordering::Relaxed);
            return Ok((
                "deduped",
                OkBody { rows: 0, fingerprint: last, applied_seq: last, ..OkBody::default() },
            ));
        }
        if batch.seq != last + 1 {
            self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Err(err(
                ErrorKind::BadRequest,
                format!("sequence gap: got batch {}, expected {}", batch.seq, last + 1),
            ));
        }
        if let Err(e) = state.wal.append(batch.seq, &batch.ops) {
            // Not durable ⇒ not applied, not acknowledged. The store is
            // still consistent; the client retries after restart.
            self.counters.internal_errors.fetch_add(1, Ordering::Relaxed);
            return Err(err(ErrorKind::Internal, format!("WAL append failed: {e}")));
        }
        // Build the next store version on a private copy-on-write clone
        // and publish it atomically; an error or panic discards the
        // clone, so readers can never observe the batch half-applied.
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.store.publish_with(|next| {
                let r = match &batch.ops {
                    WriteOps::Updates(events) => {
                        let mut n = 0u64;
                        let mut result = Ok(());
                        for ev in events {
                            if let Some(fault) = snb_fault::check("writer.apply.panic") {
                                fault.trip("writer.apply.panic");
                            }
                            if let Err(e) = next.apply_event(ev, &state.world) {
                                result = Err(e);
                                break;
                            }
                            n += 1;
                        }
                        result.map(|()| (n, 0u64))
                    }
                    WriteOps::Deletes(dels) => {
                        if let Some(fault) = snb_fault::check("writer.apply.panic") {
                            fault.trip("writer.apply.panic");
                        }
                        next.apply_deletes(dels).map(|_| (0u64, dels.len() as u64))
                    }
                };
                if !next.date_index_fresh() {
                    next.rebuild_date_index();
                }
                r
            })
        }));
        match applied {
            Ok(Ok((updates, deletes))) => {
                self.counters.updates_applied.fetch_add(updates, Ordering::Relaxed);
                self.counters.deletes_applied.fetch_add(deletes, Ordering::Relaxed);
                self.counters.batches_applied.fetch_add(1, Ordering::Relaxed);
                self.last_applied_seq.store(batch.seq, Ordering::Release);
                // Group commit: flush inline once the backlog reaches
                // `fsync_every` (bounds how many unacked submitters can
                // pile up); otherwise leave the flush to whichever
                // waiter gets the lock first.
                if group && state.wal.unsynced() >= state.wal.options().fsync_every.max(1) {
                    if let Err(e) = state.wal.sync_all() {
                        self.counters.internal_errors.fetch_add(1, Ordering::Relaxed);
                        return Err(err(ErrorKind::Internal, format!("WAL flush failed: {e}")));
                    }
                    self.note_flushed(state.wal.last_seq());
                }
                // Rotation failure is not fatal: the live WAL keeps
                // growing and recovery still replays everything.
                match state.wal.maybe_snapshot() {
                    Ok(rotated) => {
                        if rotated && group {
                            // Compaction sealed every segment first.
                            self.note_flushed(state.wal.last_seq());
                        }
                        if rotated && state.wal.options().image {
                            self.write_store_image(&mut state, batch.seq);
                        }
                    }
                    Err(_) => {
                        self.counters.internal_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                drop(state);
                if group {
                    self.wait_for_flush(durable, batch.seq)?;
                }
                Ok((
                    "ok",
                    OkBody {
                        rows: batch.ops.len() as u64,
                        fingerprint: batch.seq,
                        applied_seq: batch.seq,
                        ..OkBody::default()
                    },
                ))
            }
            Ok(Err(apply_err)) => {
                // A semantic failure part-way through a batch (e.g. an
                // unknown id on the third event) discarded the private
                // clone — readers keep a consistent store — but the WAL
                // now holds a batch the published store does not, so the
                // server must refuse further work until restart-recovery
                // re-converges them.
                self.degraded.store(true, Ordering::Release);
                self.counters.poisoned_rejects.fetch_add(1, Ordering::Relaxed);
                Err(err(
                    ErrorKind::StorePoisoned,
                    format!("apply failed mid-batch ({apply_err}); restart to recover"),
                ))
            }
            Err(_) => {
                self.degraded.store(true, Ordering::Release);
                self.counters.poisoned_rejects.fetch_add(1, Ordering::Relaxed);
                Err(err(
                    ErrorKind::StorePoisoned,
                    format!("panic while applying batch {}; restart to recover", batch.seq),
                ))
            }
        }
    }

    /// Writes a store image at a compaction point. Called under the
    /// durability lock right after `maybe_snapshot` rotated, so the
    /// published store is exactly the state at `seq` (no other writer
    /// can publish while the lock is held) and the just-compacted
    /// `snapshot.log` is fully covered by the image — it gets truncated
    /// behind it. Failure is non-fatal: the log-only layout remains
    /// complete and recovery still replays everything.
    fn write_store_image(&self, state: &mut DurableState, seq: u64) {
        let snapshot = self.store.snapshot();
        let store: &Store = snapshot.store();
        let (dir, scale, seed) =
            (state.wal.dir().to_path_buf(), state.wal.scale().to_string(), state.wal.seed());
        let result = crate::image::write_image(
            &dir,
            &scale,
            seed,
            state.wal.epoch(),
            seq,
            state.wal.segment_count(),
            store,
        )
        .and_then(|_| state.wal.reset_snapshot_log());
        if result.is_err() {
            self.counters.internal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Installs a shipped store image (follower bootstrap): verifies and
    /// persists the blob into the WAL directory, resets the log behind
    /// it (every held record is at or below the image's sequence), and
    /// publishes the decoded store wholesale. After this the node
    /// resumes applying shipped records from `header.seq + 1`.
    pub(crate) fn install_image(&self, bytes: &[u8]) -> SnbResult<crate::image::ImageHeader> {
        let Some(durable) = &self.durable else {
            return Err(SnbError::Config(
                "image bootstrap requires a WAL directory (start with --wal-dir)".into(),
            ));
        };
        let mut state = durable.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = state.wal.dir().to_path_buf();
        let scale = state.wal.scale().to_string();
        let seed = state.wal.seed();
        // Land the image atomically first: a crash between this and the
        // WAL reset recovers image + stale log records, all of which
        // dedupe away (every held seq <= image seq).
        let (store, header) = crate::image::install_image_bytes(&dir, &scale, seed, bytes)?;
        if header.seq < self.applied_seq() {
            return Err(SnbError::Config(format!(
                "refusing image at seq {} older than applied seq {}",
                header.seq,
                self.applied_seq()
            )));
        }
        state.wal.reset_for_image(header.seq, header.epoch)?;
        let parts = self.store.snapshot().store().partitions();
        self.store.publish_with(|next| {
            *next = PartitionedStore::new(store, parts);
            Ok(())
        })?;
        self.last_applied_seq.store(header.seq, Ordering::Release);
        self.flushed_seq.fetch_max(header.seq, Ordering::AcqRel);
        self.observe_epoch(header.epoch);
        Ok(header)
    }

    /// Records a completed flush covering everything appended up to
    /// `seq` and wakes the ack-waiters.
    fn note_flushed(&self, seq: u64) {
        self.flushed_seq.fetch_max(seq, Ordering::AcqRel);
        let _parked = self.flush_mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        self.flush_cv.notify_all();
    }

    /// Group-commit ack gate: blocks until a flush covers `my_seq`.
    /// Whichever waiter finds the durability lock free runs
    /// [`SegmentedWal::sync_all`] for everyone — one fsync releases
    /// every waiter whose append it covers; waiters that find the lock
    /// busy park briefly (an appender or flusher is making progress).
    fn wait_for_flush(&self, durable: &Mutex<DurableState>, my_seq: u64) -> Result<(), ErrorBody> {
        // Group-formation window (the commit-delay trade): park briefly
        // before volunteering to flush, so the successor batch — whose
        // client is usually already retrying its sequence-gap rejection
        // — can append first and share the fsync. A flush completing
        // during the window wakes every waiter early; checking
        // `flushed_seq` under `flush_mutex` pairs with `note_flushed`
        // taking it before notifying, so the wakeup cannot be missed.
        if self.flushed_seq.load(Ordering::Acquire) < my_seq {
            let parked = self.flush_mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if self.flushed_seq.load(Ordering::Acquire) < my_seq {
                match self.flush_cv.wait_timeout(parked, GROUP_COMMIT_WINDOW) {
                    Ok((guard, _timed_out)) => drop(guard),
                    Err(poisoned) => drop(poisoned.into_inner()),
                }
            }
        }
        loop {
            if self.flushed_seq.load(Ordering::Acquire) >= my_seq {
                return Ok(());
            }
            match durable.try_lock() {
                Ok(mut state) => {
                    if self.flushed_seq.load(Ordering::Acquire) >= my_seq {
                        return Ok(());
                    }
                    if let Err(e) = state.wal.sync_all() {
                        self.counters.internal_errors.fetch_add(1, Ordering::Relaxed);
                        return Err(ErrorBody {
                            kind: ErrorKind::Internal,
                            queue_us: 0,
                            detail: format!("WAL flush failed: {e}"),
                        });
                    }
                    self.note_flushed(state.wal.last_seq());
                    return Ok(());
                }
                Err(TryLockError::Poisoned(p)) => {
                    drop(p);
                    // A writer panicked holding the lock; the degraded
                    // path owns recovery. Do not ack.
                    return Err(ErrorBody {
                        kind: ErrorKind::StorePoisoned,
                        queue_us: 0,
                        detail: "durability lock poisoned before the covering flush".into(),
                    });
                }
                Err(TryLockError::WouldBlock) => {
                    let parked =
                        self.flush_mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    match self.flush_cv.wait_timeout(parked, Duration::from_micros(200)) {
                        Ok((guard, _timed_out)) => drop(guard),
                        Err(poisoned) => drop(poisoned.into_inner()),
                    }
                }
            }
        }
    }

    /// Executes one dequeued read job on `ctx`: deadline check at
    /// dequeue (don't execute work the client gave up on), execution
    /// against the admission-pinned snapshot, then a second deadline
    /// check at completion — a job that started inside its budget but
    /// overran mid-execution is answered `deadline_overrun`, not `ok`
    /// (before this check, overruns were silently miscounted as
    /// served).
    fn execute(&self, ctx: &QueryContext, job: Job) {
        let Job {
            payload,
            seq,
            lane: job_lane,
            admitted,
            deadline,
            snapshot,
            applied_seq,
            responder,
        } = job;
        let queue_us = admitted.elapsed().as_micros() as u64;
        // Raw TCP frames decode here, on the worker: a parse-heavy
        // binding costs worker time, never reactor time, and a decode
        // failure still answers a typed `bad_request`.
        let request = match payload {
            JobPayload::Decoded(req) => req,
            JobPayload::Raw { payload, .. } => match proto::decode_request(&payload) {
                Ok(req) => req,
                Err(e) => {
                    self.admit_garbage(e.id, e.detail, responder);
                    return;
                }
            },
        };
        let lane = job_lane.name();
        let (workload, query) = request.params.label();
        let binding_hash = request.params.binding_hash();
        // A poisoning write may have landed while this job was queued.
        if self.degraded.load(Ordering::Acquire) {
            self.counters.poisoned_rejects.fetch_add(1, Ordering::Relaxed);
            self.log.push(AccessRecord {
                seq,
                workload,
                query,
                binding_hash,
                lane,
                queue_us,
                exec_us: 0,
                outcome: ErrorKind::StorePoisoned.name(),
                rows: 0,
                fingerprint: 0,
                store_version: snapshot.version(),
                snapshot_age_us: 0,
                profile: None,
            });
            responder.send(Response {
                id: request.id,
                body: Err(ErrorBody {
                    kind: ErrorKind::StorePoisoned,
                    queue_us,
                    detail: "store poisoned by a mid-apply panic; restart to recover from the WAL"
                        .into(),
                }),
            });
            return;
        }
        if let Some(deadline) = deadline {
            if Instant::now() > deadline {
                self.counters.deadline_missed.fetch_add(1, Ordering::Relaxed);
                self.log.push(AccessRecord {
                    seq,
                    workload,
                    query,
                    binding_hash,
                    lane,
                    queue_us,
                    exec_us: 0,
                    outcome: ErrorKind::DeadlineExceeded.name(),
                    rows: 0,
                    fingerprint: 0,
                    store_version: snapshot.version(),
                    snapshot_age_us: 0,
                    profile: None,
                });
                responder.send(Response {
                    id: request.id,
                    body: Err(ErrorBody {
                        kind: ErrorKind::DeadlineExceeded,
                        queue_us,
                        detail: format!(
                            "deadline passed after {queue_us}us in queue; not executed"
                        ),
                    }),
                });
                return;
            }
        }
        ctx.metrics().reset();
        let started = Instant::now();
        let store_version = snapshot.version();
        let snapshot_age_us = snapshot.age().as_micros() as u64;
        // Bind the worker's context to the version pinned at admission:
        // the query reads that immutable snapshot — no lock, no
        // interference from concurrent publishes.
        let bound = ctx.clone().with_snapshot(snapshot.clone());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match &request.params {
                ServiceParams::Bi(p) => {
                    let s = snb_bi::run_bound(&bound, p);
                    (s.rows as u64, s.fingerprint)
                }
                ServiceParams::Ic(p) => (snb_interactive::run_complex_bound(&bound, p) as u64, 0),
                ServiceParams::Is(p) => (snb_interactive::run_short_bound(&bound, p) as u64, 0),
                // Write batches ride the write lane, never the read
                // lanes; the unwind turns a slipped-through one into
                // `internal`.
                ServiceParams::Write(_) => unreachable!("write batches bypass the read lanes"),
            }
        }));
        let exec_us = started.elapsed().as_micros() as u64;
        match outcome {
            Ok((rows, fingerprint)) => {
                // Completion-time deadline check: the work is done (and
                // its cost is visible in exec_us), but the client's
                // budget is spent — report it as an overrun, never as
                // a success.
                let overran = deadline.is_some_and(|d| Instant::now() > d);
                if overran {
                    self.counters.deadline_overrun.fetch_add(1, Ordering::Relaxed);
                    self.log.push(AccessRecord {
                        seq,
                        workload,
                        query,
                        binding_hash,
                        lane,
                        queue_us,
                        exec_us,
                        outcome: ErrorKind::DeadlineOverrun.name(),
                        rows,
                        fingerprint,
                        store_version,
                        snapshot_age_us,
                        profile: None,
                    });
                    responder.send(Response {
                        id: request.id,
                        body: Err(ErrorBody {
                            kind: ErrorKind::DeadlineOverrun,
                            queue_us,
                            detail: format!(
                                "started inside the budget but overran it: {queue_us}us queued \
                                 + {exec_us}us executing"
                            ),
                        }),
                    });
                    return;
                }
                let profile = self.config.profiling.then(|| ctx.metrics().snapshot());
                self.counters.served.fetch_add(1, Ordering::Relaxed);
                self.counters.served_by_lane[job_lane.index()].fetch_add(1, Ordering::Relaxed);
                self.log.push(AccessRecord {
                    seq,
                    workload,
                    query,
                    binding_hash,
                    lane,
                    queue_us,
                    exec_us,
                    outcome: "ok",
                    rows,
                    fingerprint,
                    store_version,
                    snapshot_age_us,
                    profile: profile.clone(),
                });
                responder.send(Response {
                    id: request.id,
                    body: Ok(OkBody { rows, fingerprint, queue_us, exec_us, applied_seq, profile }),
                });
            }
            Err(_) => {
                self.counters.internal_errors.fetch_add(1, Ordering::Relaxed);
                self.log.push(AccessRecord {
                    seq,
                    workload,
                    query,
                    binding_hash,
                    lane,
                    queue_us,
                    exec_us,
                    outcome: ErrorKind::Internal.name(),
                    rows: 0,
                    fingerprint: 0,
                    store_version,
                    snapshot_age_us,
                    profile: None,
                });
                responder.send(Response {
                    id: request.id,
                    body: Err(ErrorBody {
                        kind: ErrorKind::Internal,
                        queue_us,
                        detail: format!("{workload} {query} panicked during execution"),
                    }),
                });
            }
        }
    }

    fn worker_context(&self) -> QueryContext {
        let ctx = if self.config.threads_per_worker <= 1 {
            QueryContext::single_threaded()
        } else {
            QueryContext::new(self.config.threads_per_worker)
        };
        ctx.with_partitions(self.config.partitions.max(1)).with_profiling(self.config.profiling)
    }

    fn report(&self) -> ServiceReport {
        let snap = self.store.stats();
        let by = |a: &[AtomicU64; 3]| {
            [
                a[0].load(Ordering::Relaxed),
                a[1].load(Ordering::Relaxed),
                a[2].load(Ordering::Relaxed),
            ]
        };
        ServiceReport {
            served: self.counters.served.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            served_by_lane: by(&self.counters.served_by_lane),
            shed_by_lane: by(&self.counters.shed_by_lane),
            deadline_missed: self.counters.deadline_missed.load(Ordering::Relaxed),
            deadline_overrun: self.counters.deadline_overrun.load(Ordering::Relaxed),
            rejected_shutdown: self.counters.rejected_shutdown.load(Ordering::Relaxed),
            bad_requests: self.counters.bad_requests.load(Ordering::Relaxed),
            internal_errors: self.counters.internal_errors.load(Ordering::Relaxed),
            updates_applied: self.counters.updates_applied.load(Ordering::Relaxed),
            deletes_applied: self.counters.deletes_applied.load(Ordering::Relaxed),
            batches_applied: self.counters.batches_applied.load(Ordering::Relaxed),
            batches_deduped: self.counters.batches_deduped.load(Ordering::Relaxed),
            poisoned_rejects: self.counters.poisoned_rejects.load(Ordering::Relaxed),
            conn_stalled: self.counters.conn_stalled.load(Ordering::Relaxed),
            conn_accepted: self.counters.conn_accepted.load(Ordering::Relaxed),
            conn_peak: self.counters.conn_peak.load(Ordering::Relaxed),
            not_primary_rejects: self.counters.not_primary_rejects.load(Ordering::Relaxed),
            stale_read_rejects: self.counters.stale_read_rejects.load(Ordering::Relaxed),
            fenced_rejects: self.counters.fenced_rejects.load(Ordering::Relaxed),
            log_records: self.log.len() as u64,
            versions_published: snap.version,
            peak_live_snapshots: snap.peak_live_versions,
            reader_retries: snap.reader_retries,
            reader_blocked: snap.reader_blocked,
        }
    }
}

/// The running query service.
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    write_workers: Vec<std::thread::JoinHandle<()>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    local_addr: Option<SocketAddr>,
}

impl Server {
    /// Starts the service over an exclusively-owned store, sharding it
    /// into `config.partitions` partitions.
    pub fn start(store: Store, config: ServerConfig) -> Server {
        let parts = config.partitions.max(1);
        Server::start_shared(
            Arc::new(StoreHandle::new(PartitionedStore::new(store, parts))),
            config,
        )
    }

    /// Starts the service over a shared snapshot-publication handle —
    /// what other threads use for concurrent update replay and pinned
    /// oracle reads. The handle exposes only publish/snapshot, so no
    /// caller can bypass the writer or observe mid-batch state.
    pub fn start_shared(store: Arc<StoreHandle>, config: ServerConfig) -> Server {
        Server::start_shared_durable(store, config, None)
    }

    /// Starts the service with a write-ahead log: sequenced write
    /// batches submitted through the protocol's `Write` workload are
    /// appended + flushed before apply and ack, and deduplicated against
    /// `durability.last_seq` (the recovered high-water mark).
    pub fn start_durable(store: Store, config: ServerConfig, durability: Durability) -> Server {
        let parts = config.partitions.max(1);
        Server::start_shared_durable(
            Arc::new(StoreHandle::new(PartitionedStore::new(store, parts))),
            config,
            Some(durability),
        )
    }

    /// The general constructor behind [`Server::start`],
    /// [`Server::start_shared`] and [`Server::start_durable`].
    pub fn start_shared_durable(
        store: Arc<StoreHandle>,
        config: ServerConfig,
        durability: Option<Durability>,
    ) -> Server {
        let (durable, last_seq, epoch) = match durability {
            None => (None, 0, 0),
            Some(d) => {
                (Some(Mutex::new(DurableState { wal: d.wal, world: d.world })), d.last_seq, d.epoch)
            }
        };
        let queue = LaneQueues::new(
            [
                config.lane_capacity(Lane::Short),
                config.lane_capacity(Lane::Heavy),
                config.lane_capacity(Lane::Write),
            ],
            [config.lanes.short.shed, config.lanes.heavy.shed, config.lanes.write.shed],
            config.short_weight(),
        );
        let read_only = config.read_only;
        let inner = Arc::new(ServerInner {
            store,
            queue,
            log: AccessLog::new(),
            accepting: AtomicBool::new(true),
            config,
            counters: Counters::default(),
            durable,
            last_applied_seq: AtomicU64::new(last_seq),
            flushed_seq: AtomicU64::new(last_seq),
            flush_mutex: Mutex::new(()),
            flush_cv: Condvar::new(),
            degraded: AtomicBool::new(false),
            read_only: AtomicBool::new(read_only),
            epoch: AtomicU64::new(epoch),
            fenced: AtomicBool::new(false),
            primary_hint: Mutex::new(String::new()),
            repl_target: Mutex::new(String::new()),
        });
        let workers: Vec<_> = (0..inner.config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    let ctx = inner.worker_context();
                    while let Some((_lane, job)) = inner.queue.pop_read() {
                        inner.execute(&ctx, job);
                    }
                })
            })
            .collect();
        // The write lane gets its own drain threads so a WAL fsync in
        // one batch never stalls read progress; with `workers == 0`
        // (inline test mode) writes drain inline at shutdown too.
        let write_worker_count =
            if inner.config.workers == 0 { 0 } else { inner.config.write_workers.max(1) };
        let write_workers = (0..write_worker_count)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    while let Some(job) = inner.queue.pop_write() {
                        inner.execute_write(job);
                    }
                })
            })
            .collect();
        Server {
            inner,
            workers,
            write_workers,
            acceptor: None,
            connections: Arc::new(Mutex::new(Vec::new())),
            local_addr: None,
        }
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections; returns the bound address.
    ///
    /// On Linux the transport is a readiness-driven reactor: a single
    /// thread `epoll_wait`s on the listener plus every connection, so
    /// an idle connection costs one registered fd and a buffer rather
    /// than an OS thread — the property that lets `service_load
    /// --sweep` hold a thousand connections open against a fixed
    /// thread count. Elsewhere it falls back to thread-per-connection.
    pub fn listen(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        self.local_addr = Some(local);
        let inner = Arc::clone(&self.inner);
        #[cfg(target_os = "linux")]
        {
            let poller = crate::reactor::Poller::new()?;
            self.acceptor =
                Some(std::thread::spawn(move || reactor_loop(&inner, listener, poller)));
        }
        #[cfg(not(target_os = "linux"))]
        {
            let connections = Arc::clone(&self.connections);
            self.acceptor = Some(std::thread::spawn(move || {
                while inner.accepting.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            inner.counters.conn_accepted.fetch_add(1, Ordering::Relaxed);
                            let inner = Arc::clone(&inner);
                            let handle =
                                std::thread::spawn(move || connection_loop(&inner, stream));
                            let mut conns = connections
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            conns.push(handle);
                            inner
                                .counters
                                .conn_peak
                                .fetch_max(conns.len() as u64, Ordering::Relaxed);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }
        Ok(local)
    }

    /// The bound TCP address, when listening.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// An in-process client handle (deterministic test transport).
    pub fn client(&self) -> InProcClient {
        InProcClient { inner: Arc::clone(&self.inner), next_id: AtomicU64::new(1) }
    }

    /// A write handle for concurrent update replay.
    pub fn writer(&self) -> StoreWriter {
        StoreWriter { inner: Arc::clone(&self.inner) }
    }

    /// The snapshot-publication handle (for oracles pinning versions
    /// and for external writers sharing this server's store).
    pub fn store_handle(&self) -> Arc<StoreHandle> {
        Arc::clone(&self.inner.store)
    }

    /// The latest published store version — a lock-free pin.
    pub fn snapshot(&self) -> StoreSnapshot {
        self.inner.store.snapshot()
    }

    /// Snapshot-publication counters (versions published, live/peak
    /// snapshot gauges, reader retry/blocked counts).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.inner.store.stats()
    }

    /// `fsync(2)` calls issued by the WAL so far (0 without one) — the
    /// group-commit sharing metric for `--wal-bench`.
    pub fn wal_syncs(&self) -> u64 {
        let Some(durable) = &self.inner.durable else { return 0 };
        let state = durable.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.wal.syncs()
    }

    /// The access log.
    pub fn access_log(&self) -> &AccessLog {
        &self.inner.log
    }

    /// A handle to the access log that stays valid after
    /// [`Server::shutdown`] consumes the server — the binary uses it to
    /// flush the final log (drained records included) to disk.
    pub fn log_handle(&self) -> LogHandle {
        LogHandle { inner: Arc::clone(&self.inner) }
    }

    /// Point-in-time counter snapshot (the final one comes from
    /// [`Server::shutdown`]).
    pub fn report_now(&self) -> ServiceReport {
        self.inner.report()
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.inner.queue.len()
    }

    /// Highest write-batch sequence number applied (0 when the server
    /// has no durable write path or nothing was submitted).
    pub fn last_applied_seq(&self) -> u64 {
        self.inner.last_applied_seq.load(Ordering::Acquire)
    }

    /// Whether a mid-apply panic has poisoned the store (every request
    /// is refused until restart-and-recovery).
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::Acquire)
    }

    /// Whether this node refuses client writes (follower mode).
    pub fn is_read_only(&self) -> bool {
        self.inner.read_only.load(Ordering::Acquire)
    }

    /// Whether this node has been fenced by a higher epoch (client
    /// writes answer `fenced` until re-promotion).
    pub fn is_fenced(&self) -> bool {
        self.inner.is_fenced()
    }

    /// The node's current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// Promotes a read-only follower to a writable primary and returns
    /// the sequence it is writable from (its applied high-water mark).
    /// The fencing epoch is durably bumped *before* the node goes
    /// writable. Idempotent: promoting a primary just reports its
    /// current seq.
    pub fn promote(&self) -> u64 {
        match self.inner.promote_inner(0) {
            Ok((seq, _)) => seq,
            Err(e) => panic!("promotion failed to bump the fencing epoch: {e:?}"),
        }
    }

    /// Highest WAL sequence known flushed (the replication shipping
    /// bound: followers only ever see acked records).
    pub fn flushed_seq(&self) -> u64 {
        self.inner.flushed_seq.load(Ordering::Acquire)
    }

    /// The shared server core, for the replication module's accept
    /// loop and follower applier.
    pub(crate) fn inner(&self) -> &Arc<ServerInner> {
        &self.inner
    }

    /// Graceful drain-then-shutdown: stop accepting, finish every
    /// admitted job, join all threads, return the final report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.inner.accepting.store(false, Ordering::Release);
        self.inner.queue.close();
        // No background workers (test mode): drain both read lanes and
        // the write lane inline so admitted jobs still complete before
        // the report is cut.
        if self.workers.is_empty() {
            let ctx = self.inner.worker_context();
            while let Some((_lane, job)) = self.inner.queue.pop_read() {
                self.inner.execute(&ctx, job);
            }
        }
        if self.write_workers.is_empty() {
            while let Some(job) = self.inner.queue.pop_write() {
                self.inner.execute_write(job);
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for w in self.write_workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let handles: Vec<_> = std::mem::take(
            &mut *self.connections.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
        // Seal the WAL: any fsync-batched tail becomes durable before
        // the process exits.
        if let Some(durable) = &self.inner.durable {
            let mut state = durable.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = state.wal.sync();
        }
        self.inner.report()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Belt-and-braces for servers dropped without `shutdown()`:
        // unblock workers so their threads exit instead of leaking.
        self.inner.accepting.store(false, Ordering::Release);
        self.inner.queue.close();
    }
}

/// The readiness-driven transport: one thread owns the listener and
/// every connection, multiplexed through [`crate::reactor::Poller`].
/// Accepts, drains readable sockets into per-connection buffers,
/// decodes frames, and admits them; responses are written by the
/// workers through each connection's shared (mutexed) write half, so
/// they may interleave in completion order — clients match on the
/// correlation id. Writer clones held by in-flight jobs keep a socket
/// open after the reactor drops a connection, which is what lets
/// shutdown drain admitted work to the wire.
#[cfg(target_os = "linux")]
fn reactor_loop(
    inner: &Arc<ServerInner>,
    listener: TcpListener,
    mut poller: crate::reactor::Poller,
) {
    use std::collections::HashMap;
    use std::os::fd::AsRawFd;

    struct Conn {
        reader: TcpStream,
        writer: Arc<Mutex<TcpStream>>,
        buf: Vec<u8>,
        last_progress: Instant,
    }

    const LISTENER: u64 = 0;
    // Per-connection read budget per wakeup: bounds how long one chatty
    // peer can monopolize the reactor. Level-triggered registration
    // re-reports an undrained fd on the next wait, so no data is lost.
    const READS_PER_WAKE: usize = 4;

    if poller.add(listener.as_raw_fd(), LISTENER).is_err() {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = LISTENER + 1;
    let mut events = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    while inner.accepting.load(Ordering::Acquire) {
        if poller.wait(Duration::from_millis(25), &mut events).is_err() {
            break;
        }
        if let Some(fault) = snb_fault::check("conn.read.stall") {
            // Simulates a handler wedged in the read path (the hazard
            // the idle deadline exists for).
            fault.trip("conn.read.stall");
        }
        for ev in &events {
            if ev.token == LISTENER {
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let Ok(writer) = stream.try_clone() else { continue };
                            if poller.add(stream.as_raw_fd(), next_token).is_err() {
                                continue;
                            }
                            inner.counters.conn_accepted.fetch_add(1, Ordering::Relaxed);
                            conns.insert(
                                next_token,
                                Conn {
                                    reader: stream,
                                    writer: Arc::new(Mutex::new(writer)),
                                    buf: Vec::new(),
                                    last_progress: Instant::now(),
                                },
                            );
                            inner
                                .counters
                                .conn_peak
                                .fetch_max(conns.len() as u64, Ordering::Relaxed);
                            next_token += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else { continue };
            let mut drop_conn = ev.closed && !ev.readable;
            if ev.readable && snb_fault::partition_active() {
                // Black-holed: drain and discard so the peer's bytes
                // vanish in transit (no decode, no response, no close).
                // `last_progress` advances so the idle sweep does not
                // turn a partition into a connection close.
                while let Ok(n) = conn.reader.read(&mut tmp) {
                    if n == 0 {
                        drop_conn = true;
                        break;
                    }
                }
                conn.buf.clear();
                conn.last_progress = Instant::now();
            } else if ev.readable {
                for _ in 0..READS_PER_WAKE {
                    match conn.reader.read(&mut tmp) {
                        Ok(0) => {
                            drop_conn = true;
                            break;
                        }
                        Ok(n) => {
                            conn.buf.extend_from_slice(&tmp[..n]);
                            conn.last_progress = Instant::now();
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            drop_conn = true;
                            break;
                        }
                    }
                }
                loop {
                    match proto::take_frame(&mut conn.buf) {
                        // Decode happens on a lane worker, not here: the
                        // reactor only peeks the fixed header for routing,
                        // so a parse-heavy peer cannot stall transport
                        // reads for every other connection.
                        Ok(Some(payload)) => {
                            inner.admit_frame(payload, Responder::Tcp(Arc::clone(&conn.writer)));
                        }
                        Ok(None) => break,
                        // Unrecoverable framing violation: drop the
                        // connection.
                        Err(_) => {
                            drop_conn = true;
                            break;
                        }
                    }
                }
            }
            if drop_conn {
                if let Some(conn) = conns.remove(&ev.token) {
                    poller.delete(conn.reader.as_raw_fd());
                }
            }
        }
        // Idle sweep: a Slowloris / half-open peer is closed with a
        // typed outcome instead of pinning its fd forever.
        if let Some(limit) = inner.config.conn_read_timeout {
            let stalled: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| c.last_progress.elapsed() > limit)
                .map(|(t, _)| *t)
                .collect();
            for token in stalled {
                let Some(conn) = conns.remove(&token) else { continue };
                poller.delete(conn.reader.as_raw_fd());
                inner.counters.conn_stalled.fetch_add(1, Ordering::Relaxed);
                inner.log.push(AccessRecord {
                    seq: inner.log.next_seq(),
                    workload: "",
                    query: 0,
                    binding_hash: 0,
                    lane: "",
                    queue_us: limit.as_micros() as u64,
                    exec_us: 0,
                    outcome: "conn_stalled",
                    rows: 0,
                    fingerprint: 0,
                    store_version: inner.store.version(),
                    snapshot_age_us: 0,
                    profile: None,
                });
            }
        }
    }
}

/// Reads frames off one TCP connection and admits them (the non-Linux
/// fallback transport — one thread per connection). The read half uses
/// a timeout poll so the thread notices shutdown; the write half is
/// shared (behind a mutex) with the workers answering this
/// connection's requests, so responses may interleave in completion
/// order — clients match on the correlation id.
#[cfg(not(target_os = "linux"))]
fn connection_loop(inner: &Arc<ServerInner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    // A stalled peer must not pin the shared write half either: a full
    // socket buffer on a dead client fails the write instead of
    // blocking a worker forever.
    let _ = stream.set_write_timeout(inner.config.conn_read_timeout);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut last_progress = Instant::now();
    loop {
        loop {
            match proto::take_frame(&mut buf) {
                // Decode happens on a lane worker: this thread only peeks
                // the fixed header for routing.
                Ok(Some(payload)) => {
                    inner.admit_frame(payload, Responder::Tcp(Arc::clone(&writer)));
                }
                Ok(None) => break,
                // Unrecoverable framing violation: drop the connection.
                Err(_) => return,
            }
        }
        if let Some(fault) = snb_fault::check("conn.read.stall") {
            // Simulates a handler wedged in the read path (the hazard
            // the idle deadline exists for).
            fault.trip("conn.read.stall");
        }
        match reader.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => {
                if snb_fault::partition_active() {
                    // Black-holed: the peer's bytes vanish in transit —
                    // no decode, no response, and the socket stays open.
                    buf.clear();
                    last_progress = Instant::now();
                    continue;
                }
                buf.extend_from_slice(&tmp[..n]);
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !inner.accepting.load(Ordering::Acquire) {
                    return;
                }
                if let Some(limit) = inner.config.conn_read_timeout {
                    if last_progress.elapsed() > limit {
                        // Slowloris / half-open peer: close with a typed
                        // outcome instead of pinning this thread.
                        inner.counters.conn_stalled.fetch_add(1, Ordering::Relaxed);
                        inner.log.push(AccessRecord {
                            seq: inner.log.next_seq(),
                            workload: "",
                            query: 0,
                            binding_hash: 0,
                            lane: "",
                            queue_us: limit.as_micros() as u64,
                            exec_us: 0,
                            outcome: "conn_stalled",
                            rows: 0,
                            fingerprint: 0,
                            store_version: inner.store.version(),
                            snapshot_age_us: 0,
                            profile: None,
                        });
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}

/// Owner-independent view of the server's access log (outlives
/// [`Server::shutdown`]).
pub struct LogHandle {
    inner: Arc<ServerInner>,
}

impl LogHandle {
    /// The underlying access log.
    pub fn log(&self) -> &AccessLog {
        &self.inner.log
    }

    /// Writes the log as JSON Lines to `path`.
    pub fn flush_to(&self, path: &str) -> std::io::Result<()> {
        self.inner.log.flush_to(path)
    }
}

/// Deterministic in-process transport: submits through the same
/// admission path as TCP, blocks for the response.
pub struct InProcClient {
    inner: Arc<ServerInner>,
    next_id: AtomicU64,
}

impl InProcClient {
    /// Executes one request; `deadline_us = 0` means "server default".
    pub fn call(&self, params: ServiceParams, deadline_us: u64) -> Response {
        self.call_min_seq(params, deadline_us, 0)
    }

    /// Like [`InProcClient::call`] with a bounded-staleness floor: the
    /// request is refused with `stale_read` unless the server has
    /// applied at least write sequence `min_seq`.
    pub fn call_min_seq(&self, params: ServiceParams, deadline_us: u64, min_seq: u64) -> Response {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.inner.admit(Request { id, deadline_us, min_seq, params }, Responder::InProc(tx));
        rx.recv().unwrap_or(Response {
            id,
            body: Err(ErrorBody {
                kind: ErrorKind::ShuttingDown,
                queue_us: 0,
                detail: "server terminated before responding".into(),
            }),
        })
    }
}

/// Write handle: applies update-stream events and delete operations by
/// building and publishing new store versions — each successful call
/// publishes exactly one version with the date index repaired, so
/// readers admitted afterwards see it fresh and readers admitted
/// before keep their pinned version untouched.
pub struct StoreWriter {
    inner: Arc<ServerInner>,
}

impl StoreWriter {
    /// Refuses writes once the store is poisoned, so an unacknowledged
    /// failed batch cannot be compounded.
    fn check_degraded(&self, doing: &str) -> SnbResult<()> {
        if self.inner.degraded.load(Ordering::Acquire) {
            return Err(SnbError::Poisoned { detail: format!("refusing {doing}") });
        }
        Ok(())
    }

    /// Runs one publish attempt with the writer's panic-to-poisoned
    /// conversion: a panic inside the apply (including an injected
    /// `writer.apply.panic` fault) discards the private clone — the
    /// *published* store stays consistent — but the write is lost
    /// unacknowledged, so the server degrades and refuses requests
    /// until restart-and-replay from the WAL re-converges state.
    fn publish_guarded<R>(
        &self,
        doing: &'static str,
        f: impl FnOnce(&mut PartitionedStore) -> SnbResult<R>,
    ) -> SnbResult<R> {
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner.store.publish_with(|next| {
                if let Some(fault) = snb_fault::check("writer.apply.panic") {
                    fault.trip("writer.apply.panic");
                }
                let r = f(next)?;
                if !next.date_index_fresh() {
                    next.rebuild_date_index();
                }
                Ok(r)
            })
        }));
        match applied {
            Ok(r) => r,
            Err(_) => {
                self.inner.degraded.store(true, Ordering::Release);
                self.inner.counters.poisoned_rejects.fetch_add(1, Ordering::Relaxed);
                Err(SnbError::Poisoned {
                    detail: format!("panic while applying {doing}; restart to recover"),
                })
            }
        }
    }

    /// Applies one insert event (IU 1–8), publishing one store version.
    pub fn apply_update(&self, event: &TimedEvent, world: &StaticWorld) -> SnbResult<()> {
        self.check_degraded("an update on a poisoned store")?;
        self.publish_guarded("an update event", |next| next.apply_event(event, world))?;
        self.inner.counters.updates_applied.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Applies a slice of insert events as **one** published version —
    /// the batched replay path: the copy-on-write cost of cloning the
    /// touched columns is paid once per batch instead of once per
    /// event. All-or-nothing: an error on any event publishes nothing.
    pub fn apply_update_batch(&self, events: &[TimedEvent], world: &StaticWorld) -> SnbResult<u64> {
        self.check_degraded("an update batch on a poisoned store")?;
        let n = self.publish_guarded("an update batch", |next| {
            let mut n = 0u64;
            for ev in events {
                next.apply_event(ev, world)?;
                n += 1;
            }
            Ok(n)
        })?;
        self.inner.counters.updates_applied.fetch_add(n, Ordering::Relaxed);
        Ok(n)
    }

    /// Applies a batch of delete operations (DEL 1–8), publishing one
    /// store version.
    pub fn apply_deletes(&self, ops: &[DeleteOp]) -> SnbResult<DeleteStats> {
        self.check_degraded("a delete batch on a poisoned store")?;
        let stats = self.publish_guarded("a delete batch", |next| next.apply_deletes(ops))?;
        self.inner.counters.deletes_applied.fetch_add(ops.len() as u64, Ordering::Relaxed);
        Ok(stats)
    }

    /// Validates store invariants on the latest published version (the
    /// serializability probe of the concurrent harness).
    pub fn validate_invariants(&self) -> SnbResult<()> {
        self.inner.store.snapshot().validate_invariants()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.inner.config.workers)
            .field("queue_capacity", &self.inner.config.queue_capacity)
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

/// Convenience constructor for errors the binary reports.
pub fn config_error(detail: impl Into<String>) -> SnbError {
    SnbError::Config(detail.into())
}
