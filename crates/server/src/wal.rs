//! Write-ahead log and snapshot recovery for the update-stream write
//! path.
//!
//! ## Durability contract
//!
//! Every accepted write batch is serialised (via [`crate::events`]),
//! appended to `wal.log`, and flushed *before* it is applied to the
//! in-memory store and acknowledged. An acknowledged batch therefore
//! survives a SIGKILL at any instruction (with `fsync_every = 1`; larger
//! values batch the fsync and weaken the contract to "survives process
//! death but not power loss", which the service benchmark records as the
//! cheap mode).
//!
//! ## Segments
//!
//! With `partitions = N > 1` the live log is split into per-partition
//! **segments** `wal-0.log … wal-{N-1}.log`; a batch is routed to the
//! segment of [`crate::events::route_key`]'s owning shard
//! ([`snb_store::partition_of_raw`]). Sequence numbers stay globally
//! contiguous across segments — the order of record *within* the whole
//! log is the sequence number, not file position — so recovery scans
//! every segment (truncating each torn tail independently), merges the
//! entries by `seq`, and replays them in one monotonic pass: shards
//! recover independently but converge to the identical store. The
//! compaction snapshot stays a single file holding the seq-merged view
//! of all segments. With `partitions = 1` the layout is byte-identical
//! to the original single `wal.log`.
//!
//! ## Group commit
//!
//! `group_commit = true` defers every per-append fsync to an explicit
//! [`SegmentedWal::sync_all`], which flushes only dirty segments. The
//! server layers the ack protocol on top: an append's acknowledgement
//! is released only once a covering flush has run, so many concurrent
//! submitters share one fsync without weakening the "acknowledged ⇒
//! durable" contract (the `--wal-bench` harness measures the delta).
//!
//! ## File format
//!
//! Both `wal.log` and `snapshot.log` start with an 8-byte magic, the
//! scale name (`u16`-length string), the generator seed (`u64`) and the
//! **fencing epoch** (`u64`) — scale and seed name the deterministic
//! bulk image the log is relative to, and the epoch is the replication
//! term the node last served under ([`SegmentedWal::bump_epoch`] is
//! called on promotion, before the node goes writable, so a restarted
//! ex-primary recovers the term it was fenced at). Each record is:
//!
//! ```text
//! [u32 payload_len][u64 fnv64(payload)][payload]
//! payload = [u64 seq][u8 family][count + ops]   (events codec)
//! ```
//!
//! A record whose bytes are incomplete or whose checksum mismatches is a
//! *torn tail*: recovery truncates the file at the record boundary and
//! replays nothing from it — a torn batch was by definition never
//! acknowledged, so dropping it is correct, and the retrying client will
//! re-submit it.
//!
//! ## Snapshots
//!
//! A "snapshot" here is log compaction, not a serialised store image:
//! `snapshot.log` absorbs the live WAL's records (atomic
//! write-temp + fsync + rename), after which `wal.log` is reset to a bare
//! header. This bounds the live WAL — the file an append must seek past
//! and the only region where torn records can appear — while keeping
//! replay byte-exact: recovery rebuilds the bulk store from (scale,
//! seed), replays `snapshot.log`, then the `wal.log` tail, through the
//! *same* `apply_event`/`apply_deletes` path the original writes took.
//!
//! Fault points: `wal.append.short_write` (torn write at append),
//! `wal.append.post_append` (crash window between durability and apply).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use snb_core::{SnbError, SnbResult};
use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::GeneratorConfig;
use snb_store::Store;

use crate::events::{decode_write_ops, encode_write_ops};
use crate::proto::{put_str, put_u64, put_u8, Reader, WriteOps};

const WAL_MAGIC: &[u8; 8] = b"SNBWAL1\n";
const SNAP_MAGIC: &[u8; 8] = b"SNBSNAP\n";
const WAL_FILE: &str = "wal.log";
const SNAP_FILE: &str = "snapshot.log";
const SNAP_TMP: &str = "snapshot.tmp";

/// FNV-1a 64-bit over a byte slice — the per-record checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Tuning knobs for the log.
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// `fsync` after every N appends. `1` gives the full "acknowledged ⇒
    /// survives SIGKILL and power loss" contract; larger values batch
    /// the flush (still `write(2)`-complete before the ack, so a plain
    /// process kill loses nothing the page cache survives).
    pub fsync_every: u64,
    /// Compact the live WAL into the snapshot once it holds this many
    /// records. `0` disables rotation.
    pub snapshot_every: u64,
    /// Number of per-partition WAL segments (`0`/`1` = the classic
    /// single `wal.log`). Must match the directory's existing layout.
    pub partitions: usize,
    /// Defer per-append fsyncs to explicit [`SegmentedWal::sync_all`]
    /// calls so the server can share one flush across many concurrent
    /// acknowledgements. Off, appends sync per `fsync_every` exactly as
    /// before.
    pub group_commit: bool,
    /// Write a store image (`store.img`, see [`crate::image`]) at every
    /// compaction point and truncate `snapshot.log` behind it, so
    /// recovery cost is bounded by live-data size instead of history
    /// length. Off by default: the classic log-only layout (recovery
    /// replays full history) is unchanged, and any *existing* image in
    /// the directory is still used by [`recover`].
    pub image: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync_every: 1,
            snapshot_every: 4096,
            partitions: 1,
            group_commit: false,
            image: false,
        }
    }
}

/// The live-log file name of segment `p` under `parts` partitions: the
/// classic `wal.log` single-segment layout, or `wal-{p}.log`.
fn segment_file(p: usize, parts: usize) -> String {
    if parts <= 1 {
        WAL_FILE.to_string()
    } else {
        format!("wal-{p}.log")
    }
}

/// One durable record: a sequenced write batch.
#[derive(Clone, Debug)]
pub struct WalEntry {
    /// Contiguous batch sequence number (1-based).
    pub seq: u64,
    /// The batch payload.
    pub ops: WriteOps,
}

/// What recovery found and did — surfaced in the server's startup line
/// and asserted on by the chaos tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed from `snapshot.log`.
    pub snapshot_entries: u64,
    /// Records replayed from the live `wal.log`.
    pub wal_entries: u64,
    /// Bytes cut from the WAL tail (torn or checksum-failed records).
    pub truncated_bytes: u64,
    /// Highest batch sequence number recovered; the server resumes
    /// deduplication from here.
    pub last_seq: u64,
    /// Recovery wall-clock, microseconds (store rebuild + replay) —
    /// the baseline a replication catch-up is measured against.
    pub recovery_us: u64,
    /// Fencing epoch recovered from the log headers (the maximum across
    /// the snapshot and every segment — a crash mid-[`SegmentedWal::
    /// bump_epoch`] may leave mixed headers, and the bumped value must
    /// win to keep the term monotonic).
    pub epoch: u64,
    /// Sequence number of the store image recovery started from (0 when
    /// no image was found and the bulk store was rebuilt from scratch).
    pub image_seq: u64,
    /// Wall-clock microseconds spent loading and decoding the store
    /// image (0 when no image was used).
    pub image_us: u64,
    /// Records actually applied on top of the starting point (image or
    /// bulk rebuild). Without an image this equals [`RecoveryReport::
    /// replayed`]; with one, scanned-but-stale records (`seq <=
    /// image_seq`, e.g. a `snapshot.log` not yet truncated behind the
    /// image) are counted by `snapshot_entries`/`wal_entries` but not
    /// here.
    pub tail_replayed: u64,
}

impl RecoveryReport {
    /// Total records replayed through the real apply path (snapshot
    /// plus live WAL tail).
    pub fn replayed(&self) -> u64 {
        self.snapshot_entries + self.wal_entries
    }
}

/// An append-only write-ahead log rooted at a directory — one segment
/// file. [`SegmentedWal`] composes several under a global sequence.
pub struct Wal {
    dir: PathBuf,
    file_name: String,
    file: File,
    options: WalOptions,
    scale: String,
    seed: u64,
    live_entries: u64,
    appends_since_sync: u64,
    last_seq: u64,
    /// Fencing epoch recorded in this segment's header.
    epoch: u64,
    /// Set after a failed (torn) append: the file tail is garbage, so
    /// further appends must be refused until restart-and-recover.
    broken: bool,
}

fn parse_err(context: &str, detail: impl Into<String>) -> SnbError {
    SnbError::Parse { context: context.to_string(), detail: detail.into() }
}

fn write_header(buf: &mut Vec<u8>, magic: &[u8; 8], scale: &str, seed: u64, epoch: u64) {
    buf.extend_from_slice(magic);
    put_str(buf, scale);
    put_u64(buf, seed);
    put_u64(buf, epoch);
}

/// Byte offset of the `u64` epoch field inside a log header — fixed
/// once the scale name is known, so [`SegmentedWal::bump_epoch`] can
/// overwrite it in place without rewriting the log.
fn header_epoch_offset(scale: &str) -> u64 {
    (8 + 2 + scale.len() + 8) as u64
}

/// Reads and validates a log header; returns the offset of the first
/// record and the fencing epoch the header carries. Scale and seed are
/// match requirements (a log for a different world must not replay);
/// the epoch is data — recovery takes the maximum it sees.
fn check_header(
    bytes: &[u8],
    magic: &[u8; 8],
    scale: &str,
    seed: u64,
    path: &Path,
) -> SnbResult<(usize, u64)> {
    let ctx = path.display().to_string();
    if bytes.len() < 8 || &bytes[..8] != magic {
        return Err(parse_err(&ctx, "bad or missing log magic"));
    }
    let mut r = Reader::new(&bytes[8..]);
    let got_scale = r.string().map_err(|e| parse_err(&ctx, e.detail))?;
    let got_seed = r.u64().map_err(|e| parse_err(&ctx, e.detail))?;
    let epoch = r.u64().map_err(|e| parse_err(&ctx, e.detail))?;
    if got_scale != scale || got_seed != seed {
        return Err(parse_err(
            &ctx,
            format!(
                "log is for scale {got_scale:?} seed {got_seed}, \
                 server configured for scale {scale:?} seed {seed}"
            ),
        ));
    }
    Ok((8 + r.pos(), epoch))
}

/// Scans records from `bytes[offset..]`. Returns the parsed entries plus
/// the offset one past the last *valid* record — anything beyond it is a
/// torn tail (incomplete length/checksum/payload, or a checksum
/// mismatch) that the caller should truncate away.
fn scan_records(bytes: &[u8], offset: usize, ctx: &str) -> SnbResult<(Vec<WalEntry>, usize)> {
    let (located, valid_end) = scan_records_located(bytes, offset, ctx)?;
    Ok((located.into_iter().map(|(_, e)| e).collect(), valid_end))
}

/// [`scan_records`], but each entry carries the byte offset its record
/// starts at — recovery needs it to truncate a segment mid-file when a
/// global sequence gap invalidates a suffix.
fn scan_records_located(
    bytes: &[u8],
    mut offset: usize,
    ctx: &str,
) -> SnbResult<(Vec<(usize, WalEntry)>, usize)> {
    let mut entries = Vec::new();
    while offset < bytes.len() {
        if bytes.len() - offset < 12 {
            break; // torn length/checksum prefix
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let sum = u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().expect("8 bytes"));
        let start = offset + 12;
        let end = start + len as usize;
        if end > bytes.len() {
            break; // torn payload
        }
        let payload = &bytes[start..end];
        if fnv64(payload) != sum {
            break; // bit rot or a torn overwrite; nothing past it is trustworthy
        }
        let mut r = Reader::new(payload);
        let entry = (|| -> Result<WalEntry, crate::proto::DecodeError> {
            let seq = r.u64()?;
            let family = r.u8()?;
            let ops = decode_write_ops(&mut r, family)?;
            r.finish()?;
            Ok(WalEntry { seq, ops })
        })()
        .map_err(|e| {
            parse_err(ctx, format!("checksummed record failed to decode: {}", e.detail))
        })?;
        entries.push((offset, entry));
        offset = end;
    }
    Ok((entries, offset))
}

fn encode_record(seq: u64, ops: &WriteOps) -> Vec<u8> {
    let mut payload = Vec::with_capacity(256);
    put_u64(&mut payload, seq);
    put_u8(&mut payload, ops.query_tag());
    encode_write_ops(&mut payload, ops);
    let mut record = Vec::with_capacity(payload.len() + 12);
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&fnv64(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

impl Wal {
    /// Opens (or creates) the live WAL under `dir` for appending. The
    /// header must match `(scale, seed)`; recovery is the caller's job —
    /// this is the post-recovery append handle.
    pub fn open(
        dir: &Path,
        scale: &str,
        seed: u64,
        options: WalOptions,
        last_seq: u64,
        live_entries: u64,
    ) -> SnbResult<Wal> {
        Wal::open_segment(dir, WAL_FILE, scale, seed, options, last_seq, live_entries, 0)
    }

    /// Opens one named segment file (see [`segment_file`]). A fresh
    /// file is created at `epoch`; an existing file keeps the epoch its
    /// header carries (the param is a creation default, not a match
    /// requirement).
    #[allow(clippy::too_many_arguments)]
    fn open_segment(
        dir: &Path,
        file_name: &str,
        scale: &str,
        seed: u64,
        options: WalOptions,
        last_seq: u64,
        live_entries: u64,
        epoch: u64,
    ) -> SnbResult<Wal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(file_name);
        let fresh = !path.exists();
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(&path)?;
        let mut epoch = epoch;
        if fresh {
            let mut header = Vec::new();
            write_header(&mut header, WAL_MAGIC, scale, seed, epoch);
            file.write_all(&header)?;
            file.sync_data()?;
        } else {
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            let (_, stored) = check_header(&bytes, WAL_MAGIC, scale, seed, &path)?;
            epoch = stored;
            file.seek(SeekFrom::End(0))?;
        }
        Ok(Wal {
            dir: dir.to_path_buf(),
            file_name: file_name.to_string(),
            file,
            options,
            scale: scale.to_string(),
            seed,
            live_entries,
            appends_since_sync: 0,
            last_seq,
            epoch,
            broken: false,
        })
    }

    /// Highest sequence number durably appended.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    fn path(&self) -> PathBuf {
        self.dir.join(&self.file_name)
    }

    /// Writes one encoded record to the segment file, honouring the
    /// short-write fault point. No fsync — the caller owns the policy.
    fn write_record(&mut self, record: &[u8]) -> SnbResult<()> {
        if self.broken {
            return Err(SnbError::Io(std::io::Error::other(
                "WAL has a torn tail from a failed append; restart to recover",
            )));
        }
        if let Some(fault) = snb_fault::check("wal.append.short_write") {
            let n = fault.short_write.unwrap_or(0).min(record.len());
            self.file.write_all(&record[..n])?;
            let _ = self.file.sync_data();
            self.broken = true;
            fault.trip("wal.append.short_write");
            return Err(SnbError::Io(std::io::Error::other(
                "injected short write tore the WAL tail",
            )));
        }
        if let Err(e) = self.file.write_all(record) {
            // The record may be partially on disk: a torn tail. Refuse
            // further appends until restart-and-recover truncates it.
            self.broken = true;
            return Err(e.into());
        }
        Ok(())
    }

    /// Flushes the segment file, marking the segment broken on failure.
    fn sync_data(&mut self) -> SnbResult<()> {
        if let Err(e) = self.file.sync_data() {
            self.broken = true;
            return Err(e.into());
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Truncates the segment back to a bare header (post-compaction).
    fn reset_to_header(&mut self) -> SnbResult<()> {
        // set_len + seek keeps the same append handle valid.
        let mut header = Vec::new();
        write_header(&mut header, WAL_MAGIC, &self.scale, self.seed, self.epoch);
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.sync_data()?;
        self.live_entries = 0;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Appends one batch and makes it durable per the fsync policy.
    /// Returns only after the bytes are at least `write(2)`-complete; an
    /// error means nothing may be acknowledged and the log must be
    /// considered torn until restart.
    pub fn append(&mut self, seq: u64, ops: &WriteOps) -> SnbResult<()> {
        let record = encode_record(seq, ops);
        self.write_record(&record)?;
        self.appends_since_sync += 1;
        if self.appends_since_sync >= self.options.fsync_every {
            self.sync_data()?;
        }
        if let Some(fault) = snb_fault::check("wal.append.post_append") {
            // The batch is durable but not yet applied or acknowledged —
            // the recovery-vs-retry dedupe window the chaos test aims
            // at. The log is marked broken so a still-running process
            // cannot append the same sequence number a second time (the
            // record IS on disk; a duplicate would replay twice).
            if fault.trip("wal.append.post_append") {
                self.broken = true;
                return Err(SnbError::Io(std::io::Error::other(
                    "injected post-append failure (batch is durable, ack lost)",
                )));
            }
        }
        self.live_entries += 1;
        self.last_seq = seq;
        Ok(())
    }

    /// Forces any batched writes to disk (shutdown seal).
    pub fn sync(&mut self) -> SnbResult<()> {
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Compacts the live WAL into `snapshot.log` when it has grown past
    /// `snapshot_every` records. Returns whether a rotation happened.
    ///
    /// The rotation is crash-safe: the combined snapshot is written to a
    /// temp file, fsynced, and renamed over `snapshot.log` before the
    /// live WAL is reset — a kill anywhere leaves either the old
    /// (snapshot, wal) pair or the new one, never a mix that loses
    /// records.
    pub fn maybe_snapshot(&mut self) -> SnbResult<bool> {
        if self.options.snapshot_every == 0 || self.live_entries < self.options.snapshot_every {
            return Ok(false);
        }
        self.sync()?;
        let snap_path = self.dir.join(SNAP_FILE);
        let tmp_path = self.dir.join(SNAP_TMP);

        let mut combined = Vec::new();
        write_header(&mut combined, SNAP_MAGIC, &self.scale, self.seed, self.epoch);
        if snap_path.exists() {
            let bytes = std::fs::read(&snap_path)?;
            let (off, _) = check_header(&bytes, SNAP_MAGIC, &self.scale, self.seed, &snap_path)?;
            combined.extend_from_slice(&bytes[off..]);
        }
        let wal_path = self.path();
        let bytes = std::fs::read(&wal_path)?;
        let (off, _) = check_header(&bytes, WAL_MAGIC, &self.scale, self.seed, &wal_path)?;
        combined.extend_from_slice(&bytes[off..]);

        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&combined)?;
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &snap_path)?;

        self.reset_to_header()?;
        Ok(true)
    }
}

/// Refuses to open a directory whose existing segment files disagree
/// with `parts` — reusing a log under a different partition count would
/// silently orphan (and later clobber) the other layout's segments.
fn guard_layout(dir: &Path, parts: usize) -> SnbResult<()> {
    let expected: Vec<String> = (0..parts).map(|p| segment_file(p, parts)).collect();
    let mut present = 0usize;
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        let looks_like_segment =
            name == WAL_FILE || (name.starts_with("wal-") && name.ends_with(".log"));
        if !looks_like_segment {
            continue;
        }
        if !expected.contains(&name) {
            return Err(parse_err(
                &dir.display().to_string(),
                format!(
                    "segment file {name:?} does not belong to the {parts}-partition \
                     layout; the directory was written under a different partition count"
                ),
            ));
        }
        present += 1;
    }
    // Opening creates every segment at once, so a proper subset of the
    // expected files means a smaller layout wrote them (e.g. wal-0/wal-1
    // reopened with 4 partitions would silently mis-route records).
    if present > 0 && present < parts {
        return Err(parse_err(
            &dir.display().to_string(),
            format!(
                "directory holds {present} of {parts} expected segment files; \
                 it was written under a different partition count"
            ),
        ));
    }
    Ok(())
}

/// N per-partition [`Wal`] segments composed under one global sequence —
/// the server's append handle. Each batch is routed to its owning
/// shard's segment ([`crate::events::route_key`] hashed with
/// [`snb_store::partition_of_raw`]); the fsync policy, the group-commit
/// deferral, and snapshot compaction are global across segments. With
/// `partitions <= 1` this is exactly the classic single-file [`Wal`].
pub struct SegmentedWal {
    dir: PathBuf,
    scale: String,
    seed: u64,
    options: WalOptions,
    segments: Vec<Wal>,
    last_seq: u64,
    live_entries: u64,
    appends_since_sync: u64,
    unsynced: u64,
    syncs: u64,
    /// Fencing epoch the log is at (max across segment headers and the
    /// open-time floor; see [`SegmentedWal::bump_epoch`]).
    epoch: u64,
}

impl SegmentedWal {
    /// Opens (or creates) every segment under `dir` for appending.
    /// `seg_live` carries recovery's per-segment live-record counts (a
    /// missing entry means a fresh segment). `epoch` is a floor: fresh
    /// segments are created at it, and the log's effective epoch is the
    /// max of the floor and every stored header (a crash mid-bump may
    /// leave mixed headers — the bumped value wins). Refuses a directory
    /// laid out for a different partition count.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        dir: &Path,
        scale: &str,
        seed: u64,
        options: WalOptions,
        last_seq: u64,
        seg_live: &[u64],
        epoch: u64,
    ) -> SnbResult<SegmentedWal> {
        let parts = options.partitions.max(1);
        std::fs::create_dir_all(dir)?;
        guard_layout(dir, parts)?;
        let mut segments = Vec::with_capacity(parts);
        let mut live_entries = 0u64;
        let mut max_epoch = epoch;
        for p in 0..parts {
            let live = seg_live.get(p).copied().unwrap_or(0);
            live_entries += live;
            let seg = Wal::open_segment(
                dir,
                &segment_file(p, parts),
                scale,
                seed,
                options,
                last_seq,
                live,
                epoch,
            )?;
            max_epoch = max_epoch.max(seg.epoch);
            segments.push(seg);
        }
        Ok(SegmentedWal {
            dir: dir.to_path_buf(),
            scale: scale.to_string(),
            seed,
            options,
            segments,
            last_seq,
            live_entries,
            appends_since_sync: 0,
            unsynced: 0,
            syncs: 0,
            epoch: max_epoch,
        })
    }

    /// Highest sequence number durably appended across all segments.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The fencing epoch the log is at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Durably raises the fencing epoch to `new_epoch`, overwriting the
    /// 8-byte epoch field in every segment header (and the snapshot's,
    /// if one exists) in place and fsyncing each file. Called on
    /// promotion *before* the node goes writable, so a crash at any
    /// point either leaves the old term (promotion never happened) or a
    /// term at least as high as announced (recovery takes the max across
    /// headers, so mixed headers resolve to the bumped value). A no-op
    /// if the log is already at or past `new_epoch`.
    pub fn bump_epoch(&mut self, new_epoch: u64) -> SnbResult<()> {
        if new_epoch <= self.epoch {
            return Ok(());
        }
        let offset = header_epoch_offset(&self.scale);
        let mut paths: Vec<PathBuf> = self.segments.iter().map(|s| s.path()).collect();
        let snap_path = self.dir.join(SNAP_FILE);
        if snap_path.exists() {
            paths.push(snap_path);
        }
        for path in paths {
            // The append handles ignore seeks, so patch the header
            // through a separate write-mode handle.
            let mut f = OpenOptions::new().write(true).open(&path)?;
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(&new_epoch.to_le_bytes())?;
            f.sync_data()?;
        }
        for seg in &mut self.segments {
            seg.epoch = new_epoch;
        }
        self.epoch = new_epoch;
        Ok(())
    }

    /// Number of per-partition segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The options the log was opened with.
    pub fn options(&self) -> WalOptions {
        self.options
    }

    /// The directory the log (and any store image) lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The scale name the log's headers are bound to.
    pub fn scale(&self) -> &str {
        &self.scale
    }

    /// The generator seed the log's headers are bound to.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Truncates `snapshot.log` back to a bare header. Called after a
    /// store image lands: the image supersedes the compacted history, so
    /// keeping it would only make the next recovery scan-and-skip it. A
    /// crash *before* this truncation is benign — recovery dedupes
    /// every snapshot record at or below the image's sequence number.
    pub fn reset_snapshot_log(&mut self) -> SnbResult<()> {
        let snap_path = self.dir.join(SNAP_FILE);
        if !snap_path.exists() {
            return Ok(());
        }
        let mut header = Vec::new();
        write_header(&mut header, SNAP_MAGIC, &self.scale, self.seed, self.epoch);
        let mut f = OpenOptions::new().write(true).open(&snap_path)?;
        f.set_len(0)?;
        f.seek(SeekFrom::Start(0))?;
        f.write_all(&header)?;
        f.sync_data()?;
        Ok(())
    }

    /// Total `fsync(2)` calls issued for appended records (the
    /// group-commit metric: appends ÷ syncs is the sharing factor).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Appends not yet covered by a flush (group-commit mode).
    pub fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// Whether any segment has a torn tail and the log refuses appends.
    pub fn broken(&self) -> bool {
        self.segments.iter().any(|s| s.broken)
    }

    /// Appends one batch to its owning shard's segment. In the default
    /// mode the global fsync policy runs inline exactly as the
    /// single-file [`Wal::append`] did; with `group_commit` the flush is
    /// deferred to [`SegmentedWal::sync_all`] and the caller must not
    /// acknowledge until a covering flush has run.
    pub fn append(&mut self, seq: u64, ops: &WriteOps) -> SnbResult<()> {
        if self.broken() {
            return Err(SnbError::Io(std::io::Error::other(
                "WAL has a torn tail from a failed append; restart to recover",
            )));
        }
        let parts = self.segments.len();
        let p = snb_store::partition_of_raw(crate::events::route_key(ops), parts);
        let record = encode_record(seq, ops);
        self.segments[p].write_record(&record)?;
        self.segments[p].appends_since_sync += 1;
        self.appends_since_sync += 1;
        self.unsynced += 1;
        if !self.options.group_commit && self.appends_since_sync >= self.options.fsync_every {
            self.sync_all()?;
        }
        if let Some(fault) = snb_fault::check("wal.append.post_append") {
            // Durable but not applied/acknowledged — see [`Wal::append`].
            if fault.trip("wal.append.post_append") {
                self.segments[p].broken = true;
                return Err(SnbError::Io(std::io::Error::other(
                    "injected post-append failure (batch is durable, ack lost)",
                )));
            }
        }
        let seg = &mut self.segments[p];
        seg.live_entries += 1;
        seg.last_seq = seq;
        self.live_entries += 1;
        self.last_seq = seq;
        Ok(())
    }

    /// Flushes every *dirty* segment (one fsync per dirty file); clean
    /// segments cost nothing. After it returns, every append so far is
    /// durable and may be acknowledged.
    pub fn sync_all(&mut self) -> SnbResult<()> {
        for p in 0..self.segments.len() {
            if self.segments[p].appends_since_sync > 0 {
                self.segments[p].sync_data()?;
                self.syncs += 1;
            }
        }
        self.appends_since_sync = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Forces every segment to disk unconditionally (shutdown seal).
    pub fn sync(&mut self) -> SnbResult<()> {
        for seg in &mut self.segments {
            seg.sync()?;
        }
        self.appends_since_sync = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Resets the whole log behind a freshly installed store image at
    /// `image_seq` (follower bootstrap): every segment and the snapshot
    /// drop to a bare header — each record they held is at or below the
    /// image's sequence and superseded by it — the epoch is raised to
    /// the image's, and appends resume from `image_seq`. Crash-safe in
    /// either order with the image landing: image + stale records
    /// recovers by dedupe, image + bare log recovers directly.
    pub fn reset_for_image(&mut self, image_seq: u64, epoch: u64) -> SnbResult<()> {
        self.bump_epoch(epoch)?;
        for seg in &mut self.segments {
            seg.reset_to_header()?;
            seg.last_seq = image_seq;
        }
        self.reset_snapshot_log()?;
        self.last_seq = image_seq;
        self.live_entries = 0;
        self.appends_since_sync = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Compacts all live segments into the single `snapshot.log` when
    /// they jointly hold `snapshot_every` records. The combined snapshot
    /// holds the **seq-merged** view of every segment — record order in
    /// the snapshot is the global sequence order, not file position — so
    /// replaying it is identical to replaying the segments themselves.
    pub fn maybe_snapshot(&mut self) -> SnbResult<bool> {
        if self.options.snapshot_every == 0 || self.live_entries < self.options.snapshot_every {
            return Ok(false);
        }
        self.sync()?;
        let snap_path = self.dir.join(SNAP_FILE);
        let tmp_path = self.dir.join(SNAP_TMP);

        let mut combined = Vec::new();
        write_header(&mut combined, SNAP_MAGIC, &self.scale, self.seed, self.epoch);
        if snap_path.exists() {
            let bytes = std::fs::read(&snap_path)?;
            let (off, _) = check_header(&bytes, SNAP_MAGIC, &self.scale, self.seed, &snap_path)?;
            combined.extend_from_slice(&bytes[off..]);
        }
        let mut entries = Vec::new();
        for seg in &self.segments {
            let path = seg.path();
            let bytes = std::fs::read(&path)?;
            let (off, _) = check_header(&bytes, WAL_MAGIC, &self.scale, self.seed, &path)?;
            let ctx = path.display().to_string();
            let (seg_entries, valid_end) = scan_records(&bytes, off, &ctx)?;
            if valid_end != bytes.len() {
                return Err(parse_err(&ctx, "live segment has a torn tail during compaction"));
            }
            entries.extend(seg_entries);
        }
        entries.sort_by_key(|e| e.seq);
        for entry in &entries {
            combined.extend_from_slice(&encode_record(entry.seq, &entry.ops));
        }

        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&combined)?;
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &snap_path)?;

        for seg in &mut self.segments {
            seg.reset_to_header()?;
        }
        self.live_entries = 0;
        self.appends_since_sync = 0;
        self.unsynced = 0;
        Ok(true)
    }
}

/// Everything recovery hands back: a consistent store, the static world
/// needed to apply further updates, an open append handle positioned
/// after the recovered tail, and the numbers.
pub struct Recovered {
    /// The store with snapshot + WAL tail replayed, date index repaired
    /// and invariants validated.
    pub store: Store,
    /// Seeded dictionaries for applying further update events.
    pub world: StaticWorld,
    /// Append handle continuing the recovered log (all segments open).
    pub wal: SegmentedWal,
    /// What was replayed/truncated.
    pub report: RecoveryReport,
}

impl Recovered {
    /// Splits into the store and the [`crate::server::Durability`]
    /// bundle [`crate::Server::start_durable`] wants, plus the report.
    pub fn into_durability(self) -> (Store, crate::server::Durability, RecoveryReport) {
        let durability = crate::server::Durability {
            epoch: self.wal.epoch(),
            wal: self.wal,
            world: self.world,
            last_seq: self.report.last_seq,
        };
        (self.store, durability, self.report)
    }
}

/// Recovers the durable state under `dir`: rebuilds the deterministic
/// bulk store for `config`, replays `snapshot.log` then the live WAL
/// segments' entries **merged by sequence number** (verifying
/// per-record checksums, truncating each segment's torn tail, and
/// cutting any suffix past a global sequence gap — an acknowledged
/// batch's covering flush syncs *all* dirty segments, so entries past a
/// gap were never acknowledged and dropping them is correct). Repairs
/// the date index and validates store invariants. Works on an empty or
/// absent directory (fresh start, zero entries).
pub fn recover(
    dir: &Path,
    config: &GeneratorConfig,
    scale: &str,
    options: WalOptions,
) -> SnbResult<Recovered> {
    let recovery_started = std::time::Instant::now();
    std::fs::create_dir_all(dir)?;
    guard_layout(dir, options.partitions.max(1))?;
    let world = StaticWorld::build(config.seed);
    let mut report = RecoveryReport::default();

    // Image-first: a valid `store.img` replaces both the deterministic
    // bulk rebuild *and* the history replay up to its sequence number —
    // everything at or before `image_seq` dedupes away below, so
    // recovery cost is image size + WAL tail, flat in history length. A
    // present-but-corrupt image is a hard refusal (never a silent
    // fallback); an absent one takes the classic full-replay path.
    let mut store = match crate::image::load_image(dir, scale, config.seed)? {
        Some((store, header)) => {
            let parts = options.partitions.max(1);
            if header.partitions != parts {
                return Err(SnbError::Config(format!(
                    "store image was written for {} partition(s), directory opened with {parts}",
                    header.partitions
                )));
            }
            report.image_seq = header.seq;
            report.last_seq = header.seq;
            report.epoch = header.epoch;
            report.image_us = recovery_started.elapsed().as_micros() as u64;
            store
        }
        None => snb_store::bulk_store_and_stream(config).0,
    };

    let apply =
        |store: &mut Store, entry: &WalEntry, last_seq: &mut u64, applied: &mut u64| -> SnbResult<()> {
            // Replay is monotonic by sequence number: a duplicate record
            // (an appended-but-unacked batch whose retry landed in a later
            // log segment) is applied once, never twice. Records already
            // covered by the store image dedupe away the same way.
            if entry.seq <= *last_seq {
                return Ok(());
            }
            match &entry.ops {
                WriteOps::Updates(events) => {
                    for ev in events {
                        store.apply_event(ev, &world)?;
                    }
                }
                WriteOps::Deletes(dels) => {
                    store.apply_deletes(dels)?;
                }
            }
            *last_seq = entry.seq;
            *applied += 1;
            Ok(())
        };

    let snap_path = dir.join(SNAP_FILE);
    if snap_path.exists() {
        let bytes = std::fs::read(&snap_path)?;
        let (off, epoch) = check_header(&bytes, SNAP_MAGIC, scale, config.seed, &snap_path)?;
        report.epoch = report.epoch.max(epoch);
        let ctx = snap_path.display().to_string();
        let (entries, valid_end) = scan_records(&bytes, off, &ctx)?;
        if valid_end != bytes.len() {
            // Snapshots are written atomically, so a torn one means the
            // rename itself was interrupted by something worse than a
            // crash; refuse to guess.
            return Err(parse_err(&ctx, "snapshot has a torn record (atomic write violated)"));
        }
        for entry in &entries {
            apply(&mut store, entry, &mut report.last_seq, &mut report.tail_replayed)?;
        }
        report.snapshot_entries = entries.len() as u64;
    }

    // Scan every segment: truncate torn tails in place, remember each
    // surviving entry's (segment, start offset) for the gap cut below.
    let parts = options.partitions.max(1);
    let mut located: Vec<(usize, usize, WalEntry)> = Vec::new();
    for p in 0..parts {
        let path = dir.join(segment_file(p, parts));
        if !path.exists() {
            continue;
        }
        let bytes = std::fs::read(&path)?;
        let (off, epoch) = check_header(&bytes, WAL_MAGIC, scale, config.seed, &path)?;
        report.epoch = report.epoch.max(epoch);
        let ctx = path.display().to_string();
        let (entries, valid_end) = scan_records_located(&bytes, off, &ctx)?;
        if valid_end != bytes.len() {
            report.truncated_bytes += (bytes.len() - valid_end) as u64;
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_end as u64)?;
            f.sync_data()?;
        }
        located.extend(entries.into_iter().map(|(start, e)| (p, start, e)));
    }
    // Global order is the sequence number, not file position. The sort
    // is stable, so a duplicate seq (append-then-retry) keeps file order
    // within its segment and the monotonic `apply` drops the retry.
    located.sort_by_key(|(_, _, e)| e.seq);

    // A torn tail in one segment may orphan later, never-acknowledged
    // sequence numbers in the others. Replay stops at the first gap; the
    // orphaned suffix is cut from every segment so a retried batch can't
    // coexist with its orphaned first appearance.
    let mut keep = located.len();
    let mut replay_last = report.last_seq;
    for (i, (_, _, entry)) in located.iter().enumerate() {
        if entry.seq <= replay_last {
            continue; // duplicate: dedupe, not a gap
        }
        if entry.seq != replay_last + 1 {
            keep = i;
            break;
        }
        replay_last = entry.seq;
    }
    if keep < located.len() {
        let mut cut_at: Vec<Option<u64>> = vec![None; parts];
        for (p, start, _) in &located[keep..] {
            let at = cut_at[*p].get_or_insert(*start as u64);
            *at = (*at).min(*start as u64);
        }
        for (p, at) in cut_at.iter().enumerate() {
            if let Some(at) = at {
                let path = dir.join(segment_file(p, parts));
                let len = std::fs::metadata(&path)?.len();
                report.truncated_bytes += len - at;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(*at)?;
                f.sync_data()?;
            }
        }
        located.truncate(keep);
    }

    let mut seg_live = vec![0u64; parts];
    for (p, _, entry) in &located {
        apply(&mut store, entry, &mut report.last_seq, &mut report.tail_replayed)?;
        seg_live[*p] += 1;
    }
    report.wal_entries = located.len() as u64;

    if !store.date_index_fresh() {
        store.rebuild_date_index();
    }
    store.validate_invariants()?;

    let wal = SegmentedWal::open(
        dir,
        scale,
        config.seed,
        options,
        report.last_seq,
        &seg_live,
        report.epoch,
    )?;
    report.epoch = wal.epoch();
    report.recovery_us = recovery_started.elapsed().as_micros() as u64;
    Ok(Recovered { store, world, wal, report })
}

/// One record the shipping cursor surfaced: its global sequence, the
/// partition it routes to, and the batch payload.
pub struct ShippedRecord {
    /// Global write sequence number.
    pub seq: u64,
    /// Owning WAL partition ([`crate::events::route_key`] hashed with
    /// [`snb_store::partition_of_raw`] — the same routing the append
    /// used, so it names the segment the record lives in).
    pub partition: usize,
    /// The batch payload.
    pub ops: WriteOps,
}

/// Byte cursor into one log file (the snapshot or a segment).
#[derive(Clone, Copy, Debug, Default)]
struct FileCursor {
    /// Offset one past the last valid record already scanned (0 = the
    /// file has not been scanned yet, or was reset).
    offset: u64,
    /// File length at the last poll — a shrink means compaction rewrote
    /// or reset the file and the cursor must rescan from 0.
    last_len: u64,
    /// Consecutive polls that saw the file grow past `offset` without
    /// yielding a single new valid record — a persistent misalignment
    /// (reset-then-regrow to a larger size between polls) that a full
    /// rescan repairs.
    stuck: u32,
}

/// The log-shipping cursor: reads acked records out of a WAL directory
/// in global sequence order, for streaming to followers.
///
/// Each [`WalTailer::poll`] checks `snapshot.log` plus every live
/// segment, merges new entries by sequence, and returns the contiguous
/// run `(next_seq, upto]`. The cursor keeps a **per-file byte offset**
/// so an idle poll is O(`stat(2)` per file) and an active poll reads
/// only bytes appended since the last one — not the whole history.
/// Compaction safety comes from two facts: the snapshot rewrite only
/// *appends* records past its previous contents (the seq-merged view
/// never reorders what was already there), and a segment reset shrinks
/// the file, which the cursor detects via the length and answers with a
/// rescan from 0. Records already shipped re-read during a rescan are
/// dropped by the seq filter, mirroring replay's dedupe. The caller
/// bounds `upto` by the server's flushed (acked) high-water mark so
/// only durable, acknowledged records ever ship; records past a gap are
/// buffered until the gap fills. Torn tails are skipped (never
/// truncated — recovery owns repair).
pub struct WalTailer {
    dir: PathBuf,
    scale: String,
    seed: u64,
    parts: usize,
    next_seq: u64,
    /// Cursor 0 is `snapshot.log`; cursor `1 + p` is segment `p`.
    cursors: Vec<FileCursor>,
    /// Scanned-but-not-yet-shipped records (beyond a gap, or past a
    /// bounded `upto`), keyed by seq; first copy wins.
    pending: std::collections::BTreeMap<u64, WriteOps>,
    /// Total bytes read off disk across all polls — the O(new bytes)
    /// pin the cursor test counts.
    bytes_scanned: u64,
}

impl WalTailer {
    /// A cursor over the WAL directory `dir`, positioned to ship
    /// records with `seq > from_seq`. The `(scale, seed, partitions)`
    /// triple must match the directory's layout (headers are verified
    /// whenever a file is scanned from its start).
    pub fn new(dir: &Path, scale: &str, seed: u64, partitions: usize, from_seq: u64) -> WalTailer {
        let parts = partitions.max(1);
        WalTailer {
            dir: dir.to_path_buf(),
            scale: scale.to_string(),
            seed,
            parts,
            next_seq: from_seq + 1,
            cursors: vec![FileCursor::default(); 1 + parts],
            pending: std::collections::BTreeMap::new(),
            bytes_scanned: 0,
        }
    }

    /// The next sequence number the cursor will ship.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total bytes read off disk across all polls (the idle-cost pin:
    /// polls with no new appends add zero).
    pub fn bytes_scanned(&self) -> u64 {
        self.bytes_scanned
    }

    /// Scans one file from its cursor, buffering new entries into
    /// `pending`.
    fn scan_file(&mut self, cursor_ix: usize, path: &Path, magic: &[u8; 8]) -> SnbResult<()> {
        if !path.exists() {
            return Ok(());
        }
        let len = std::fs::metadata(path)?.len();
        let cur = &mut self.cursors[cursor_ix];
        if len < cur.last_len || len < cur.offset {
            // Compaction reset/rewrote the file: rescan from the top.
            cur.offset = 0;
            cur.stuck = 0;
        }
        cur.last_len = len;
        if len <= cur.offset {
            return Ok(()); // idle: nothing appended since last poll
        }
        let start = cur.offset;
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(start))?;
        let mut bytes = Vec::with_capacity((len - start) as usize);
        file.read_to_end(&mut bytes)?;
        self.bytes_scanned += bytes.len() as u64;

        let ctx = path.display().to_string();
        let scan_from = if start == 0 {
            let (off, _) = check_header(&bytes, magic, &self.scale, self.seed, path)?;
            off
        } else {
            0
        };
        let (entries, valid_end) = scan_records(&bytes, scan_from, &ctx)?;
        let cur = &mut self.cursors[cursor_ix];
        if entries.is_empty() && valid_end == scan_from && start > 0 {
            // The file grew but nothing at our offset parses — the file
            // was reset and regrew past our cursor between polls, so the
            // offset no longer sits on a record boundary. A boundary
            // mid-flush looks the same for a poll or two (torn tail), so
            // only a *persistent* stall triggers the full rescan.
            cur.stuck += 1;
            if cur.stuck >= 4 {
                cur.offset = 0;
                cur.stuck = 0;
            }
            return Ok(());
        }
        cur.stuck = 0;
        cur.offset = start + valid_end as u64;
        for entry in entries {
            if entry.seq >= self.next_seq {
                self.pending.entry(entry.seq).or_insert(entry.ops);
            }
        }
        Ok(())
    }

    /// Returns every not-yet-shipped record with `seq <= upto`, in
    /// sequence order, and advances the cursor past them. Stops at a
    /// sequence gap (ships only the contiguous prefix) — with `upto`
    /// bounded by the acked high-water mark a gap cannot happen, but a
    /// cursor must never invent order it didn't observe.
    pub fn poll(&mut self, upto: u64) -> SnbResult<Vec<ShippedRecord>> {
        let snap_path = self.dir.join(SNAP_FILE);
        self.scan_file(0, &snap_path, SNAP_MAGIC)?;
        for p in 0..self.parts {
            let path = self.dir.join(segment_file(p, self.parts));
            self.scan_file(1 + p, &path, WAL_MAGIC)?;
        }
        // Anything below the ship frontier is already delivered (a
        // rescan re-read it); drop it so `pending` stays bounded by the
        // unshipped window.
        while let Some((&seq, _)) = self.pending.first_key_value() {
            if seq >= self.next_seq {
                break;
            }
            self.pending.remove(&seq);
        }

        let mut out = Vec::new();
        while self.next_seq <= upto {
            let Some(ops) = self.pending.remove(&self.next_seq) else {
                break; // gap (or not yet written): ship the prefix only
            };
            let partition = snb_store::partition_of_raw(crate::events::route_key(&ops), self.parts);
            out.push(ShippedRecord { seq: self.next_seq, partition, ops });
            self.next_seq += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::stream::UpdateEvent;
    use snb_store::DeleteOp;

    const SCALE: &str = "0.001";

    fn config() -> GeneratorConfig {
        GeneratorConfig::for_scale_name(SCALE).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("snb_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Sequenced batches carved from the real update stream, with a
    /// delete batch interleaved so both families hit the log.
    fn batches(n: usize) -> Vec<WriteOps> {
        let (_, stream) = snb_store::bulk_store_and_stream(&config());
        let mut out = Vec::new();
        let mut likes = Vec::new();
        for chunk in stream.chunks(20).take(n) {
            for ev in chunk {
                if let UpdateEvent::AddLikePost(l) = &ev.event {
                    likes.push(DeleteOp::Like(l.person.0, l.message.0));
                }
            }
            out.push(WriteOps::Updates(chunk.to_vec()));
            if !likes.is_empty() {
                out.push(WriteOps::Deletes(std::mem::take(&mut likes)));
            }
        }
        out
    }

    fn store_fingerprint(store: &Store) -> String {
        let stats = store.stats();
        format!("{}/{}", stats.nodes, stats.edges)
    }

    #[test]
    fn append_recover_roundtrip_matches_direct_apply() {
        let dir = tmp_dir("roundtrip");
        let cfg = config();
        let world = StaticWorld::build(cfg.seed);
        let (mut oracle, _) = snb_store::bulk_store_and_stream(&cfg);

        let mut wal = Wal::open(&dir, SCALE, cfg.seed, WalOptions::default(), 0, 0).unwrap();
        for (i, ops) in batches(4).iter().enumerate() {
            wal.append(i as u64 + 1, ops).unwrap();
            match ops {
                WriteOps::Updates(events) => {
                    for ev in events {
                        oracle.apply_event(ev, &world).unwrap();
                    }
                }
                WriteOps::Deletes(dels) => {
                    oracle.apply_deletes(dels).unwrap();
                }
            }
        }
        let appended = wal.last_seq();
        drop(wal); // simulated crash: no graceful shutdown

        let rec = recover(&dir, &cfg, SCALE, WalOptions::default()).unwrap();
        assert_eq!(rec.report.last_seq, appended);
        assert_eq!(rec.report.truncated_bytes, 0);
        if !oracle.date_index_fresh() {
            oracle.rebuild_date_index();
        }
        assert_eq!(store_fingerprint(&rec.store), store_fingerprint(&oracle));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let dir = tmp_dir("torn");
        let cfg = config();
        let all = batches(4);
        let mut wal = Wal::open(&dir, SCALE, cfg.seed, WalOptions::default(), 0, 0).unwrap();
        for (i, ops) in all.iter().enumerate() {
            wal.append(i as u64 + 1, ops).unwrap();
        }
        drop(wal);

        // Tear the last record: chop off its final 5 bytes.
        let path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 5).unwrap();

        let rec = recover(&dir, &cfg, SCALE, WalOptions::default()).unwrap();
        assert_eq!(rec.report.wal_entries, all.len() as u64 - 1);
        assert_eq!(rec.report.last_seq, all.len() as u64 - 1);
        assert!(rec.report.truncated_bytes > 0);

        // The truncation is itself durable: a second recovery sees a
        // clean log and the same state.
        let rec2 = recover(&dir, &cfg, SCALE, WalOptions::default()).unwrap();
        assert_eq!(rec2.report.truncated_bytes, 0);
        assert_eq!(rec2.report.last_seq, rec.report.last_seq);
        assert_eq!(store_fingerprint(&rec2.store), store_fingerprint(&rec.store));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_stops_replay_at_the_bad_record() {
        let dir = tmp_dir("cksum");
        let cfg = config();
        let all = batches(4);
        let mut wal = Wal::open(&dir, SCALE, cfg.seed, WalOptions::default(), 0, 0).unwrap();
        let mut offsets = vec![std::fs::metadata(dir.join(WAL_FILE)).unwrap().len()];
        for (i, ops) in all.iter().enumerate() {
            wal.append(i as u64 + 1, ops).unwrap();
            wal.sync().unwrap();
            offsets.push(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len());
        }
        drop(wal);

        // Flip one payload byte inside the second-to-last record.
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = offsets[offsets.len() - 3] as usize + 12 + 3;
        bytes[victim] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let rec = recover(&dir, &cfg, SCALE, WalOptions::default()).unwrap();
        // Everything before the corrupt record replays; it and the
        // (valid) record after it are cut — past a checksum failure no
        // byte can be trusted.
        assert_eq!(rec.report.wal_entries, all.len() as u64 - 2);
        assert!(rec.report.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rotation_bounds_the_live_wal_and_preserves_state() {
        let dir = tmp_dir("rotate");
        let cfg = config();
        let all = batches(6);
        let opts = WalOptions { fsync_every: 1, snapshot_every: 2, ..WalOptions::default() };
        let mut wal = Wal::open(&dir, SCALE, cfg.seed, opts, 0, 0).unwrap();
        let mut rotations = 0;
        for (i, ops) in all.iter().enumerate() {
            wal.append(i as u64 + 1, ops).unwrap();
            if wal.maybe_snapshot().unwrap() {
                rotations += 1;
            }
        }
        drop(wal);
        assert!(rotations >= 2, "snapshot_every=2 over {} batches: {rotations}", all.len());
        assert!(dir.join(SNAP_FILE).exists());

        let rec = recover(&dir, &cfg, SCALE, opts).unwrap();
        assert_eq!(rec.report.last_seq, all.len() as u64);
        assert_eq!(
            rec.report.snapshot_entries + rec.report.wal_entries,
            all.len() as u64,
            "every record is in exactly one of snapshot/wal"
        );
        assert!(
            rec.report.wal_entries < all.len() as u64,
            "rotation left everything in the live WAL"
        );

        // Against a no-snapshot control with identical appends.
        let dir2 = tmp_dir("rotate_control");
        let mut wal2 = Wal::open(&dir2, SCALE, cfg.seed, WalOptions::default(), 0, 0).unwrap();
        for (i, ops) in all.iter().enumerate() {
            wal2.append(i as u64 + 1, ops).unwrap();
        }
        drop(wal2);
        let rec2 = recover(&dir2, &cfg, SCALE, WalOptions::default()).unwrap();
        assert_eq!(store_fingerprint(&rec.store), store_fingerprint(&rec2.store));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn header_mismatch_is_refused() {
        let dir = tmp_dir("header");
        let cfg = config();
        let mut wal = Wal::open(&dir, SCALE, cfg.seed, WalOptions::default(), 0, 0).unwrap();
        wal.append(1, &batches(1)[0]).unwrap();
        drop(wal);
        // Different seed ⇒ different bulk image ⇒ replay would corrupt.
        assert!(Wal::open(&dir, SCALE, cfg.seed + 1, WalOptions::default(), 0, 0).is_err());
        assert!(recover(&dir, &cfg, "0.003", WalOptions::default()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_directory_recovers_to_the_bulk_image() {
        let dir = tmp_dir("fresh");
        let cfg = config();
        let rec = recover(&dir, &cfg, SCALE, WalOptions::default()).unwrap();
        // Everything but the wall-clock stamp is zero on a fresh start.
        assert_eq!(RecoveryReport { recovery_us: 0, ..rec.report }, RecoveryReport::default());
        assert_eq!(rec.report.replayed(), 0);
        let (bulk, _) = snb_store::bulk_store_and_stream(&cfg);
        assert_eq!(store_fingerprint(&rec.store), store_fingerprint(&bulk));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn seg_opts(partitions: usize) -> WalOptions {
        WalOptions { partitions, ..WalOptions::default() }
    }

    #[test]
    fn segmented_roundtrip_matches_single_segment_control() {
        let cfg = config();
        let all = batches(6);
        let mut fingerprints = Vec::new();
        for parts in [1usize, 2, 4] {
            let dir = tmp_dir(&format!("seg{parts}"));
            let mut wal =
                SegmentedWal::open(&dir, SCALE, cfg.seed, seg_opts(parts), 0, &[], 0).unwrap();
            assert_eq!(wal.segment_count(), parts);
            for (i, ops) in all.iter().enumerate() {
                wal.append(i as u64 + 1, ops).unwrap();
            }
            drop(wal); // simulated crash
            if parts > 1 {
                let named: Vec<bool> =
                    (0..parts).map(|p| dir.join(segment_file(p, parts)).exists()).collect();
                assert!(named.iter().all(|e| *e), "every segment file exists: {named:?}");
                assert!(!dir.join(WAL_FILE).exists(), "no stray single-segment file");
            }
            let rec = recover(&dir, &cfg, SCALE, seg_opts(parts)).unwrap();
            assert_eq!(rec.report.last_seq, all.len() as u64);
            assert_eq!(rec.report.wal_entries, all.len() as u64);
            assert_eq!(rec.report.truncated_bytes, 0);
            fingerprints.push(store_fingerprint(&rec.store));
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "partition count changed recovered state: {fingerprints:?}"
        );
    }

    #[test]
    fn routing_spreads_batches_across_segments() {
        let cfg = config();
        let dir = tmp_dir("spread");
        let parts = 2;
        let mut wal =
            SegmentedWal::open(&dir, SCALE, cfg.seed, seg_opts(parts), 0, &[], 0).unwrap();
        for (i, ops) in batches(8).iter().enumerate() {
            wal.append(i as u64 + 1, ops).unwrap();
        }
        drop(wal);
        let header = {
            let mut h = Vec::new();
            write_header(&mut h, WAL_MAGIC, SCALE, cfg.seed, 0);
            h.len() as u64
        };
        let grew: Vec<bool> = (0..parts)
            .map(|p| std::fs::metadata(dir.join(segment_file(p, parts))).unwrap().len() > header)
            .collect();
        assert!(grew.iter().all(|g| *g), "a segment never received a batch: {grew:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_segment_cuts_the_orphaned_suffix_in_other_segments() {
        let cfg = config();
        let dir = tmp_dir("seggap");
        let parts = 2;
        let all = batches(8);
        let mut wal =
            SegmentedWal::open(&dir, SCALE, cfg.seed, seg_opts(parts), 0, &[], 0).unwrap();
        // Track which segment got each seq so we can tear a record that
        // is *not* globally last.
        let mut seq_seg = Vec::new();
        let mut offsets: Vec<Vec<u64>> = (0..parts)
            .map(|p| vec![std::fs::metadata(dir.join(segment_file(p, parts))).unwrap().len()])
            .collect();
        for (i, ops) in all.iter().enumerate() {
            let p = snb_store::partition_of_raw(crate::events::route_key(ops), parts);
            wal.append(i as u64 + 1, ops).unwrap();
            seq_seg.push(p);
            for (q, offs) in offsets.iter_mut().enumerate() {
                offs.push(std::fs::metadata(dir.join(segment_file(q, parts))).unwrap().len());
            }
        }
        drop(wal);
        // Find a seq whose segment differs from the last batch's segment
        // (so tearing it orphans later seqs in the other segment).
        let last_seg = *seq_seg.last().unwrap();
        let victim = seq_seg.iter().rposition(|p| *p != last_seg).unwrap();
        let victim_seg = seq_seg[victim];
        // Truncate the victim segment to just before the victim record.
        let path = dir.join(segment_file(victim_seg, parts));
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(offsets[victim_seg][victim] + 3) // leave a torn stub
            .unwrap();

        let rec = recover(&dir, &cfg, SCALE, seg_opts(parts)).unwrap();
        assert_eq!(rec.report.last_seq, victim as u64, "replay stops before the torn seq");
        assert!(rec.report.truncated_bytes > 0);
        assert!(
            rec.report.wal_entries < all.len() as u64,
            "orphaned post-gap entries must not replay"
        );

        // The cut is durable and gap-free: a second recovery is clean
        // and byte-identical.
        let rec2 = recover(&dir, &cfg, SCALE, seg_opts(parts)).unwrap();
        assert_eq!(rec2.report.truncated_bytes, 0);
        assert_eq!(rec2.report.last_seq, rec.report.last_seq);
        assert_eq!(store_fingerprint(&rec2.store), store_fingerprint(&rec.store));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partition_count_mismatch_is_refused() {
        let cfg = config();
        let dir = tmp_dir("layout");
        let mut wal = SegmentedWal::open(&dir, SCALE, cfg.seed, seg_opts(2), 0, &[], 0).unwrap();
        wal.append(1, &batches(1)[0]).unwrap();
        drop(wal);
        assert!(SegmentedWal::open(&dir, SCALE, cfg.seed, seg_opts(1), 0, &[], 0).is_err());
        assert!(SegmentedWal::open(&dir, SCALE, cfg.seed, seg_opts(4), 0, &[], 0).is_err());
        assert!(recover(&dir, &cfg, SCALE, seg_opts(1)).is_err());
        assert!(SegmentedWal::open(&dir, SCALE, cfg.seed, seg_opts(2), 0, &[], 0).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segmented_snapshot_compacts_in_sequence_order() {
        let cfg = config();
        let dir = tmp_dir("segrotate");
        let parts = 2;
        let all = batches(6);
        let opts = WalOptions { snapshot_every: 2, ..seg_opts(parts) };
        let mut wal = SegmentedWal::open(&dir, SCALE, cfg.seed, opts, 0, &[], 0).unwrap();
        let mut rotations = 0;
        for (i, ops) in all.iter().enumerate() {
            wal.append(i as u64 + 1, ops).unwrap();
            if wal.maybe_snapshot().unwrap() {
                rotations += 1;
            }
        }
        drop(wal);
        assert!(rotations >= 1, "snapshot_every=2 never rotated");
        assert!(dir.join(SNAP_FILE).exists());

        let rec = recover(&dir, &cfg, SCALE, opts).unwrap();
        assert_eq!(rec.report.last_seq, all.len() as u64);
        assert_eq!(rec.report.snapshot_entries + rec.report.wal_entries, all.len() as u64);

        // Same appends, no snapshots, single segment: identical state.
        let dir2 = tmp_dir("segrotate_control");
        let mut wal2 = SegmentedWal::open(&dir2, SCALE, cfg.seed, seg_opts(1), 0, &[], 0).unwrap();
        for (i, ops) in all.iter().enumerate() {
            wal2.append(i as u64 + 1, ops).unwrap();
        }
        drop(wal2);
        let rec2 = recover(&dir2, &cfg, SCALE, seg_opts(1)).unwrap();
        assert_eq!(store_fingerprint(&rec.store), store_fingerprint(&rec2.store));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn group_commit_defers_and_shares_fsyncs() {
        let cfg = config();
        let dir = tmp_dir("group");
        let opts = WalOptions { group_commit: true, partitions: 2, ..WalOptions::default() };
        let all = batches(6);
        let mut wal = SegmentedWal::open(&dir, SCALE, cfg.seed, opts, 0, &[], 0).unwrap();
        for (i, ops) in all.iter().enumerate() {
            wal.append(i as u64 + 1, ops).unwrap();
        }
        assert_eq!(wal.syncs(), 0, "group commit must not fsync inside append");
        assert_eq!(wal.unsynced(), all.len() as u64);
        wal.sync_all().unwrap();
        assert!(
            wal.syncs() as usize <= 2,
            "one shared flush costs at most one fsync per dirty segment, got {}",
            wal.syncs()
        );
        assert_eq!(wal.unsynced(), 0);
        drop(wal);
        let rec = recover(&dir, &cfg, SCALE, opts).unwrap();
        assert_eq!(rec.report.last_seq, all.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tailer_ships_contiguously_across_compaction() {
        let cfg = config();
        let dir = tmp_dir("tailer");
        let parts = 2;
        let all = batches(6);
        let opts = WalOptions { snapshot_every: 3, ..seg_opts(parts) };
        let mut wal = SegmentedWal::open(&dir, SCALE, cfg.seed, opts, 0, &[], 0).unwrap();
        let mut tailer = WalTailer::new(&dir, SCALE, cfg.seed, parts, 0);

        // Nothing acked yet: nothing ships.
        assert!(tailer.poll(0).unwrap().is_empty());

        let mut shipped: Vec<u64> = Vec::new();
        let mut rotations = 0;
        for (i, ops) in all.iter().enumerate() {
            let seq = i as u64 + 1;
            wal.append(seq, ops).unwrap();
            if wal.maybe_snapshot().unwrap() {
                rotations += 1;
            }
            // Poll after every append: records keep shipping in order
            // even as compaction moves them from segments to the
            // snapshot between polls.
            for rec in tailer.poll(wal.last_seq()).unwrap() {
                shipped.push(rec.seq);
                assert_eq!(
                    rec.partition,
                    snb_store::partition_of_raw(crate::events::route_key(&rec.ops), parts)
                );
            }
        }
        assert!(rotations >= 1, "snapshot_every=3 never rotated");
        assert_eq!(shipped, (1..=all.len() as u64).collect::<Vec<_>>());

        // A cursor behind the compaction point replays out of the
        // snapshot: a fresh tailer from 0 re-ships everything.
        let mut fresh = WalTailer::new(&dir, SCALE, cfg.seed, parts, 0);
        let replayed: Vec<u64> =
            fresh.poll(wal.last_seq()).unwrap().iter().map(|r| r.seq).collect();
        assert_eq!(replayed, shipped);

        // `upto` bounds shipping: a cursor asked for less ships less,
        // then resumes exactly where it stopped.
        let mut bounded = WalTailer::new(&dir, SCALE, cfg.seed, parts, 0);
        let first: Vec<u64> = bounded.poll(2).unwrap().iter().map(|r| r.seq).collect();
        assert_eq!(first, vec![1, 2]);
        assert_eq!(bounded.next_seq(), 3);
        let rest: Vec<u64> = bounded.poll(wal.last_seq()).unwrap().iter().map(|r| r.seq).collect();
        assert_eq!(rest, (3..=all.len() as u64).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tailer_idle_polls_read_zero_bytes() {
        let cfg = config();
        let dir = tmp_dir("tailcost");
        let parts = 2;
        let all = batches(6);
        // No compaction: this pins the pure append-tail cost.
        let opts = WalOptions { snapshot_every: 0, ..seg_opts(parts) };
        let mut wal = SegmentedWal::open(&dir, SCALE, cfg.seed, opts, 0, &[], 0).unwrap();
        let mut tailer = WalTailer::new(&dir, SCALE, cfg.seed, parts, 0);

        for (i, ops) in all.iter().take(5).enumerate() {
            wal.append(i as u64 + 1, ops).unwrap();
        }
        let shipped = tailer.poll(wal.last_seq()).unwrap();
        assert_eq!(shipped.len(), 5);
        let after_catchup = tailer.bytes_scanned();
        assert!(after_catchup > 0);

        // Idle polls re-stat the files but must not re-read history.
        for _ in 0..100 {
            assert!(tailer.poll(wal.last_seq()).unwrap().is_empty());
        }
        assert_eq!(
            tailer.bytes_scanned(),
            after_catchup,
            "idle polls must be O(stat), not O(history)"
        );

        // One more append: the poll reads exactly the file growth.
        let sizes = |dir: &Path| -> u64 {
            (0..parts)
                .map(|p| std::fs::metadata(dir.join(segment_file(p, parts))).unwrap().len())
                .sum()
        };
        let before = sizes(&dir);
        wal.append(6, &all[5]).unwrap();
        let grew = sizes(&dir) - before;
        assert_eq!(tailer.poll(wal.last_seq()).unwrap().len(), 1);
        assert_eq!(
            tailer.bytes_scanned() - after_catchup,
            grew,
            "an active poll reads only the appended bytes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bumped_epoch_survives_recovery_and_compaction() {
        let cfg = config();
        let dir = tmp_dir("epoch");
        let parts = 2;
        let all = batches(6);
        let opts = WalOptions { snapshot_every: 3, ..seg_opts(parts) };
        let mut wal = SegmentedWal::open(&dir, SCALE, cfg.seed, opts, 0, &[], 0).unwrap();
        assert_eq!(wal.epoch(), 0);
        for (i, ops) in all.iter().take(3).enumerate() {
            wal.append(i as u64 + 1, ops).unwrap();
        }
        // Promotion: bump in place, with records already in the log.
        wal.bump_epoch(3).unwrap();
        assert_eq!(wal.epoch(), 3);
        wal.bump_epoch(1).unwrap(); // stale bump is a no-op
        assert_eq!(wal.epoch(), 3);
        for (i, ops) in all.iter().enumerate().skip(3) {
            wal.append(i as u64 + 1, ops).unwrap();
            wal.maybe_snapshot().unwrap();
        }
        drop(wal); // crash, no graceful shutdown

        let rec = recover(&dir, &cfg, SCALE, opts).unwrap();
        assert_eq!(rec.report.epoch, 3, "bumped epoch survives restart");
        assert_eq!(rec.wal.epoch(), 3);
        assert_eq!(rec.report.last_seq, all.len() as u64, "records survive the bump");

        // The epoch rides compaction into the snapshot header too: even
        // with every live segment reset, recovery still sees the term.
        let (_, durability, report) = rec.into_durability();
        assert_eq!(durability.epoch, 3);
        assert_eq!(report.epoch, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
