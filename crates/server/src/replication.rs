//! Cross-process replication: per-partition WAL log shipping.
//!
//! A **primary** exposes a replication listener (a separate port from
//! query traffic) and streams its acked WAL records — tail-read through
//! [`crate::wal::WalTailer`], so compaction never disturbs the cursor —
//! to any number of **followers**. A follower connects with
//! [`ReplFrame::Hello`] carrying its applied high-water mark, replays
//! the backlog through its own [`crate::server::ServerInner::submit_batch`]
//! write path (same WAL append + apply + snapshot publication as a
//! primary, so a follower's on-disk state is a primary's), and then
//! applies the live tail as it arrives. Because apply goes through the
//! seq-dedupe gate, delivery is at-least-once but application is
//! exactly-once: a follower restart or a rewound cursor re-ships
//! records that are simply re-acked as duplicates.
//!
//! **Staleness contract.** Followers serve reads lock-free from their
//! published snapshots; every response carries `applied_seq`, and a
//! client that needs read-your-writes sends `min_seq` — admission
//! refuses with `stale_read` (retryable) until the follower catches up.
//! The store version is published *before* `last_applied_seq` advances,
//! so a request admitted at `applied_seq = n` pins a snapshot containing
//! every write `≤ n`.
//!
//! **Promotion and fencing.** The failover harness (or an operator)
//! speaks [`ReplFrame::Promote`] to the *follower's* replication
//! listener; the follower durably bumps its **fencing epoch** (fsynced
//! into every WAL header *before* it goes writable), answers
//! [`ReplFrame::Promoted`] with the sequence it is writable from and
//! the new epoch, and its applier loop exits. Every shipped frame —
//! `Hello`, `Record`, `Heartbeat`, `Deny`, `Announce` — carries the
//! sender's epoch, so a **zombie**: an ex-primary that was only
//! partitioned, not dead, is detected the moment any frame at a higher
//! term reaches it, and fences itself — client writes refuse with the
//! terminal `fenced` error instead of acking into a doomed history.
//!
//! **Automatic re-subscription.** `Promote` carries the new primary's
//! own endpoints plus a sibling list; after answering `Promoted` the
//! new primary announces itself ([`ReplFrame::Announce`]) to every
//! sibling, retrying through partitions. A surviving follower adopts
//! the announced replication target and its applier reconnects there
//! on its next pass — no operator re-pointing. The old primary is a
//! sibling too: the announce that finally lands after the partition
//! heals is what fences it. Followers additionally watch for primary
//! silence (no bytes for [`HEARTBEAT_TIMEOUT`]) and drop the dead
//! subscription with a typed log line instead of waiting forever.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::proto::{decode_repl, encode_repl, take_frame, write_frame, ReplFrame, WriteBatch};
use crate::server::{Server, ServerInner};
use crate::wal::WalTailer;

/// How often an idle ship loop re-polls the WAL for new acked records.
/// Low, because this bounds best-case replication lag.
const POLL_INTERVAL: Duration = Duration::from_millis(2);
/// Idle heartbeat period: keeps the follower's view of the primary's
/// high-water mark fresh and surfaces dead peers via write failures.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(150);
/// Read timeout on replication sockets; reads buffer through
/// [`take_frame`], so a timeout mid-frame loses nothing.
const READ_TIMEOUT: Duration = Duration::from_millis(50);
/// A subscribed follower that hears *nothing* (no records, no
/// heartbeats) for this long presumes the primary dead and reconnects.
/// Eight heartbeat periods: deep enough that a scheduling hiccup never
/// trips it, shallow enough that failover detection is sub-second-ish.
const HEARTBEAT_TIMEOUT: Duration = Duration::from_millis(1200);
/// How long a freshly promoted primary keeps retrying its `Announce`
/// to unreachable siblings (a partitioned zombie needs the retry that
/// lands *after* the heal to learn it was deposed).
const ANNOUNCE_BUDGET: Duration = Duration::from_secs(30);
/// Delay between announce retry sweeps over still-pending siblings.
const ANNOUNCE_RETRY_EVERY: Duration = Duration::from_millis(200);

/// What a node needs to know about its own WAL/world to ship or
/// subscribe: the shipping cursor reads `wal_dir` directly, and
/// scale/seed/partitions fence `Hello` against a mismatched
/// deterministic world (applying another world's records would corrupt
/// the store silently, not loudly).
#[derive(Clone, Debug)]
pub struct ReplicationConfig {
    /// The node's own WAL directory (the primary tails it to ship).
    pub wal_dir: PathBuf,
    /// Datagen scale label, e.g. `"0.003"`.
    pub scale: String,
    /// Datagen seed.
    pub seed: u64,
    /// WAL partition count.
    pub partitions: usize,
}

/// Internal follower-side gauges, shared between the applier thread and
/// [`FollowerHandle::status`].
struct FollowerState {
    stopped: AtomicBool,
    connected: AtomicBool,
    caught_up: AtomicBool,
    denied: AtomicBool,
    catch_up_ms: AtomicU64,
    records_applied: AtomicU64,
    records_deduped: AtomicU64,
    apply_errors: AtomicU64,
    primary_seq: AtomicU64,
    heartbeat_timeouts: AtomicU64,
    resubscribed: AtomicU64,
    image_bootstraps: AtomicU64,
}

/// Point-in-time snapshot of a follower's replication progress.
#[derive(Clone, Debug, Default)]
pub struct FollowerStatus {
    /// The applier currently holds a live connection to the primary.
    pub connected: bool,
    /// The primary sent `CaughtUp`: the backlog at subscribe time has
    /// been fully replayed and everything since is live tail.
    pub caught_up: bool,
    /// The primary refused the subscription (mismatched world or
    /// hello'd a non-primary); the applier has given up.
    pub denied: bool,
    /// Wall-clock from connect to `CaughtUp`, for the catch-up bench.
    pub catch_up_ms: u64,
    /// Records applied first-hand (WAL append + store publish).
    pub records_applied: u64,
    /// Records re-acked by the seq-dedupe gate (at-least-once delivery
    /// made visible: nonzero after a restart or rewound cursor).
    pub records_deduped: u64,
    /// Records the local submit path refused (sequence gap or poisoned
    /// store); each forces a reconnect-and-resubscribe.
    pub apply_errors: u64,
    /// The primary's acked high-water mark, from records, `CaughtUp`
    /// and heartbeats.
    pub primary_seq: u64,
    /// This node's own applied high-water mark.
    pub applied_seq: u64,
    /// Subscriptions dropped because the primary went silent past
    /// [`HEARTBEAT_TIMEOUT`] (dead-primary detection).
    pub heartbeat_timeouts: u64,
    /// Times the applier re-subscribed to a *different* primary than
    /// the one it was following (automatic failover re-pointing).
    pub resubscribed: u64,
    /// Store images received, verified, and installed in place of log
    /// replay (cold-follower bootstrap).
    pub image_bootstraps: u64,
}

impl FollowerStatus {
    /// Replication lag in records (primary's acked seq minus ours).
    pub fn lag(&self) -> u64 {
        self.primary_seq.saturating_sub(self.applied_seq)
    }
}

/// Handle to a running follower applier (returned by
/// [`Server::replicate_from`]). Dropping it leaves the applier running
/// for the life of the server; [`FollowerHandle::stop`] halts it.
pub struct FollowerHandle {
    inner: Arc<ServerInner>,
    state: Arc<FollowerState>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl FollowerHandle {
    /// Current replication progress.
    pub fn status(&self) -> FollowerStatus {
        FollowerStatus {
            connected: self.state.connected.load(Ordering::Acquire),
            caught_up: self.state.caught_up.load(Ordering::Acquire),
            denied: self.state.denied.load(Ordering::Acquire),
            catch_up_ms: self.state.catch_up_ms.load(Ordering::Acquire),
            records_applied: self.state.records_applied.load(Ordering::Relaxed),
            records_deduped: self.state.records_deduped.load(Ordering::Relaxed),
            apply_errors: self.state.apply_errors.load(Ordering::Relaxed),
            primary_seq: self.state.primary_seq.load(Ordering::Acquire),
            applied_seq: self.inner.applied_seq(),
            heartbeat_timeouts: self.state.heartbeat_timeouts.load(Ordering::Relaxed),
            resubscribed: self.state.resubscribed.load(Ordering::Relaxed),
            image_bootstraps: self.state.image_bootstraps.load(Ordering::Relaxed),
        }
    }

    /// Blocks until the follower has caught up (or `timeout` passes);
    /// returns whether it did.
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.state.caught_up.load(Ordering::Acquire) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.state.caught_up.load(Ordering::Acquire)
    }

    /// Stops the applier and joins its thread.
    pub fn stop(mut self) {
        self.state.stopped.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Binds the replication listener and starts serving the shipping
    /// protocol: `Hello` subscriptions get the acked WAL tail streamed
    /// from `config.wal_dir`; `Promote` flips this node writable.
    /// Returns the bound address. Threads exit when the server stops
    /// accepting (shutdown).
    pub fn listen_replication(
        &self,
        addr: &str,
        config: ReplicationConfig,
    ) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let inner = Arc::clone(self.inner());
        std::thread::spawn(move || {
            while inner.is_accepting() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let inner = Arc::clone(&inner);
                        let config = config.clone();
                        std::thread::spawn(move || serve_peer(&inner, stream, &config));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(local)
    }

    /// Starts a follower applier: subscribe to `primary`'s replication
    /// listener from this node's applied high-water mark, apply shipped
    /// records through the local durable write path, reconnect with
    /// backoff on disconnect. The applier exits when stopped, when the
    /// server shuts down, or when this node is promoted. If a newer
    /// primary announces itself over the repl channel, the applier
    /// re-subscribes there automatically.
    pub fn replicate_from(&self, primary: &str, config: ReplicationConfig) -> FollowerHandle {
        let state = Arc::new(FollowerState {
            stopped: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            caught_up: AtomicBool::new(false),
            denied: AtomicBool::new(false),
            catch_up_ms: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            records_deduped: AtomicU64::new(0),
            apply_errors: AtomicU64::new(0),
            primary_seq: AtomicU64::new(0),
            heartbeat_timeouts: AtomicU64::new(0),
            resubscribed: AtomicU64::new(0),
            image_bootstraps: AtomicU64::new(0),
        });
        let inner = Arc::clone(self.inner());
        let thread = {
            let inner = Arc::clone(&inner);
            let state = Arc::clone(&state);
            let primary = primary.to_string();
            std::thread::spawn(move || follower_loop(&inner, &primary, &config, &state))
        };
        FollowerHandle { inner, state, thread: Some(thread) }
    }
}

/// What [`promote_with`] returns: where the new primary's history
/// starts and which fencing epoch it now rules under.
#[derive(Clone, Copy, Debug)]
pub struct Promotion {
    /// The node accepts writes at `writable_from + 1`.
    pub writable_from: u64,
    /// The durably bumped fencing epoch the node promoted into.
    pub epoch: u64,
}

/// Operator/harness-side promotion: speaks `Promote` to a follower's
/// replication listener and returns the sequence the node is writable
/// from. An error means the node never answered `Promoted`. Thin
/// wrapper over [`promote_with`] with no epoch floor, no advertised
/// endpoints and no siblings to announce to.
pub fn promote(addr: &str) -> std::io::Result<u64> {
    promote_with(addr, 0, "", "", &[]).map(|p| p.writable_from)
}

/// Full promotion: the node durably bumps its fencing epoch to at
/// least `epoch` (0 lets the node pick: its own term + 1) *before*
/// going writable, then announces `repl_addr`/`client_addr` (its own
/// advertised endpoints) to every address in `siblings` so surviving
/// followers re-subscribe — and the partitioned ex-primary, when the
/// announce finally reaches it, fences itself.
pub fn promote_with(
    addr: &str,
    epoch: u64,
    repl_addr: &str,
    client_addr: &str,
    siblings: &[String],
) -> std::io::Result<Promotion> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let frame = ReplFrame::Promote {
        epoch,
        repl_addr: repl_addr.to_string(),
        client_addr: client_addr.to_string(),
        siblings: siblings.to_vec(),
    };
    write_frame(&mut stream, &encode_repl(&frame))?;
    let payload = crate::proto::read_frame(&mut stream)?;
    match decode_repl(&payload) {
        Ok(ReplFrame::Promoted { seq, epoch }) => Ok(Promotion { writable_from: seq, epoch }),
        Ok(ReplFrame::Deny { detail, .. }) => {
            Err(std::io::Error::new(std::io::ErrorKind::PermissionDenied, detail))
        }
        Ok(other) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected reply to Promote: {other:?}"),
        )),
        Err(e) => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e.detail)),
    }
}

/// Handles one inbound replication connection: the first frame decides
/// whether this is a subscription (`Hello` → ship loop until
/// disconnect/shutdown), a control call (`Promote` → bump epoch, reply,
/// start announcing), or a failover notification (`Announce` → adopt or
/// fence).
fn serve_peer(inner: &Arc<ServerInner>, mut stream: TcpStream, config: &ReplicationConfig) {
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let Some(first) = read_one_frame(inner, &mut stream) else { return };
    let deny = |stream: &mut TcpStream, detail: String, epoch: u64| {
        let _ = write_frame(stream, &encode_repl(&ReplFrame::Deny { detail, epoch }));
    };
    match decode_repl(&first) {
        Ok(ReplFrame::Hello { scale, seed, partitions, from_seq, epoch }) => {
            if epoch > inner.epoch() {
                if inner.read_only_flag() {
                    inner.observe_epoch(epoch);
                } else {
                    // A subscriber knows a newer term than this
                    // "primary" does: we are the zombie. Fence before
                    // another client write gets acked.
                    eprintln!(
                        "repl: fenced epoch={} by subscriber hello at epoch={epoch}",
                        inner.epoch()
                    );
                    inner.fence(epoch, "");
                }
            }
            if inner.read_only_flag() || inner.is_fenced() {
                deny(
                    &mut stream,
                    "not a primary (follower or fenced); subscribe elsewhere".into(),
                    inner.epoch(),
                );
                return;
            }
            if scale != config.scale
                || seed != config.seed
                || partitions as usize != config.partitions
            {
                deny(
                    &mut stream,
                    format!(
                        "world mismatch: primary is scale={} seed={} partitions={}, \
                         follower sent scale={scale} seed={seed} partitions={partitions}",
                        config.scale, config.seed, config.partitions
                    ),
                    inner.epoch(),
                );
                return;
            }
            let Some(group_commit) = inner.wal_group_commit() else {
                deny(
                    &mut stream,
                    "primary has no write-ahead log; nothing to ship".into(),
                    inner.epoch(),
                );
                return;
            };
            ship_loop(inner, &mut stream, config, from_seq, group_commit);
        }
        Ok(ReplFrame::Promote { epoch, repl_addr, client_addr, siblings }) => {
            match inner.promote_inner(epoch) {
                Ok((seq, new_epoch)) => {
                    if !client_addr.is_empty() {
                        inner.set_primary_hint(&client_addr);
                    }
                    let reply = ReplFrame::Promoted { seq, epoch: new_epoch };
                    let _ = write_frame(&mut stream, &encode_repl(&reply));
                    if !siblings.is_empty() {
                        let inner = Arc::clone(inner);
                        std::thread::spawn(move || {
                            announce_promotion(&inner, new_epoch, repl_addr, client_addr, siblings)
                        });
                    }
                }
                Err(e) => deny(
                    &mut stream,
                    format!("promotion failed to bump the epoch durably: {e:?}"),
                    inner.epoch(),
                ),
            }
        }
        Ok(ReplFrame::Announce { epoch, repl_addr, client_addr }) => {
            let own = inner.epoch();
            if epoch < own {
                deny(&mut stream, format!("stale announce: epoch {epoch} < {own}"), own);
                return;
            }
            if inner.read_only_flag() {
                // Surviving follower: re-point the applier at the new
                // primary; it reconnects there on its next pass.
                inner.observe_epoch(epoch);
                if !repl_addr.is_empty() {
                    inner.set_repl_target(&repl_addr);
                }
                if !client_addr.is_empty() {
                    inner.set_primary_hint(&client_addr);
                }
            } else if epoch > own {
                // Writable node told of a newer term: zombie ex-primary.
                eprintln!(
                    "repl: fenced epoch={own} by announce epoch={epoch} primary={client_addr}"
                );
                inner.fence(epoch, &client_addr);
            }
            // epoch == own on a writable node is the self-announce echo
            // (we are the announced primary); ack idempotently.
            let ack = ReplFrame::Heartbeat { last_seq: inner.applied_seq(), epoch: inner.epoch() };
            let _ = write_frame(&mut stream, &encode_repl(&ack));
        }
        Ok(other) => {
            deny(&mut stream, format!("unexpected opening frame: {other:?}"), inner.epoch())
        }
        Err(e) => deny(&mut stream, e.detail, inner.epoch()),
    }
}

/// The freshly promoted primary's side of automatic re-subscription:
/// push an `Announce` at every sibling replication listener, retrying
/// unreachable ones (a partitioned zombie answers only after the heal —
/// that late ack is precisely the fencing handshake). A sibling that
/// replies at all — ack or deny — is settled.
fn announce_promotion(
    inner: &Arc<ServerInner>,
    epoch: u64,
    repl_addr: String,
    client_addr: String,
    siblings: Vec<String>,
) {
    let frame = encode_repl(&ReplFrame::Announce { epoch, repl_addr, client_addr });
    let started = Instant::now();
    let mut pending = siblings;
    while inner.is_accepting() && !pending.is_empty() && started.elapsed() < ANNOUNCE_BUDGET {
        pending.retain(|addr| announce_once(addr, &frame).is_err());
        if !pending.is_empty() {
            std::thread::sleep(ANNOUNCE_RETRY_EVERY);
        }
    }
    for addr in &pending {
        eprintln!(
            "repl: announce to sibling {addr} never answered (gave up after {:?})",
            ANNOUNCE_BUDGET
        );
    }
}

/// One announce attempt: any decodable reply (`Heartbeat` ack or
/// `Deny` from a peer already at a newer term) settles the sibling;
/// an I/O error means unreachable — retry later.
fn announce_once(addr: &str, frame: &[u8]) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    write_frame(&mut stream, frame)?;
    let payload = crate::proto::read_frame(&mut stream)?;
    decode_repl(&payload)
        .map(|_| ())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.detail))
}

/// Streams acked WAL records `> from_seq` to one subscriber, then keeps
/// live-tailing with heartbeats. Every frame is stamped with the
/// shipper's current epoch. Exits on any write failure (dead peer),
/// when the node is fenced (a stale term must stop shipping), or when
/// the server stops accepting.
fn ship_loop(
    inner: &Arc<ServerInner>,
    stream: &mut TcpStream,
    config: &ReplicationConfig,
    from_seq: u64,
    group_commit: bool,
) {
    // Cold (or far-behind) subscriber with a store image on disk:
    // ship the image first and tail from its sequence instead of
    // replaying the whole history — the snapshot log behind the image
    // has been truncated, so the log alone can't reach back that far.
    let from_seq = match ship_image(inner, stream, config, from_seq) {
        Some(seq) => seq,
        None => return, // dead peer mid-bootstrap
    };
    let mut tailer =
        WalTailer::new(&config.wal_dir, &config.scale, config.seed, config.partitions, from_seq);
    // The backlog target is pinned at subscribe time: once the cursor
    // passes it, the follower has everything that predated its Hello
    // and `CaughtUp` marks the live edge.
    let target = inner.acked_seq(group_commit);
    let mut caught_up_sent = false;
    let mut last_beat = Instant::now();
    while inner.is_accepting() && !inner.is_fenced() {
        if snb_fault::partition_active() {
            // Black-holed: ship nothing, close nothing. The follower
            // hears silence and its heartbeat timeout does the rest.
            std::thread::sleep(POLL_INTERVAL);
            continue;
        }
        let bound = inner.acked_seq(group_commit);
        let records = match tailer.poll(bound) {
            Ok(r) => r,
            Err(_) => {
                // Transient read race with the writer/compactor; the
                // cursor is untouched, so just retry.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        let idle = records.is_empty();
        for rec in records {
            let frame = ReplFrame::Record {
                seq: rec.seq,
                partition: rec.partition as u32,
                ops: rec.ops,
                epoch: inner.epoch(),
            };
            if write_frame(stream, &encode_repl(&frame)).is_err() {
                return;
            }
            last_beat = Instant::now();
        }
        if !caught_up_sent && tailer.next_seq() > target {
            let through_seq = tailer.next_seq() - 1;
            if write_frame(stream, &encode_repl(&ReplFrame::CaughtUp { through_seq })).is_err() {
                return;
            }
            caught_up_sent = true;
            last_beat = Instant::now();
        }
        if idle {
            if caught_up_sent && last_beat.elapsed() >= HEARTBEAT_EVERY {
                let beat = ReplFrame::Heartbeat { last_seq: bound, epoch: inner.epoch() };
                if write_frame(stream, &encode_repl(&beat)).is_err() {
                    return;
                }
                last_beat = Instant::now();
            }
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

/// Offers this node's store image to a subscriber whose `from_seq`
/// predates it: the raw file bytes go out as one
/// [`ReplFrame::ImageOffer`] followed by in-order
/// [`ReplFrame::ImageChunk`]s. Returns the sequence to tail records
/// from — the image's if one was shipped, the subscriber's own
/// otherwise — or `None` if the peer died mid-transfer. Any local
/// image problem (unreadable, superseded mid-read, corrupt) falls back
/// to plain log shipping rather than killing the subscription.
fn ship_image(
    inner: &Arc<ServerInner>,
    stream: &mut TcpStream,
    config: &ReplicationConfig,
    from_seq: u64,
) -> Option<u64> {
    match crate::image::image_info(&config.wal_dir, &config.scale, config.seed) {
        Ok(Some(info)) if info.seq > from_seq => {}
        _ => return Some(from_seq),
    }
    let Ok(bytes) = crate::image::read_image_bytes(&config.wal_dir) else {
        return Some(from_seq);
    };
    // Stamp the offer from the bytes actually being shipped — the file
    // can be superseded by an atomic rename between stat and read.
    let Ok(header) = crate::image::peek_header(&bytes, &config.scale, config.seed) else {
        return Some(from_seq);
    };
    if header.seq <= from_seq {
        return Some(from_seq);
    }
    let offer = ReplFrame::ImageOffer {
        seq: header.seq,
        epoch: header.epoch,
        len: bytes.len() as u64,
        checksum: snb_store::image_fnv64(&bytes),
        primary_epoch: inner.epoch(),
    };
    if write_frame(stream, &encode_repl(&offer)).is_err() {
        return None;
    }
    for (i, chunk) in bytes.chunks(crate::proto::IMAGE_CHUNK_BYTES).enumerate() {
        let frame = ReplFrame::ImageChunk {
            offset: (i * crate::proto::IMAGE_CHUNK_BYTES) as u64,
            data: chunk.to_vec(),
        };
        if write_frame(stream, &encode_repl(&frame)).is_err() {
            return None;
        }
    }
    eprintln!(
        "repl: shipped image seq={} epoch={} bytes={} to subscriber at from_seq={from_seq}",
        header.seq,
        header.epoch,
        bytes.len()
    );
    Some(header.seq)
}

/// The follower applier: connect → `Hello` from the local applied seq →
/// apply every shipped record through the durable write path →
/// reconnect with backoff on disconnect. Runs until stopped, shutdown,
/// promoted, or denied. Each pass re-reads the announced replication
/// target, so an `Announce` from a new primary re-points the very next
/// connection — that is the automatic re-subscription.
fn follower_loop(
    inner: &Arc<ServerInner>,
    primary: &str,
    config: &ReplicationConfig,
    state: &Arc<FollowerState>,
) {
    let mut backoff = Duration::from_millis(10);
    let mut current = String::new();
    let active = |state: &FollowerState| {
        !state.stopped.load(Ordering::Acquire)
            && !state.denied.load(Ordering::Acquire)
            && inner.is_accepting()
            && inner.read_only_flag()
    };
    while active(state) {
        let target = {
            let announced = inner.repl_target();
            if announced.is_empty() {
                primary.to_string()
            } else {
                announced
            }
        };
        let Ok(mut stream) = TcpStream::connect(&target) else {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(500));
            continue;
        };
        backoff = Duration::from_millis(10);
        stream.set_nodelay(true).ok();
        if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
            continue;
        }
        let hello = ReplFrame::Hello {
            scale: config.scale.clone(),
            seed: config.seed,
            partitions: config.partitions as u32,
            from_seq: inner.applied_seq(),
            epoch: inner.epoch(),
        };
        if write_frame(&mut stream, &encode_repl(&hello)).is_err() {
            continue;
        }
        if !current.is_empty() && current != target {
            state.resubscribed.fetch_add(1, Ordering::Relaxed);
            eprintln!("repl: re-subscribed to new primary {target} (was {current})");
        }
        current = target.clone();
        state.connected.store(true, Ordering::Release);
        let subscribe_started = Instant::now();
        apply_stream(inner, &mut stream, state, subscribe_started, &active, &target);
        state.connected.store(false, Ordering::Release);
    }
    state.connected.store(false, Ordering::Release);
}

/// Drains one subscription connection, applying records until the
/// stream breaks, the applier goes inactive, the primary goes silent
/// past [`HEARTBEAT_TIMEOUT`], a newer primary is announced, or a
/// stale-epoch frame unmasks a zombie shipper.
fn apply_stream(
    inner: &Arc<ServerInner>,
    stream: &mut TcpStream,
    state: &Arc<FollowerState>,
    subscribe_started: Instant,
    active: &impl Fn(&FollowerState) -> bool,
    connected_to: &str,
) {
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut last_heard = Instant::now();
    // In-flight image bootstrap: promised (len, checksum) from the
    // offer plus the bytes assembled so far.
    let mut image: Option<(u64, u64, Vec<u8>)> = None;
    loop {
        loop {
            let payload = match take_frame(&mut buf) {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => return,
            };
            let Ok(frame) = decode_repl(&payload) else { return };
            match frame {
                ReplFrame::Record { seq, ops, epoch, .. } => {
                    if epoch < inner.epoch() {
                        // A deposed primary still shipping its old term:
                        // never apply a stale-epoch record.
                        eprintln!(
                            "repl: dropping subscription to {connected_to}: record epoch {epoch} < known {}",
                            inner.epoch()
                        );
                        return;
                    }
                    inner.observe_epoch(epoch);
                    let batch = WriteBatch { seq, ops };
                    match inner.submit_batch(&batch) {
                        Ok(("deduped", _)) => {
                            state.records_deduped.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            state.records_applied.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Sequence gap or poisoned store: drop the
                            // connection and re-Hello from the real
                            // applied seq — the primary restreams and
                            // dedupe absorbs any overlap.
                            state.apply_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    state.primary_seq.fetch_max(seq, Ordering::AcqRel);
                }
                ReplFrame::CaughtUp { through_seq } => {
                    state.primary_seq.fetch_max(through_seq, Ordering::AcqRel);
                    if !state.caught_up.swap(true, Ordering::AcqRel) {
                        state.catch_up_ms.store(
                            subscribe_started.elapsed().as_millis() as u64,
                            Ordering::Release,
                        );
                    }
                }
                ReplFrame::Heartbeat { last_seq, epoch } => {
                    if epoch < inner.epoch() {
                        eprintln!(
                            "repl: dropping subscription to {connected_to}: heartbeat epoch {epoch} < known {}",
                            inner.epoch()
                        );
                        return;
                    }
                    inner.observe_epoch(epoch);
                    state.primary_seq.fetch_max(last_seq, Ordering::AcqRel);
                }
                ReplFrame::Deny { detail, epoch } => {
                    if epoch > inner.epoch() {
                        // The peer knows a newer term we have not heard
                        // of yet; its Announce is presumably en route.
                        // Reconnect (throttled) instead of giving up.
                        eprintln!(
                            "repl: denied by {connected_to} at newer epoch {epoch}; awaiting announce: {detail}"
                        );
                        std::thread::sleep(HEARTBEAT_EVERY);
                        return;
                    }
                    let retarget = {
                        let t = inner.repl_target();
                        !t.is_empty() && t != connected_to
                    };
                    if retarget {
                        // A new primary was announced while this deny
                        // was in flight; just reconnect there.
                        return;
                    }
                    eprintln!("repl: subscription denied by {connected_to}: {detail}");
                    state.denied.store(true, Ordering::Release);
                    return;
                }
                ReplFrame::ImageOffer { seq, epoch: _, len, checksum, primary_epoch } => {
                    if primary_epoch < inner.epoch() {
                        eprintln!(
                            "repl: dropping subscription to {connected_to}: image offer epoch {primary_epoch} < known {}",
                            inner.epoch()
                        );
                        return;
                    }
                    inner.observe_epoch(primary_epoch);
                    // The image file is the whole store; anything past a
                    // few GiB is a framing bug, not a bigger store.
                    if len == 0 || len > (4u64 << 30) {
                        eprintln!("repl: refusing implausible image offer of {len} bytes");
                        return;
                    }
                    state.primary_seq.fetch_max(seq, Ordering::AcqRel);
                    image = Some((len, checksum, Vec::with_capacity(len as usize)));
                }
                ReplFrame::ImageChunk { offset, data } => {
                    let complete = {
                        let Some((len, _, assembled)) = image.as_mut() else {
                            // Chunk with no offer: protocol violation.
                            return;
                        };
                        if offset != assembled.len() as u64
                            || (assembled.len() + data.len()) as u64 > *len
                        {
                            // Out-of-order or overlong run: drop the
                            // stream and re-Hello from scratch.
                            return;
                        }
                        assembled.extend_from_slice(&data);
                        assembled.len() as u64 == *len
                    };
                    if complete {
                        let (len, checksum, assembled) = image.take().expect("complete image");
                        if snb_store::image_fnv64(&assembled) != checksum {
                            eprintln!(
                                "repl: shipped image failed its checksum after reassembly; re-subscribing"
                            );
                            return;
                        }
                        match inner.install_image(&assembled) {
                            Ok(header) => {
                                state.image_bootstraps.fetch_add(1, Ordering::Relaxed);
                                eprintln!(
                                    "repl: bootstrapped from shipped image seq={} epoch={} bytes={len}",
                                    header.seq, header.epoch
                                );
                            }
                            Err(e) => {
                                // An image at or below our own applied
                                // seq is not progress; the record tail
                                // that follows simply dedupes. Log and
                                // keep the subscription either way.
                                eprintln!("repl: shipped image not installed: {e:?}");
                            }
                        }
                    }
                }
                // Hello/Promote/Promoted/Announce are never primary→follower.
                _ => return,
            }
        }
        if !active(state) {
            return;
        }
        {
            let t = inner.repl_target();
            if !t.is_empty() && t != connected_to {
                // Announced failover: drop this (dead) subscription and
                // let the outer loop re-subscribe at the new primary.
                return;
            }
        }
        if last_heard.elapsed() > HEARTBEAT_TIMEOUT {
            state.heartbeat_timeouts.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "repl: heartbeat timeout target={connected_to} silent_ms={}; presuming primary dead, reconnecting",
                last_heard.elapsed().as_millis()
            );
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => {
                if snb_fault::partition_active() {
                    // Black-holed on our side: inbound bytes vanish.
                    buf.clear();
                    continue;
                }
                buf.extend_from_slice(&tmp[..n]);
                last_heard = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Reads one length-prefixed frame with the connection's read timeout,
/// buffering partial reads so a timeout never tears a frame. Returns
/// `None` on disconnect, framing violation, or server shutdown. Under
/// an active `net.partition` fault the bytes are discarded unread —
/// the peer's frame vanishes in transit and no reply will ever come,
/// exactly a mid-network drop.
fn read_one_frame(inner: &Arc<ServerInner>, stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4 * 1024];
    loop {
        match take_frame(&mut buf) {
            Ok(Some(payload)) => return Some(payload),
            Ok(None) => {}
            Err(_) => return None,
        }
        if !inner.is_accepting() {
            return None;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return None,
            Ok(n) => {
                if snb_fault::partition_active() {
                    buf.clear();
                    continue;
                }
                buf.extend_from_slice(&tmp[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}
