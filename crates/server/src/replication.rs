//! Cross-process replication: per-partition WAL log shipping.
//!
//! A **primary** exposes a replication listener (a separate port from
//! query traffic) and streams its acked WAL records — tail-read through
//! [`crate::wal::WalTailer`], so compaction never disturbs the cursor —
//! to any number of **followers**. A follower connects with
//! [`ReplFrame::Hello`] carrying its applied high-water mark, replays
//! the backlog through its own [`crate::server::ServerInner::submit_batch`]
//! write path (same WAL append + apply + snapshot publication as a
//! primary, so a follower's on-disk state is a primary's), and then
//! applies the live tail as it arrives. Because apply goes through the
//! seq-dedupe gate, delivery is at-least-once but application is
//! exactly-once: a follower restart or a rewound cursor re-ships
//! records that are simply re-acked as duplicates.
//!
//! **Staleness contract.** Followers serve reads lock-free from their
//! published snapshots; every response carries `applied_seq`, and a
//! client that needs read-your-writes sends `min_seq` — admission
//! refuses with `stale_read` (retryable) until the follower catches up.
//! The store version is published *before* `last_applied_seq` advances,
//! so a request admitted at `applied_seq = n` pins a snapshot containing
//! every write `≤ n`.
//!
//! **Promotion.** The failover harness (or an operator) speaks
//! [`ReplFrame::Promote`] to the *follower's* replication listener; the
//! follower clears read-only mode, answers [`ReplFrame::Promoted`] with
//! the sequence it is writable from, and its applier loop exits. From
//! then on it accepts writes at `seq + 1` and serves `Hello` itself —
//! a promoted follower is a primary in every observable way.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::proto::{decode_repl, encode_repl, take_frame, write_frame, ReplFrame, WriteBatch};
use crate::server::{Server, ServerInner};
use crate::wal::WalTailer;

/// How often an idle ship loop re-polls the WAL for new acked records.
/// Low, because this bounds best-case replication lag.
const POLL_INTERVAL: Duration = Duration::from_millis(2);
/// Idle heartbeat period: keeps the follower's view of the primary's
/// high-water mark fresh and surfaces dead peers via write failures.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(150);
/// Read timeout on replication sockets; reads buffer through
/// [`take_frame`], so a timeout mid-frame loses nothing.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// What a node needs to know about its own WAL/world to ship or
/// subscribe: the shipping cursor reads `wal_dir` directly, and
/// scale/seed/partitions fence `Hello` against a mismatched
/// deterministic world (applying another world's records would corrupt
/// the store silently, not loudly).
#[derive(Clone, Debug)]
pub struct ReplicationConfig {
    /// The node's own WAL directory (the primary tails it to ship).
    pub wal_dir: PathBuf,
    /// Datagen scale label, e.g. `"0.003"`.
    pub scale: String,
    /// Datagen seed.
    pub seed: u64,
    /// WAL partition count.
    pub partitions: usize,
}

/// Internal follower-side gauges, shared between the applier thread and
/// [`FollowerHandle::status`].
struct FollowerState {
    stopped: AtomicBool,
    connected: AtomicBool,
    caught_up: AtomicBool,
    denied: AtomicBool,
    catch_up_ms: AtomicU64,
    records_applied: AtomicU64,
    records_deduped: AtomicU64,
    apply_errors: AtomicU64,
    primary_seq: AtomicU64,
}

/// Point-in-time snapshot of a follower's replication progress.
#[derive(Clone, Debug, Default)]
pub struct FollowerStatus {
    /// The applier currently holds a live connection to the primary.
    pub connected: bool,
    /// The primary sent `CaughtUp`: the backlog at subscribe time has
    /// been fully replayed and everything since is live tail.
    pub caught_up: bool,
    /// The primary refused the subscription (mismatched world or
    /// hello'd a non-primary); the applier has given up.
    pub denied: bool,
    /// Wall-clock from connect to `CaughtUp`, for the catch-up bench.
    pub catch_up_ms: u64,
    /// Records applied first-hand (WAL append + store publish).
    pub records_applied: u64,
    /// Records re-acked by the seq-dedupe gate (at-least-once delivery
    /// made visible: nonzero after a restart or rewound cursor).
    pub records_deduped: u64,
    /// Records the local submit path refused (sequence gap or poisoned
    /// store); each forces a reconnect-and-resubscribe.
    pub apply_errors: u64,
    /// The primary's acked high-water mark, from records, `CaughtUp`
    /// and heartbeats.
    pub primary_seq: u64,
    /// This node's own applied high-water mark.
    pub applied_seq: u64,
}

impl FollowerStatus {
    /// Replication lag in records (primary's acked seq minus ours).
    pub fn lag(&self) -> u64 {
        self.primary_seq.saturating_sub(self.applied_seq)
    }
}

/// Handle to a running follower applier (returned by
/// [`Server::replicate_from`]). Dropping it leaves the applier running
/// for the life of the server; [`FollowerHandle::stop`] halts it.
pub struct FollowerHandle {
    inner: Arc<ServerInner>,
    state: Arc<FollowerState>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl FollowerHandle {
    /// Current replication progress.
    pub fn status(&self) -> FollowerStatus {
        FollowerStatus {
            connected: self.state.connected.load(Ordering::Acquire),
            caught_up: self.state.caught_up.load(Ordering::Acquire),
            denied: self.state.denied.load(Ordering::Acquire),
            catch_up_ms: self.state.catch_up_ms.load(Ordering::Acquire),
            records_applied: self.state.records_applied.load(Ordering::Relaxed),
            records_deduped: self.state.records_deduped.load(Ordering::Relaxed),
            apply_errors: self.state.apply_errors.load(Ordering::Relaxed),
            primary_seq: self.state.primary_seq.load(Ordering::Acquire),
            applied_seq: self.inner.applied_seq(),
        }
    }

    /// Blocks until the follower has caught up (or `timeout` passes);
    /// returns whether it did.
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.state.caught_up.load(Ordering::Acquire) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.state.caught_up.load(Ordering::Acquire)
    }

    /// Stops the applier and joins its thread.
    pub fn stop(mut self) {
        self.state.stopped.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Binds the replication listener and starts serving the shipping
    /// protocol: `Hello` subscriptions get the acked WAL tail streamed
    /// from `config.wal_dir`; `Promote` flips this node writable.
    /// Returns the bound address. Threads exit when the server stops
    /// accepting (shutdown).
    pub fn listen_replication(
        &self,
        addr: &str,
        config: ReplicationConfig,
    ) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let inner = Arc::clone(self.inner());
        std::thread::spawn(move || {
            while inner.is_accepting() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let inner = Arc::clone(&inner);
                        let config = config.clone();
                        std::thread::spawn(move || serve_peer(&inner, stream, &config));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(local)
    }

    /// Starts a follower applier: subscribe to `primary`'s replication
    /// listener from this node's applied high-water mark, apply shipped
    /// records through the local durable write path, reconnect with
    /// backoff on disconnect. The applier exits when stopped, when the
    /// server shuts down, or when this node is promoted.
    pub fn replicate_from(&self, primary: &str, config: ReplicationConfig) -> FollowerHandle {
        let state = Arc::new(FollowerState {
            stopped: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            caught_up: AtomicBool::new(false),
            denied: AtomicBool::new(false),
            catch_up_ms: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            records_deduped: AtomicU64::new(0),
            apply_errors: AtomicU64::new(0),
            primary_seq: AtomicU64::new(0),
        });
        let inner = Arc::clone(self.inner());
        let thread = {
            let inner = Arc::clone(&inner);
            let state = Arc::clone(&state);
            let primary = primary.to_string();
            std::thread::spawn(move || follower_loop(&inner, &primary, &config, &state))
        };
        FollowerHandle { inner, state, thread: Some(thread) }
    }
}

/// Operator/harness-side promotion: speaks `Promote` to a follower's
/// replication listener and returns the sequence the node is writable
/// from. An error means the node never answered `Promoted`.
pub fn promote(addr: &str) -> std::io::Result<u64> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write_frame(&mut stream, &encode_repl(&ReplFrame::Promote))?;
    let payload = crate::proto::read_frame(&mut stream)?;
    match decode_repl(&payload) {
        Ok(ReplFrame::Promoted { seq }) => Ok(seq),
        Ok(ReplFrame::Deny { detail }) => {
            Err(std::io::Error::new(std::io::ErrorKind::PermissionDenied, detail))
        }
        Ok(other) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected reply to Promote: {other:?}"),
        )),
        Err(e) => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e.detail)),
    }
}

/// Handles one inbound replication connection: the first frame decides
/// whether this is a subscription (`Hello` → ship loop until
/// disconnect/shutdown) or a control call (`Promote` → reply and
/// close).
fn serve_peer(inner: &Arc<ServerInner>, mut stream: TcpStream, config: &ReplicationConfig) {
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let Some(first) = read_one_frame(inner, &mut stream) else { return };
    let deny = |stream: &mut TcpStream, detail: String| {
        let _ = write_frame(stream, &encode_repl(&ReplFrame::Deny { detail }));
    };
    match decode_repl(&first) {
        Ok(ReplFrame::Hello { scale, seed, partitions, from_seq }) => {
            if inner.read_only_flag() {
                deny(&mut stream, "not a primary (follower mode); subscribe elsewhere".into());
                return;
            }
            if scale != config.scale
                || seed != config.seed
                || partitions as usize != config.partitions
            {
                deny(
                    &mut stream,
                    format!(
                        "world mismatch: primary is scale={} seed={} partitions={}, \
                         follower sent scale={scale} seed={seed} partitions={partitions}",
                        config.scale, config.seed, config.partitions
                    ),
                );
                return;
            }
            let Some(group_commit) = inner.wal_group_commit() else {
                deny(&mut stream, "primary has no write-ahead log; nothing to ship".into());
                return;
            };
            ship_loop(inner, &mut stream, config, from_seq, group_commit);
        }
        Ok(ReplFrame::Promote) => {
            let seq = inner.clear_read_only();
            let _ = write_frame(&mut stream, &encode_repl(&ReplFrame::Promoted { seq }));
        }
        Ok(other) => deny(&mut stream, format!("unexpected opening frame: {other:?}")),
        Err(e) => deny(&mut stream, e.detail),
    }
}

/// Streams acked WAL records `> from_seq` to one subscriber, then keeps
/// live-tailing with heartbeats. Exits on any write failure (dead peer)
/// or when the server stops accepting.
fn ship_loop(
    inner: &Arc<ServerInner>,
    stream: &mut TcpStream,
    config: &ReplicationConfig,
    from_seq: u64,
    group_commit: bool,
) {
    let mut tailer =
        WalTailer::new(&config.wal_dir, &config.scale, config.seed, config.partitions, from_seq);
    // The backlog target is pinned at subscribe time: once the cursor
    // passes it, the follower has everything that predated its Hello
    // and `CaughtUp` marks the live edge.
    let target = inner.acked_seq(group_commit);
    let mut caught_up_sent = false;
    let mut last_beat = Instant::now();
    while inner.is_accepting() {
        let bound = inner.acked_seq(group_commit);
        let records = match tailer.poll(bound) {
            Ok(r) => r,
            Err(_) => {
                // Transient read race with the writer/compactor; the
                // cursor is untouched, so just retry.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        let idle = records.is_empty();
        for rec in records {
            let frame =
                ReplFrame::Record { seq: rec.seq, partition: rec.partition as u32, ops: rec.ops };
            if write_frame(stream, &encode_repl(&frame)).is_err() {
                return;
            }
            last_beat = Instant::now();
        }
        if !caught_up_sent && tailer.next_seq() > target {
            let through_seq = tailer.next_seq() - 1;
            if write_frame(stream, &encode_repl(&ReplFrame::CaughtUp { through_seq })).is_err() {
                return;
            }
            caught_up_sent = true;
            last_beat = Instant::now();
        }
        if idle {
            if caught_up_sent && last_beat.elapsed() >= HEARTBEAT_EVERY {
                let beat = ReplFrame::Heartbeat { last_seq: bound };
                if write_frame(stream, &encode_repl(&beat)).is_err() {
                    return;
                }
                last_beat = Instant::now();
            }
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

/// The follower applier: connect → `Hello` from the local applied seq →
/// apply every shipped record through the durable write path →
/// reconnect with backoff on disconnect. Runs until stopped, shutdown,
/// promoted, or denied.
fn follower_loop(
    inner: &Arc<ServerInner>,
    primary: &str,
    config: &ReplicationConfig,
    state: &Arc<FollowerState>,
) {
    let mut backoff = Duration::from_millis(10);
    let active = |state: &FollowerState| {
        !state.stopped.load(Ordering::Acquire)
            && !state.denied.load(Ordering::Acquire)
            && inner.is_accepting()
            && inner.read_only_flag()
    };
    while active(state) {
        let Ok(mut stream) = TcpStream::connect(primary) else {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(500));
            continue;
        };
        backoff = Duration::from_millis(10);
        stream.set_nodelay(true).ok();
        if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
            continue;
        }
        let hello = ReplFrame::Hello {
            scale: config.scale.clone(),
            seed: config.seed,
            partitions: config.partitions as u32,
            from_seq: inner.applied_seq(),
        };
        if write_frame(&mut stream, &encode_repl(&hello)).is_err() {
            continue;
        }
        state.connected.store(true, Ordering::Release);
        let subscribe_started = Instant::now();
        apply_stream(inner, &mut stream, state, subscribe_started, &active);
        state.connected.store(false, Ordering::Release);
    }
    state.connected.store(false, Ordering::Release);
}

/// Drains one subscription connection, applying records until the
/// stream breaks or the applier goes inactive.
fn apply_stream(
    inner: &Arc<ServerInner>,
    stream: &mut TcpStream,
    state: &Arc<FollowerState>,
    subscribe_started: Instant,
    active: &impl Fn(&FollowerState) -> bool,
) {
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    loop {
        loop {
            let payload = match take_frame(&mut buf) {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => return,
            };
            let Ok(frame) = decode_repl(&payload) else { return };
            match frame {
                ReplFrame::Record { seq, ops, .. } => {
                    let batch = WriteBatch { seq, ops };
                    match inner.submit_batch(&batch) {
                        Ok(("deduped", _)) => {
                            state.records_deduped.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            state.records_applied.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Sequence gap or poisoned store: drop the
                            // connection and re-Hello from the real
                            // applied seq — the primary restreams and
                            // dedupe absorbs any overlap.
                            state.apply_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    state.primary_seq.fetch_max(seq, Ordering::AcqRel);
                }
                ReplFrame::CaughtUp { through_seq } => {
                    state.primary_seq.fetch_max(through_seq, Ordering::AcqRel);
                    if !state.caught_up.swap(true, Ordering::AcqRel) {
                        state.catch_up_ms.store(
                            subscribe_started.elapsed().as_millis() as u64,
                            Ordering::Release,
                        );
                    }
                }
                ReplFrame::Heartbeat { last_seq } => {
                    state.primary_seq.fetch_max(last_seq, Ordering::AcqRel);
                }
                ReplFrame::Deny { detail: _ } => {
                    state.denied.store(true, Ordering::Release);
                    return;
                }
                // Hello/Promote/Promoted are never primary→follower.
                _ => return,
            }
        }
        if !active(state) {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Reads one length-prefixed frame with the connection's read timeout,
/// buffering partial reads so a timeout never tears a frame. Returns
/// `None` on disconnect, framing violation, or server shutdown.
fn read_one_frame(inner: &Arc<ServerInner>, stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4 * 1024];
    loop {
        match take_frame(&mut buf) {
            Ok(Some(payload)) => return Some(payload),
            Ok(None) => {}
            Err(_) => return None,
        }
        if !inner.is_accepting() {
            return None;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}
