//! `snb-server` — serve the SNB BI + interactive read workloads over
//! the length-prefixed binary protocol on localhost TCP.
//!
//! ```text
//! snb-server [SF] [SEED] [--port N] [--workers N] [--queue-cap N]
//!            [--deadline-ms N] [--profile]
//! ```
//!
//! Positional arguments mirror the bench binaries: scale-factor name
//! (default `0.01`) and datagen seed. `--port 0` (the default) binds an
//! ephemeral port; the bound address is printed as
//! `listening on 127.0.0.1:PORT` so harnesses can scrape it. SIGTERM or
//! SIGINT triggers graceful drain-then-shutdown: in-flight requests
//! finish, new ones are rejected `shutting_down`, the access log is
//! flushed (to `$SNB_ACCESS_LOG` when set), and the process exits 0.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use snb_datagen::GeneratorConfig;
use snb_server::{Server, ServerConfig};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Args {
    config: GeneratorConfig,
    port: u16,
    server: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut positionals: Vec<String> = Vec::new();
    let mut port = 0u16;
    let mut server = ServerConfig::default();
    let mut argv = std::env::args().skip(1);
    let parse = |name: &str, v: Option<String>| -> Result<u64, String> {
        v.ok_or_else(|| format!("{name} needs a value"))?
            .parse::<u64>()
            .map_err(|e| format!("{name}: {e}"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--port" => port = parse("--port", argv.next())? as u16,
            "--workers" => server.workers = parse("--workers", argv.next())?.max(1) as usize,
            "--queue-cap" => {
                server.queue_capacity = parse("--queue-cap", argv.next())? as usize;
            }
            "--deadline-ms" => {
                server.default_deadline =
                    Some(Duration::from_millis(parse("--deadline-ms", argv.next())?));
            }
            "--profile" => server.profiling = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => positionals.push(other.to_string()),
        }
    }
    let sf = positionals.first().map(String::as_str).unwrap_or("0.01");
    let mut config = GeneratorConfig::for_scale_name(sf)
        .ok_or_else(|| format!("unknown scale factor {sf:?}; try 0.001/0.003/0.01/0.03/0.1"))?;
    if let Some(seed) = positionals.get(1) {
        config.seed = seed.parse().map_err(|e| format!("seed: {e}"))?;
    }
    Ok(Args { config, port, server })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("snb-server: {e}");
            std::process::exit(2);
        }
    };
    install_signal_handlers();

    eprintln!("# building store: {} persons (seed {}) ...", args.config.persons, args.config.seed);
    let started = std::time::Instant::now();
    let store = snb_store::store_for_config(&args.config);
    eprintln!("# store ready in {:.2?}", started.elapsed());

    let mut server = Server::start(store, args.server.clone());
    let addr = match server.listen(&format!("127.0.0.1:{}", args.port)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("snb-server: bind failed: {e}");
            std::process::exit(2);
        }
    };
    // The harness contract: exactly this line, on stdout, flushed.
    println!("listening on {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!(
        "# serving with {} workers, queue capacity {}, profiling {}",
        args.server.workers, args.server.queue_capacity, args.server.profiling
    );

    while !SHUTDOWN.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("# signal received, draining ...");
    let log = server.log_handle();
    let report = server.shutdown();
    if let Ok(path) = std::env::var("SNB_ACCESS_LOG") {
        match log.flush_to(&path) {
            Ok(()) => eprintln!("# access log flushed to {path}"),
            Err(e) => eprintln!("# access log flush to {path} failed: {e}"),
        }
    }
    eprintln!(
        "# shutdown complete: served {}, shed {}, deadline_missed {}, \
         rejected_shutdown {}, bad_requests {}, internal_errors {}, log_records {}",
        report.served,
        report.shed,
        report.deadline_missed,
        report.rejected_shutdown,
        report.bad_requests,
        report.internal_errors,
        report.log_records,
    );
    std::process::exit(0);
}
