//! `snb-server` — serve the SNB BI + interactive read workloads over
//! the length-prefixed binary protocol on localhost TCP.
//!
//! ```text
//! snb-server [SF] [SEED] [--port N] [--workers N] [--write-workers N]
//!            [--queue-cap N] [--short-cap N] [--heavy-cap N]
//!            [--write-cap N] [--short-weight N] [--shed-oldest]
//!            [--deadline-ms N] [--short-deadline-ms N] [--profile]
//!            [--wal-dir PATH] [--fsync-every N] [--snapshot-every N]
//!            [--image] [--conn-timeout-ms N] [--partitions N] [--group-commit]
//!            [--repl-port N] [--follower] [--replicate-from ADDR]
//! snb-server --promote REPL_ADDR [--announce-repl ADDR]
//!            [--announce-client ADDR] [--siblings A,B,..] [--epoch-floor N]
//! ```
//!
//! Admission is split into three priority lanes — IS/IC short reads,
//! heavy BI reads, and writes. `--short-cap` / `--heavy-cap` /
//! `--write-cap` bound each lane (0 = inherit `--queue-cap`),
//! `--short-weight` sets how many short reads the scheduler prefers
//! per heavy one, `--short-deadline-ms` gives short reads a tighter
//! default deadline, and `--shed-oldest` makes the heavy lane evict
//! its oldest queued request instead of rejecting the newcomer.
//!
//! Positional arguments mirror the bench binaries: scale-factor name
//! (default `0.01`) and datagen seed. `--port 0` (the default) binds an
//! ephemeral port; the bound address is printed as
//! `listening on 127.0.0.1:PORT` so harnesses can scrape it. SIGTERM or
//! SIGINT triggers graceful drain-then-shutdown: in-flight requests
//! finish, new ones are rejected `shutting_down`, the access log is
//! flushed (to `$SNB_ACCESS_LOG` when set), and the process exits 0.
//!
//! `--wal-dir` enables the write workload: the directory is recovered
//! (snapshot + WAL tail, torn records truncated) before the listener
//! opens, and every acknowledged batch is WAL-appended first. The
//! recovery summary is printed as `recovered seq=N ...` on stdout
//! (including `replayed=`, `recovery_ms=`, and — when a store image
//! anchored the rebuild — `image_seq=`/`image_ms=`/`tail_replayed=`)
//! so chaos harnesses can assert on it, and the same numbers open the
//! access log as its preamble record. `--image` writes a checksummed
//! store image (`store.img`) at every compaction point and truncates
//! the snapshot log behind it, bounding recovery by the image plus the
//! WAL tail instead of the full history; recovery *uses* any existing
//! image regardless of the flag. Fault injection arms from
//! `$SNB_FAULTS` / `$SNB_FAULT_SEED` (see `snb_fault`).
//!
//! Replication (requires `--wal-dir`): `--repl-port N` opens the
//! log-shipping listener, announced as `replication on 127.0.0.1:PORT`
//! on stdout *before* the `listening on` line. `--follower` starts the
//! node read-only (client writes answer `not_primary` until a
//! `Promote` frame arrives on the replication port), and
//! `--replicate-from ADDR` subscribes to a primary's replication
//! listener and applies its shipped records through the local durable
//! write path.
//!
//! `--promote REPL_ADDR` is an operator *client* mode: send one
//! `Promote` frame to a follower's replication port and exit. The
//! follower durably bumps its fencing epoch before going writable;
//! pass `--announce-repl` / `--announce-client` (the promoted node's
//! own endpoints) and `--siblings` (comma-separated replication
//! addresses of the rest of the cluster, including the old primary) so
//! the new primary announces itself — surviving followers re-subscribe
//! automatically and a partitioned ex-primary fences itself once
//! reachable. `--epoch-floor` forces a minimum epoch (0 = the
//! follower's own term + 1).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use snb_datagen::GeneratorConfig;
use snb_server::{Server, ServerConfig, WalOptions};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Args {
    config: GeneratorConfig,
    scale: String,
    port: u16,
    server: ServerConfig,
    wal_dir: Option<std::path::PathBuf>,
    wal: WalOptions,
    repl_port: Option<u16>,
    replicate_from: Option<String>,
    promote: Option<String>,
    announce_repl: String,
    announce_client: String,
    siblings: Vec<String>,
    epoch_floor: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut positionals: Vec<String> = Vec::new();
    let mut port = 0u16;
    let mut server = ServerConfig::default();
    let mut wal_dir = None;
    let mut wal = WalOptions::default();
    let mut repl_port = None;
    let mut replicate_from = None;
    let mut promote = None;
    let mut announce_repl = String::new();
    let mut announce_client = String::new();
    let mut siblings = Vec::new();
    let mut epoch_floor = 0u64;
    let mut argv = std::env::args().skip(1);
    let parse = |name: &str, v: Option<String>| -> Result<u64, String> {
        v.ok_or_else(|| format!("{name} needs a value"))?
            .parse::<u64>()
            .map_err(|e| format!("{name}: {e}"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--port" => port = parse("--port", argv.next())? as u16,
            "--workers" => server.workers = parse("--workers", argv.next())?.max(1) as usize,
            "--write-workers" => {
                server.write_workers = parse("--write-workers", argv.next())?.max(1) as usize;
            }
            "--queue-cap" => {
                server.queue_capacity = parse("--queue-cap", argv.next())? as usize;
            }
            "--short-cap" => {
                server.lanes.short.capacity = parse("--short-cap", argv.next())? as usize;
            }
            "--heavy-cap" => {
                server.lanes.heavy.capacity = parse("--heavy-cap", argv.next())? as usize;
            }
            "--write-cap" => {
                server.lanes.write.capacity = parse("--write-cap", argv.next())? as usize;
            }
            "--short-weight" => {
                server.lanes.short_weight = parse("--short-weight", argv.next())?;
            }
            "--shed-oldest" => server.lanes.heavy.shed = snb_server::ShedPolicy::DropOldest,
            "--deadline-ms" => {
                server.default_deadline =
                    Some(Duration::from_millis(parse("--deadline-ms", argv.next())?));
            }
            "--short-deadline-ms" => {
                server.lanes.short.deadline =
                    Some(Duration::from_millis(parse("--short-deadline-ms", argv.next())?));
            }
            "--conn-timeout-ms" => {
                let ms = parse("--conn-timeout-ms", argv.next())?;
                server.conn_read_timeout =
                    if ms == 0 { None } else { Some(Duration::from_millis(ms)) };
            }
            "--wal-dir" => {
                wal_dir =
                    Some(std::path::PathBuf::from(argv.next().ok_or("--wal-dir needs a value")?));
            }
            "--fsync-every" => wal.fsync_every = parse("--fsync-every", argv.next())?.max(1),
            "--snapshot-every" => wal.snapshot_every = parse("--snapshot-every", argv.next())?,
            "--image" => wal.image = true,
            "--partitions" => {
                server.partitions = parse("--partitions", argv.next())?.max(1) as usize;
            }
            "--group-commit" => wal.group_commit = true,
            "--repl-port" => repl_port = Some(parse("--repl-port", argv.next())? as u16),
            "--follower" => server.read_only = true,
            "--replicate-from" => {
                replicate_from = Some(argv.next().ok_or("--replicate-from needs a value")?);
            }
            "--promote" => {
                promote = Some(argv.next().ok_or("--promote needs the follower's repl addr")?);
            }
            "--announce-repl" => {
                announce_repl = argv.next().ok_or("--announce-repl needs a value")?;
            }
            "--announce-client" => {
                announce_client = argv.next().ok_or("--announce-client needs a value")?;
            }
            "--siblings" => {
                siblings = argv
                    .next()
                    .ok_or("--siblings needs a comma-separated list")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--epoch-floor" => epoch_floor = parse("--epoch-floor", argv.next())?,
            "--profile" => server.profiling = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => positionals.push(other.to_string()),
        }
    }
    // The store sharding and the WAL segmenting share one knob:
    // `--partitions`, defaulting to `$SNB_PARTITIONS` like the bench
    // binaries.
    if server.partitions <= 1 {
        if let Some(parts) = std::env::var("SNB_PARTITIONS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|p| *p > 0)
        {
            server.partitions = parts;
        }
    }
    wal.partitions = server.partitions.max(1);
    let sf = positionals.first().map(String::as_str).unwrap_or("0.01");
    let mut config = GeneratorConfig::for_scale_name(sf)
        .ok_or_else(|| format!("unknown scale factor {sf:?}; try 0.001/0.003/0.01/0.03/0.1"))?;
    if let Some(seed) = positionals.get(1) {
        config.seed = seed.parse().map_err(|e| format!("seed: {e}"))?;
    }
    if (repl_port.is_some() || replicate_from.is_some()) && wal_dir.is_none() {
        return Err("replication needs a WAL: pass --wal-dir".into());
    }
    Ok(Args {
        config,
        scale: sf.to_string(),
        port,
        server,
        wal_dir,
        wal,
        repl_port,
        replicate_from,
        promote,
        announce_repl,
        announce_client,
        siblings,
        epoch_floor,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("snb-server: {e}");
            std::process::exit(2);
        }
    };
    install_signal_handlers();

    // Operator client mode: one Promote frame, print the outcome, exit.
    if let Some(target) = &args.promote {
        match snb_server::replication::promote_with(
            target,
            args.epoch_floor,
            &args.announce_repl,
            &args.announce_client,
            &args.siblings,
        ) {
            Ok(p) => {
                println!("promoted writable_from={} epoch={}", p.writable_from, p.epoch);
                if !args.siblings.is_empty() {
                    // The announce fan-out runs on the *promoted node*,
                    // not in this client; nothing to wait for here.
                    eprintln!(
                        "# announce to {} sibling(s) delegated to the new primary",
                        args.siblings.len()
                    );
                }
                return;
            }
            Err(e) => {
                eprintln!("snb-server: promote {target}: {e}");
                std::process::exit(1);
            }
        }
    }

    match snb_fault::arm_from_env() {
        Ok(0) => {}
        Ok(n) => eprintln!("# fault injection: {n} point(s) armed from $SNB_FAULTS"),
        Err(e) => {
            eprintln!("snb-server: bad $SNB_FAULTS: {e}");
            std::process::exit(2);
        }
    }

    eprintln!("# building store: {} persons (seed {}) ...", args.config.persons, args.config.seed);
    let started = std::time::Instant::now();
    let mut server = if let Some(dir) = &args.wal_dir {
        let recovered = match snb_server::recover(dir, &args.config, &args.scale, args.wal) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("snb-server: recovery failed: {e}");
                std::process::exit(2);
            }
        };
        let (store, durability, report) = recovered.into_durability();
        eprintln!("# store ready in {:.2?}", started.elapsed());
        // Harness contract: one recovery summary line on stdout.
        println!(
            "recovered seq={} snapshot_entries={} wal_entries={} truncated_bytes={} \
             replayed={} recovery_ms={} epoch={} image_seq={} image_ms={} tail_replayed={}",
            report.last_seq,
            report.snapshot_entries,
            report.wal_entries,
            report.truncated_bytes,
            report.replayed(),
            report.recovery_us / 1000,
            report.epoch,
            report.image_seq,
            report.image_us / 1000,
            report.tail_replayed,
        );
        let server = Server::start_durable(store, args.server.clone(), durability);
        // The same numbers open the access log, so catch-up time is
        // measurable from the log alone.
        server.access_log().push_recovery_preamble(
            report.replayed(),
            report.recovery_us,
            report.last_seq,
            report.image_seq,
            report.image_us,
        );
        server
    } else {
        let store = snb_store::store_for_config(&args.config);
        eprintln!("# store ready in {:.2?}", started.elapsed());
        Server::start(store, args.server.clone())
    };
    let repl_config = args.wal_dir.as_ref().map(|dir| snb_server::ReplicationConfig {
        wal_dir: dir.clone(),
        scale: args.scale.clone(),
        seed: args.config.seed,
        partitions: args.server.partitions.max(1),
    });
    // Announced before `listening on` so harnesses can scrape both in
    // order.
    if let Some(repl_port) = args.repl_port {
        let config = repl_config.clone().expect("parse_args enforces --wal-dir");
        match server.listen_replication(&format!("127.0.0.1:{repl_port}"), config) {
            Ok(repl_addr) => println!("replication on {repl_addr}"),
            Err(e) => {
                eprintln!("snb-server: replication bind failed: {e}");
                std::process::exit(2);
            }
        }
    }
    let follower = args.replicate_from.as_ref().map(|primary| {
        let config = repl_config.clone().expect("parse_args enforces --wal-dir");
        eprintln!("# following {primary}");
        server.replicate_from(primary, config)
    });
    let addr = match server.listen(&format!("127.0.0.1:{}", args.port)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("snb-server: bind failed: {e}");
            std::process::exit(2);
        }
    };
    // The harness contract: exactly this line, on stdout, flushed.
    println!("listening on {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!(
        "# serving with {} workers, queue capacity {}, partitions {}, profiling {}",
        args.server.workers,
        args.server.queue_capacity,
        args.server.partitions,
        args.server.profiling
    );

    let mut was_read_only = server.is_read_only();
    let mut was_fenced = server.is_fenced();
    while !SHUTDOWN.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
        // Promotion arrives on the replication port; announce the flip
        // on stdout so failover harnesses can scrape it.
        if was_read_only && !server.is_read_only() {
            was_read_only = false;
            // Ignore stdout errors: a harness that scraped the startup
            // lines and closed the pipe must not crash a freshly
            // promoted primary with EPIPE.
            let mut out = std::io::stdout();
            let _ = writeln!(
                out,
                "promoted writable_from={} epoch={}",
                server.last_applied_seq(),
                server.epoch()
            );
            let _ = out.flush();
        }
        // Zombie detection: a higher epoch reached this ex-primary over
        // the repl channel and client writes now refuse `fenced`.
        if !was_fenced && server.is_fenced() {
            was_fenced = true;
            let mut out = std::io::stdout();
            let _ = writeln!(out, "fenced epoch={}", server.epoch());
            let _ = out.flush();
        }
        if was_fenced && !server.is_fenced() {
            // Re-promoted into a newer term.
            was_fenced = false;
        }
    }
    eprintln!("# signal received, draining ...");
    if let Some(follower) = follower {
        let st = follower.status();
        eprintln!(
            "# follower: applied {} deduped {} errors {} caught_up {} catch_up_ms {} lag {} \
             heartbeat_timeouts {} resubscribed {}",
            st.records_applied,
            st.records_deduped,
            st.apply_errors,
            st.caught_up,
            st.catch_up_ms,
            st.lag(),
            st.heartbeat_timeouts,
            st.resubscribed,
        );
        follower.stop();
    }
    let log = server.log_handle();
    let report = server.shutdown();
    if let Ok(path) = std::env::var("SNB_ACCESS_LOG") {
        match log.flush_to(&path) {
            Ok(()) => eprintln!("# access log flushed to {path}"),
            Err(e) => eprintln!("# access log flush to {path} failed: {e}"),
        }
    }
    eprintln!(
        "# lanes: served short={} heavy={} write={}, shed short={} heavy={} write={}, \
         deadline_overrun {}, conn_accepted {}, conn_peak {}",
        report.served_by_lane[0],
        report.served_by_lane[1],
        report.served_by_lane[2],
        report.shed_by_lane[0],
        report.shed_by_lane[1],
        report.shed_by_lane[2],
        report.deadline_overrun,
        report.conn_accepted,
        report.conn_peak,
    );
    eprintln!(
        "# shutdown complete: served {}, shed {}, deadline_missed {}, \
         rejected_shutdown {}, bad_requests {}, internal_errors {}, log_records {}, \
         batches_applied {}, batches_deduped {}, poisoned_rejects {}, conn_stalled {}",
        report.served,
        report.shed,
        report.deadline_missed,
        report.rejected_shutdown,
        report.bad_requests,
        report.internal_errors,
        report.log_records,
        report.batches_applied,
        report.batches_deduped,
        report.poisoned_rejects,
        report.conn_stalled,
    );
    std::process::exit(0);
}
