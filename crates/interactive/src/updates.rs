//! Updates IU 1–8 (spec §4.3), delegating to the store's insert path.
//!
//! The parameter structs live in `snb-store` ([`snb_store::PersonInsert`]
//! etc.) because the store owns the write path; this module provides the
//! workload-facing names and the dispatch enum used by the driver.

use snb_core::datetime::DateTime;
use snb_core::SnbResult;
use snb_store::{CommentInsert, ForumInsert, PersonInsert, PostInsert, Store};

/// Any IU operation, driver-dispatchable.
#[derive(Clone, Debug)]
pub enum Update {
    /// IU 1 — add person.
    AddPerson(PersonInsert),
    /// IU 2 — add like to post.
    AddLikePost {
        /// Liker.
        person_id: u64,
        /// Liked post.
        post_id: u64,
        /// Like timestamp.
        creation_date: DateTime,
    },
    /// IU 3 — add like to comment.
    AddLikeComment {
        /// Liker.
        person_id: u64,
        /// Liked comment.
        comment_id: u64,
        /// Like timestamp.
        creation_date: DateTime,
    },
    /// IU 4 — add forum.
    AddForum(ForumInsert),
    /// IU 5 — add forum membership.
    AddForumMembership {
        /// Joining person.
        person_id: u64,
        /// Forum joined.
        forum_id: u64,
        /// Join timestamp.
        join_date: DateTime,
    },
    /// IU 6 — add post.
    AddPost(PostInsert),
    /// IU 7 — add comment.
    AddComment(CommentInsert),
    /// IU 8 — add friendship.
    AddFriendship {
        /// One endpoint.
        person1_id: u64,
        /// Other endpoint.
        person2_id: u64,
        /// Friendship timestamp.
        creation_date: DateTime,
    },
}

impl Update {
    /// The IU number (1–8).
    pub fn number(&self) -> u8 {
        match self {
            Update::AddPerson(_) => 1,
            Update::AddLikePost { .. } => 2,
            Update::AddLikeComment { .. } => 3,
            Update::AddForum(_) => 4,
            Update::AddForumMembership { .. } => 5,
            Update::AddPost(_) => 6,
            Update::AddComment(_) => 7,
            Update::AddFriendship { .. } => 8,
        }
    }

    /// Applies the update to a store.
    pub fn apply(&self, store: &mut Store) -> SnbResult<()> {
        match self {
            Update::AddPerson(p) => store.insert_person(p.clone()).map(|_| ()),
            Update::AddLikePost { person_id, post_id, creation_date } => {
                store.insert_like(*person_id, *post_id, *creation_date)
            }
            Update::AddLikeComment { person_id, comment_id, creation_date } => {
                store.insert_like(*person_id, *comment_id, *creation_date)
            }
            Update::AddForum(f) => store.insert_forum(f.clone()).map(|_| ()),
            Update::AddForumMembership { person_id, forum_id, join_date } => {
                store.insert_membership(*person_id, *forum_id, *join_date)
            }
            Update::AddPost(p) => store.insert_post(p.clone()).map(|_| ()),
            Update::AddComment(c) => store.insert_comment(c.clone()).map(|_| ()),
            Update::AddFriendship { person1_id, person2_id, creation_date } => {
                store.insert_knows(*person1_id, *person2_id, *creation_date)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::GeneratorConfig;
    use snb_store::store_for_config;

    fn fresh_store() -> Store {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 60;
        store_for_config(&c)
    }

    #[test]
    fn friendship_update_visible_to_is3() {
        let mut s = fresh_store();
        // Pick two persons that do not know each other.
        let (a, b) = {
            let mut found = None;
            'outer: for a in 0..s.persons.len() as u32 {
                for b in a + 1..s.persons.len() as u32 {
                    if !s.knows.contains(a, b) {
                        found = Some((s.persons.id[a as usize], s.persons.id[b as usize]));
                        break 'outer;
                    }
                }
            }
            found.expect("non-friends exist")
        };
        let before = crate::short::is3::run(&s, &crate::short::is3::Params { person_id: a });
        Update::AddFriendship { person1_id: a, person2_id: b, creation_date: DateTime(1_000) }
            .apply(&mut s)
            .unwrap();
        let after = crate::short::is3::run(&s, &crate::short::is3::Params { person_id: a });
        assert_eq!(after.len(), before.len() + 1);
        assert!(after.iter().any(|r| r.person_id == b));
    }

    #[test]
    fn post_then_like_then_is4() {
        let mut s = fresh_store();
        let author = s.persons.id[0];
        let forum = s.forums.id[0];
        let country = s.places.id[s.person_country(0) as usize];
        Update::AddPost(PostInsert {
            id: 7_000_000,
            image_file: String::new(),
            creation_date: DateTime(5_000),
            location_ip: "1.1.1.1".into(),
            browser_used: "Chrome".into(),
            language: "en".into(),
            content: "fresh post".into(),
            length: 10,
            author_person_id: author,
            forum_id: forum,
            country_id: country,
            tag_ids: vec![1],
        })
        .apply(&mut s)
        .unwrap();
        let rows = crate::short::is4::run(&s, &crate::short::is4::Params { message_id: 7_000_000 });
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].message_content, "fresh post");
        Update::AddLikePost {
            person_id: s.persons.id[1],
            post_id: 7_000_000,
            creation_date: DateTime(6_000),
        }
        .apply(&mut s)
        .unwrap();
        let m = s.message(7_000_000).unwrap();
        assert_eq!(s.message_likes.degree(m), 1);
    }

    #[test]
    fn numbers_match_spec() {
        let u = Update::AddFriendship { person1_id: 0, person2_id: 1, creation_date: DateTime(0) };
        assert_eq!(u.number(), 8);
        let u = Update::AddLikeComment { person_id: 0, comment_id: 1, creation_date: DateTime(0) };
        assert_eq!(u.number(), 3);
    }
}
