//! IC 3 — *Friends and friends of friends that have been to given
//! countries*.
//!
//! Persons within two hops of the start person who are foreign to both
//! countries X and Y and created messages in both within the period
//! `[start_date, start_date + duration_days)`. Sort: xCount desc, id
//! asc; limit 20.

use snb_engine::{QueryContext, TopK};
use snb_store::Store;

use crate::common::friends_within_2;

/// Parameters of IC 3.
#[derive(Clone, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Country X name.
    pub country_x: String,
    /// Country Y name.
    pub country_y: String,
    /// Period start.
    pub start_date: snb_core::Date,
    /// Period length in days (closed-open interval).
    pub duration_days: u32,
}

/// One result row of IC 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// First name.
    pub person_first_name: String,
    /// Last name.
    pub person_last_name: String,
    /// Messages from country X in the window.
    pub x_count: u64,
    /// Messages from country Y in the window.
    pub y_count: u64,
    /// `x_count + y_count`.
    pub count: u64,
}

const LIMIT: usize = 20;

/// Runs IC 3.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Runs IC 3 on an explicit execution context: each circle member's
/// message-window count is independent, so the circle fans out as
/// morsels with per-worker bounded heaps.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (Ok(start), Ok(cx), Ok(cy)) = (
        store.person(params.person_id),
        store.country_by_name(&params.country_x),
        store.country_by_name(&params.country_y),
    ) else {
        return Vec::new();
    };
    let lo = params.start_date.at_midnight();
    let hi = params.start_date.plus_days(params.duration_days as i32).at_midnight();
    let circle = friends_within_2(store, start);
    let tk: TopK<_, Row> = ctx.par_topk(circle.len(), LIMIT, |tk, range| {
        for &p in &circle[range] {
            let home = store.person_country(p);
            if home == cx || home == cy {
                continue; // only foreigners to both countries
            }
            let mut x = 0u64;
            let mut y = 0u64;
            for m in store.person_messages.targets_of(p) {
                let t = store.messages.creation_date[m as usize];
                if t < lo || t >= hi {
                    continue;
                }
                let c = store.messages.country[m as usize];
                if c == cx {
                    x += 1;
                } else if c == cy {
                    y += 1;
                }
            }
            if x == 0 || y == 0 {
                continue;
            }
            let row = Row {
                person_id: store.persons.id[p as usize],
                person_first_name: store.persons.first_name[p as usize].to_string(),
                person_last_name: store.persons.last_name[p as usize].to_string(),
                x_count: x,
                y_count: y,
                count: x + y,
            };
            tk.push((std::cmp::Reverse(x), row.person_id), row);
        }
    });
    tk.into_sorted()
}

/// Naive reference: distance recomputed per person, counts via full
/// message scan.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    use snb_store::Ix;
    let (Ok(start), Ok(cx), Ok(cy)) = (
        store.person(params.person_id),
        store.country_by_name(&params.country_x),
        store.country_by_name(&params.country_y),
    ) else {
        return Vec::new();
    };
    let lo = params.start_date.at_midnight();
    let hi = params.start_date.plus_days(params.duration_days as i32).at_midnight();
    let mut items = Vec::new();
    for p in 0..store.persons.len() as Ix {
        if p == start {
            continue;
        }
        let d = snb_engine::traverse::shortest_path_len(
            store,
            snb_engine::QueryMetrics::sink(),
            start,
            p,
        );
        if !(1..=2).contains(&d) {
            continue;
        }
        let home = store.person_country(p);
        if home == cx || home == cy {
            continue;
        }
        let mut x = 0u64;
        let mut y = 0u64;
        for m in 0..store.messages.len() as Ix {
            if store.messages.creator[m as usize] != p {
                continue;
            }
            let t = store.messages.creation_date[m as usize];
            if t < lo || t >= hi {
                continue;
            }
            let c = store.messages.country[m as usize];
            if c == cx {
                x += 1;
            } else if c == cy {
                y += 1;
            }
        }
        if x == 0 || y == 0 {
            continue;
        }
        let row = Row {
            person_id: store.persons.id[p as usize],
            person_first_name: store.persons.first_name[p as usize].to_string(),
            person_last_name: store.persons.last_name[p as usize].to_string(),
            x_count: x,
            y_count: y,
            count: x + y,
        };
        items.push(((std::cmp::Reverse(x), row.person_id), row));
    }
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};
    use snb_core::Date;

    fn params() -> Params {
        Params {
            person_id: hub_person(),
            country_x: "China".into(),
            country_y: "India".into(),
            start_date: Date::from_ymd(2010, 1, 1),
            duration_days: 1096,
        }
    }

    #[test]
    fn rows_are_foreign_with_both_counts() {
        let s = store();
        let cx = s.country_by_name("China").unwrap();
        let cy = s.country_by_name("India").unwrap();
        for r in run(s, &params()) {
            let p = s.person(r.person_id).unwrap();
            let home = s.person_country(p);
            assert_ne!(home, cx);
            assert_ne!(home, cy);
            assert!(r.x_count > 0 && r.y_count > 0);
            assert_eq!(r.count, r.x_count + r.y_count);
        }
    }

    #[test]
    fn sorted_by_xcount() {
        let s = store();
        let rows = run(s, &params());
        for w in rows.windows(2) {
            assert!(
                w[0].x_count > w[1].x_count
                    || (w[0].x_count == w[1].x_count && w[0].person_id < w[1].person_id)
            );
        }
    }

    #[test]
    fn zero_duration_empty() {
        let s = store();
        let mut p = params();
        p.duration_days = 0;
        assert!(run(s, &p).is_empty());
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = params();
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
