#![warn(missing_docs)]

//! # snb-interactive
//!
//! The LDBC SNB **Interactive workload** (spec chapter 4): complex
//! reads IC 1–14, short reads IS 1–7, and updates IU 1–8.
//!
//! Complex reads traverse the two-hop neighbourhood of a start person
//! and are sublinear in dataset size; short reads are single-entity
//! lookups the driver chains after complex reads; updates insert single
//! nodes or edges through the store's overflow write path.

pub mod common;
pub mod ic01;
pub mod ic02;
pub mod ic03;
pub mod ic04;
pub mod ic05;
pub mod ic06;
pub mod ic07;
pub mod ic08;
pub mod ic09;
pub mod ic10;
pub mod ic11;
pub mod ic12;
pub mod ic13;
pub mod ic14;
pub mod short;
pub mod updates;

use snb_engine::QueryContext;
use snb_store::Store;

pub use updates::Update;

/// A parameter binding for any complex read — the uniform currency for
/// the driver and benches.
#[derive(Clone, Debug)]
pub enum IcParams {
    /// IC 1 parameters.
    Q1(ic01::Params),
    /// IC 2 parameters.
    Q2(ic02::Params),
    /// IC 3 parameters.
    Q3(ic03::Params),
    /// IC 4 parameters.
    Q4(ic04::Params),
    /// IC 5 parameters.
    Q5(ic05::Params),
    /// IC 6 parameters.
    Q6(ic06::Params),
    /// IC 7 parameters.
    Q7(ic07::Params),
    /// IC 8 parameters.
    Q8(ic08::Params),
    /// IC 9 parameters.
    Q9(ic09::Params),
    /// IC 10 parameters.
    Q10(ic10::Params),
    /// IC 11 parameters.
    Q11(ic11::Params),
    /// IC 12 parameters.
    Q12(ic12::Params),
    /// IC 13 parameters.
    Q13(ic13::Params),
    /// IC 14 parameters.
    Q14(ic14::Params),
}

impl IcParams {
    /// The query number (1–14).
    pub fn query(&self) -> u8 {
        match self {
            IcParams::Q1(_) => 1,
            IcParams::Q2(_) => 2,
            IcParams::Q3(_) => 3,
            IcParams::Q4(_) => 4,
            IcParams::Q5(_) => 5,
            IcParams::Q6(_) => 6,
            IcParams::Q7(_) => 7,
            IcParams::Q8(_) => 8,
            IcParams::Q9(_) => 9,
            IcParams::Q10(_) => 10,
            IcParams::Q11(_) => 11,
            IcParams::Q12(_) => 12,
            IcParams::Q13(_) => 13,
            IcParams::Q14(_) => 14,
        }
    }
}

/// A parameter binding for any short read — the uniform currency for
/// the driver, the service tier, and the benches. Short reads are
/// `Copy`-cheap point lookups (IS 1–3 key on a person, IS 4–7 on a
/// message), which is what makes them the latency-critical lane of the
/// mixed workload.
#[derive(Clone, Copy, Debug)]
pub enum IsParams {
    /// IS 1 parameters.
    Q1(short::is1::Params),
    /// IS 2 parameters.
    Q2(short::is2::Params),
    /// IS 3 parameters.
    Q3(short::is3::Params),
    /// IS 4 parameters.
    Q4(short::is4::Params),
    /// IS 5 parameters.
    Q5(short::is5::Params),
    /// IS 6 parameters.
    Q6(short::is6::Params),
    /// IS 7 parameters.
    Q7(short::is7::Params),
}

impl IsParams {
    /// The query number (1–7).
    pub fn query(&self) -> u8 {
        match self {
            IsParams::Q1(_) => 1,
            IsParams::Q2(_) => 2,
            IsParams::Q3(_) => 3,
            IsParams::Q4(_) => 4,
            IsParams::Q5(_) => 5,
            IsParams::Q6(_) => 6,
            IsParams::Q7(_) => 7,
        }
    }

    /// Builds the binding from its wire form: query number + the single
    /// `u64` key (person id for IS 1–3, message id for IS 4–7). Returns
    /// `None` for an unknown query number.
    pub fn from_parts(query: u8, id: u64) -> Option<IsParams> {
        Some(match query {
            1 => IsParams::Q1(short::is1::Params { person_id: id }),
            2 => IsParams::Q2(short::is2::Params { person_id: id }),
            3 => IsParams::Q3(short::is3::Params { person_id: id }),
            4 => IsParams::Q4(short::is4::Params { message_id: id }),
            5 => IsParams::Q5(short::is5::Params { message_id: id }),
            6 => IsParams::Q6(short::is6::Params { message_id: id }),
            7 => IsParams::Q7(short::is7::Params { message_id: id }),
            _ => return None,
        })
    }

    /// The single `u64` key of the binding — person id for IS 1–3,
    /// message id for IS 4–7. Exact inverse of [`IsParams::from_parts`].
    pub fn key(&self) -> u64 {
        match self {
            IsParams::Q1(p) => p.person_id,
            IsParams::Q2(p) => p.person_id,
            IsParams::Q3(p) => p.person_id,
            IsParams::Q4(p) => p.message_id,
            IsParams::Q5(p) => p.message_id,
            IsParams::Q6(p) => p.message_id,
            IsParams::Q7(p) => p.message_id,
        }
    }
}

/// Runs a short read, returning its row count. Short reads never
/// parallelize — they are point lookups, so a context would only add
/// overhead.
pub fn run_short(store: &Store, params: &IsParams) -> usize {
    match params {
        IsParams::Q1(p) => short::is1::run(store, p).len(),
        IsParams::Q2(p) => short::is2::run(store, p).len(),
        IsParams::Q3(p) => short::is3::run(store, p).len(),
        IsParams::Q4(p) => short::is4::run(store, p).len(),
        IsParams::Q5(p) => short::is5::run(store, p).len(),
        IsParams::Q6(p) => short::is6::run(store, p).len(),
        IsParams::Q7(p) => short::is7::run(store, p).len(),
    }
}

/// Runs a short read against the store snapshot bound to `ctx` (see
/// `snb_bi::run_bound`). Panics if the context has no bound snapshot.
pub fn run_short_bound(ctx: &QueryContext, params: &IsParams) -> usize {
    let snapshot =
        ctx.snapshot().expect("run_short_bound requires a snapshot-bound context").clone();
    run_short(&snapshot, params)
}

/// Runs a complex read, returning its row count (the driver's
/// type-erased result).
pub fn run_complex(store: &Store, params: &IcParams) -> usize {
    run_complex_with(store, QueryContext::global(), params)
}

/// Runs a complex read against the store snapshot bound to `ctx` (see
/// `snb_bi::run_bound`). Panics if the context has no bound snapshot.
pub fn run_complex_bound(ctx: &QueryContext, params: &IcParams) -> usize {
    let snapshot =
        ctx.snapshot().expect("run_complex_bound requires a snapshot-bound context").clone();
    run_complex_with(&snapshot, ctx, params)
}

/// Runs a complex read on an explicit execution context. The scan-heavy
/// queries (IC 2, 3, 6, 9) parallelize over it; the point lookups stay
/// sequential regardless of the context's thread count.
pub fn run_complex_with(store: &Store, ctx: &QueryContext, params: &IcParams) -> usize {
    match params {
        IcParams::Q1(p) => ic01::run(store, p).len(),
        IcParams::Q2(p) => ic02::run_ctx(store, ctx, p).len(),
        IcParams::Q3(p) => ic03::run_ctx(store, ctx, p).len(),
        IcParams::Q4(p) => ic04::run(store, p).len(),
        IcParams::Q5(p) => ic05::run(store, p).len(),
        IcParams::Q6(p) => ic06::run_ctx(store, ctx, p).len(),
        IcParams::Q7(p) => ic07::run(store, p).len(),
        IcParams::Q8(p) => ic08::run(store, p).len(),
        IcParams::Q9(p) => ic09::run_ctx(store, ctx, p).len(),
        IcParams::Q10(p) => ic10::run(store, p).len(),
        IcParams::Q11(p) => ic11::run(store, p).len(),
        IcParams::Q12(p) => ic12::run(store, p).len(),
        IcParams::Q13(p) => ic13::run(store, p).len(),
        IcParams::Q14(p) => ic14::run(store, p).len(),
    }
}

/// Validation mode for complex reads: executes both the optimized and
/// the independent naive engine and errors unless the full row
/// sequences match exactly (order included). Returns the row count.
pub fn validate_complex(store: &Store, params: &IcParams) -> snb_core::SnbResult<usize> {
    fn check<T: std::fmt::Debug + PartialEq>(
        q: u8,
        optimized: Vec<T>,
        naive: Vec<T>,
    ) -> snb_core::SnbResult<usize> {
        if optimized != naive {
            return Err(snb_core::SnbError::Validation {
                query: format!("IC {q}"),
                detail: format!(
                    "optimized ({} rows) != naive ({} rows): {optimized:?} vs {naive:?}",
                    optimized.len(),
                    naive.len()
                ),
            });
        }
        Ok(optimized.len())
    }
    match params {
        IcParams::Q1(p) => check(1, ic01::run(store, p), ic01::run_naive(store, p)),
        IcParams::Q2(p) => check(2, ic02::run(store, p), ic02::run_naive(store, p)),
        IcParams::Q3(p) => check(3, ic03::run(store, p), ic03::run_naive(store, p)),
        IcParams::Q4(p) => check(4, ic04::run(store, p), ic04::run_naive(store, p)),
        IcParams::Q5(p) => check(5, ic05::run(store, p), ic05::run_naive(store, p)),
        IcParams::Q6(p) => check(6, ic06::run(store, p), ic06::run_naive(store, p)),
        IcParams::Q7(p) => check(7, ic07::run(store, p), ic07::run_naive(store, p)),
        IcParams::Q8(p) => check(8, ic08::run(store, p), ic08::run_naive(store, p)),
        IcParams::Q9(p) => check(9, ic09::run(store, p), ic09::run_naive(store, p)),
        IcParams::Q10(p) => check(10, ic10::run(store, p), ic10::run_naive(store, p)),
        IcParams::Q11(p) => check(11, ic11::run(store, p), ic11::run_naive(store, p)),
        IcParams::Q12(p) => check(12, ic12::run(store, p), ic12::run_naive(store, p)),
        IcParams::Q13(p) => check(13, ic13::run(store, p), ic13::run_naive(store, p)),
        IcParams::Q14(p) => check(14, ic14::run(store, p), ic14::run_naive(store, p)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_numbers() {
        assert_eq!(IcParams::Q13(ic13::Params { person1_id: 0, person2_id: 1 }).query(), 13);
        assert_eq!(IcParams::Q7(ic07::Params { person_id: 0 }).query(), 7);
    }

    #[test]
    fn is_params_wire_parts_roundtrip() {
        for q in 1u8..=7 {
            let p = IsParams::from_parts(q, 0xfeed + q as u64).expect("valid query");
            assert_eq!(p.query(), q);
            assert_eq!(p.key(), 0xfeed + q as u64);
        }
        assert!(IsParams::from_parts(0, 1).is_none());
        assert!(IsParams::from_parts(8, 1).is_none());
    }
}
