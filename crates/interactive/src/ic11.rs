//! IC 11 — *Job referral*.
//!
//! Friends or friends-of-friends of the start person who work at a
//! Company in a given Country, having started before a given year.
//! Sort: workFrom asc, person id asc, company name desc; limit 10.
//! (The query body is a figure placeholder in the supplied extraction;
//! semantics follow the official definition.)

use snb_core::model::OrganisationKind;
use snb_engine::TopK;
use snb_store::Store;

use crate::common::friends_within_2;

/// Parameters of IC 11.
#[derive(Clone, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Country name.
    pub country: String,
    /// Exclusive upper bound on `workFrom`.
    pub work_from_year: i32,
}

/// One result row of IC 11.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Person id.
    pub person_id: u64,
    /// First name.
    pub person_first_name: String,
    /// Last name.
    pub person_last_name: String,
    /// Company name.
    pub organization_name: String,
    /// Year the person started there.
    pub organization_work_from_year: i32,
}

const LIMIT: usize = 10;

/// Runs IC 11.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(start), Ok(country)) =
        (store.person(params.person_id), store.country_by_name(&params.country))
    else {
        return Vec::new();
    };
    let mut tk = TopK::new(LIMIT);
    for p in friends_within_2(store, start) {
        for (org, from) in store.person_work.neighbors(p) {
            if from >= params.work_from_year {
                continue;
            }
            if store.organisations.kind[org as usize] != OrganisationKind::Company
                || store.organisations.place[org as usize] != country
            {
                continue;
            }
            let row = Row {
                person_id: store.persons.id[p as usize],
                person_first_name: store.persons.first_name[p as usize].to_string(),
                person_last_name: store.persons.last_name[p as usize].to_string(),
                organization_name: store.organisations.name[org as usize].to_string(),
                organization_work_from_year: from,
            };
            let key = (from, row.person_id, std::cmp::Reverse(row.organization_name.clone()));
            tk.push(key, row);
        }
    }
    tk.into_sorted()
}

/// Naive reference: per-person distance recomputation.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    use snb_store::Ix;
    let (Ok(start), Ok(country)) =
        (store.person(params.person_id), store.country_by_name(&params.country))
    else {
        return Vec::new();
    };
    let mut items = Vec::new();
    for p in 0..store.persons.len() as Ix {
        if p == start {
            continue;
        }
        let d = snb_engine::traverse::shortest_path_len(
            store,
            snb_engine::QueryMetrics::sink(),
            start,
            p,
        );
        if !(1..=2).contains(&d) {
            continue;
        }
        for (org, from) in store.person_work.neighbors(p) {
            if from >= params.work_from_year
                || store.organisations.kind[org as usize] != OrganisationKind::Company
                || store.organisations.place[org as usize] != country
            {
                continue;
            }
            let row = Row {
                person_id: store.persons.id[p as usize],
                person_first_name: store.persons.first_name[p as usize].to_string(),
                person_last_name: store.persons.last_name[p as usize].to_string(),
                organization_name: store.organisations.name[org as usize].to_string(),
                organization_work_from_year: from,
            };
            let key = (from, row.person_id, std::cmp::Reverse(row.organization_name.clone()));
            items.push((key, row));
        }
    }
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};

    fn params() -> Params {
        Params { person_id: hub_person(), country: "China".into(), work_from_year: 2025 }
    }

    #[test]
    fn companies_in_country_before_year() {
        let s = store();
        let country = s.country_by_name("China").unwrap();
        for r in run(s, &params()) {
            assert!(r.organization_work_from_year < 2025);
            assert!(r.organization_name.starts_with("China_"));
            let org = (0..s.organisations.len() as u32)
                .find(|&o| s.organisations.name[o as usize] == r.organization_name)
                .unwrap();
            assert_eq!(s.organisations.place[org as usize], country);
        }
    }

    #[test]
    fn sorted_by_year_then_id_then_company_desc() {
        let s = store();
        let rows = run(s, &params());
        for w in rows.windows(2) {
            let ka = (
                w[0].organization_work_from_year,
                w[0].person_id,
                std::cmp::Reverse(w[0].organization_name.clone()),
            );
            let kb = (
                w[1].organization_work_from_year,
                w[1].person_id,
                std::cmp::Reverse(w[1].organization_name.clone()),
            );
            assert!(ka <= kb);
        }
        assert!(rows.len() <= 10);
    }

    #[test]
    fn tight_year_bound_filters_all() {
        let s = store();
        let mut p = params();
        p.work_from_year = 1900;
        assert!(run(s, &p).is_empty());
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = params();
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
