//! IC 8 — *Recent replies*.
//!
//! The most recent Comments that directly reply to any of the start
//! person's Messages. Sort: comment creation desc, comment id asc;
//! limit 20.

use snb_engine::TopK;
use snb_store::Store;

/// Parameters of IC 8.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
}

/// One result row of IC 8.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Replier id.
    pub person_id: u64,
    /// Replier first name.
    pub person_first_name: String,
    /// Replier last name.
    pub person_last_name: String,
    /// Comment creation timestamp.
    pub comment_creation_date: snb_core::DateTime,
    /// Comment id.
    pub comment_id: u64,
    /// Comment content.
    pub comment_content: String,
}

const LIMIT: usize = 20;

/// Runs IC 8.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let mut tk = TopK::new(LIMIT);
    for m in store.person_messages.targets_of(start) {
        for c in store.message_replies.targets_of(m) {
            let date = store.messages.creation_date[c as usize];
            let cid = store.messages.id[c as usize];
            let key = (std::cmp::Reverse(date), cid);
            if !tk.would_accept(&key) {
                continue;
            }
            let replier = store.messages.creator[c as usize] as usize;
            tk.push(
                key,
                Row {
                    person_id: store.persons.id[replier],
                    person_first_name: store.persons.first_name[replier].to_string(),
                    person_last_name: store.persons.last_name[replier].to_string(),
                    comment_creation_date: date,
                    comment_id: cid,
                    comment_content: store.messages.content[c as usize].to_string(),
                },
            );
        }
    }
    tk.into_sorted()
}

/// Naive reference: full comment scan testing the parent's creator.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    use snb_store::{Ix, NONE};
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let mut items = Vec::new();
    for c in 0..store.messages.len() as Ix {
        let parent = store.messages.reply_of[c as usize];
        if parent == NONE || store.messages.creator[parent as usize] != start {
            continue;
        }
        let replier = store.messages.creator[c as usize] as usize;
        let row = Row {
            person_id: store.persons.id[replier],
            person_first_name: store.persons.first_name[replier].to_string(),
            person_last_name: store.persons.last_name[replier].to_string(),
            comment_creation_date: store.messages.creation_date[c as usize],
            comment_id: store.messages.id[c as usize],
            comment_content: store.messages.content[c as usize].to_string(),
        };
        items.push(((std::cmp::Reverse(row.comment_creation_date), row.comment_id), row));
    }
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::store;
    use snb_store::Ix;

    fn replied_person(s: &Store) -> u64 {
        let p = (0..s.persons.len() as Ix)
            .max_by_key(|&p| {
                s.person_messages.targets_of(p).map(|m| s.message_replies.degree(m)).sum::<usize>()
            })
            .unwrap();
        s.persons.id[p as usize]
    }

    #[test]
    fn replies_target_start_persons_messages() {
        let s = store();
        let pid = replied_person(s);
        let start = s.person(pid).unwrap();
        let rows = run(s, &Params { person_id: pid });
        assert!(!rows.is_empty());
        for r in &rows {
            let c = s.message(r.comment_id).unwrap();
            let parent = s.messages.reply_of[c as usize];
            assert_ne!(parent, snb_store::NONE);
            assert_eq!(s.messages.creator[parent as usize], start);
        }
    }

    #[test]
    fn sorted_and_limited() {
        let s = store();
        let rows = run(s, &Params { person_id: replied_person(s) });
        assert!(rows.len() <= 20);
        for w in rows.windows(2) {
            assert!(
                w[0].comment_creation_date > w[1].comment_creation_date
                    || (w[0].comment_creation_date == w[1].comment_creation_date
                        && w[0].comment_id < w[1].comment_id)
            );
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = Params { person_id: replied_person(s) };
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
