//! IC 5 — *New groups*.
//!
//! Forums that the start person's friends or friends-of-friends joined
//! after a given date; per forum, count the Posts created in it by
//! those late-joining friends. Sort: postCount desc, forum id asc;
//! limit 20.

use rustc_hash::{FxHashMap, FxHashSet};
use snb_engine::TopK;
use snb_store::{Ix, Store};

use crate::common::friends_within_2;

/// Parameters of IC 5.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Memberships strictly after this date qualify.
    pub min_date: snb_core::Date,
}

/// One result row of IC 5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Forum title.
    pub forum_title: String,
    /// Posts by qualifying friends in the forum.
    pub post_count: u64,
}

const LIMIT: usize = 20;

/// Runs IC 5.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let cutoff = params.min_date.at_midnight();
    let circle: FxHashSet<Ix> = friends_within_2(store, start).into_iter().collect();
    // Forum -> set of circle members who joined after the date.
    let mut late_members: FxHashMap<Ix, FxHashSet<Ix>> = FxHashMap::default();
    for &p in &circle {
        for (f, join) in store.member_forum.neighbors(p) {
            if join > cutoff {
                late_members.entry(f).or_default().insert(p);
            }
        }
    }
    let mut tk = TopK::new(LIMIT);
    for (f, members) in late_members {
        let count = store
            .forum_posts
            .targets_of(f)
            .filter(|&post| members.contains(&store.messages.creator[post as usize]))
            .count() as u64;
        let row = Row { forum_title: store.forums.title[f as usize].to_string(), post_count: count };
        tk.push((std::cmp::Reverse(count), store.forums.id[f as usize]), row);
    }
    tk.into_sorted()
}

/// Naive reference: forum-major scan of memberships and a full post
/// scan per forum.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let cutoff = params.min_date.at_midnight();
    let circle: FxHashSet<Ix> = friends_within_2(store, start).into_iter().collect();
    let mut items = Vec::new();
    for f in 0..store.forums.len() as Ix {
        let members: FxHashSet<Ix> = store
            .forum_member
            .neighbors(f)
            .filter(|&(p, join)| circle.contains(&p) && join > cutoff)
            .map(|(p, _)| p)
            .collect();
        if members.is_empty() {
            continue;
        }
        let count = (0..store.messages.len() as Ix)
            .filter(|&m| {
                store.messages.is_post(m)
                    && store.messages.forum[m as usize] == f
                    && members.contains(&store.messages.creator[m as usize])
            })
            .count() as u64;
        let row = Row { forum_title: store.forums.title[f as usize].to_string(), post_count: count };
        items.push(((std::cmp::Reverse(count), store.forums.id[f as usize]), row));
    }
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};
    use snb_core::Date;

    fn params() -> Params {
        Params { person_id: hub_person(), min_date: Date::from_ymd(2011, 1, 1) }
    }

    #[test]
    fn returns_rows_sorted_and_limited() {
        let s = store();
        let rows = run(s, &params());
        assert!(!rows.is_empty());
        assert!(rows.len() <= 20);
        for w in rows.windows(2) {
            assert!(w[0].post_count >= w[1].post_count);
        }
    }

    #[test]
    fn later_min_date_never_grows_forums() {
        let s = store();
        let early =
            run(s, &Params { person_id: hub_person(), min_date: Date::from_ymd(2010, 1, 1) });
        let late =
            run(s, &Params { person_id: hub_person(), min_date: Date::from_ymd(2012, 10, 1) });
        // The qualifying membership set shrinks with a later date; at
        // full result materialisation (< limit) the forum count shrinks
        // too. With a limit both are capped, so compare only when under.
        if early.len() < 20 && late.len() < 20 {
            assert!(late.len() <= early.len());
        }
    }

    #[test]
    fn unknown_person_yields_empty() {
        let s = store();
        assert!(run(s, &Params { person_id: 42_424_242, min_date: Date::from_ymd(2011, 1, 1) })
            .is_empty());
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = params();
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
