//! IC 2 — *Recent messages by your friends*.
//!
//! Messages created by direct friends before a given date (exclusive of
//! that day). Sort: creation date descending, message id ascending;
//! limit 20.

use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::{content_or_image, friends};

/// Parameters of IC 2.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Exclusive upper bound day.
    pub max_date: snb_core::Date,
}

/// One result row of IC 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Friend id.
    pub person_id: u64,
    /// Friend first name.
    pub person_first_name: String,
    /// Friend last name.
    pub person_last_name: String,
    /// Message id.
    pub message_id: u64,
    /// Message content or image file.
    pub message_content: String,
    /// Message creation timestamp.
    pub message_creation_date: snb_core::DateTime,
}

const LIMIT: usize = 20;

/// Runs IC 2.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Runs IC 2 on an explicit execution context: friends fan out as
/// morsels with per-worker bounded heaps; the (date desc, id asc) key
/// is total, so the merged top-20 is thread-count independent.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let cutoff = params.max_date.at_midnight();
    let friends = friends(store, start);
    let tk: TopK<_, Row> = ctx.par_topk(friends.len(), LIMIT, |tk, range| {
        for &f in &friends[range] {
            for m in store.person_messages.targets_of(f) {
                let t = store.messages.creation_date[m as usize];
                if t >= cutoff {
                    continue;
                }
                let key = (std::cmp::Reverse(t), store.messages.id[m as usize]);
                if !tk.would_accept(&key) {
                    continue;
                }
                tk.push(key, to_row(store, f, m));
            }
        }
    });
    tk.into_sorted()
}

fn to_row(store: &Store, f: Ix, m: Ix) -> Row {
    Row {
        person_id: store.persons.id[f as usize],
        person_first_name: store.persons.first_name[f as usize].to_string(),
        person_last_name: store.persons.last_name[f as usize].to_string(),
        message_id: store.messages.id[m as usize],
        message_content: content_or_image(store, m),
        message_creation_date: store.messages.creation_date[m as usize],
    }
}

/// Naive reference: full message-table scan with a friend-set test.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let cutoff = params.max_date.at_midnight();
    let friend_set: rustc_hash::FxHashSet<Ix> = store.knows.targets_of(start).collect();
    let mut items = Vec::new();
    for m in 0..store.messages.len() as Ix {
        let f = store.messages.creator[m as usize];
        if !friend_set.contains(&f) || store.messages.creation_date[m as usize] >= cutoff {
            continue;
        }
        let row = to_row(store, f, m);
        items.push(((std::cmp::Reverse(row.message_creation_date), row.message_id), row));
    }
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};
    use snb_core::Date;

    fn params() -> Params {
        Params { person_id: hub_person(), max_date: Date::from_ymd(2012, 6, 1) }
    }

    #[test]
    fn messages_are_by_friends_and_before_date() {
        let s = store();
        let start = s.person(hub_person()).unwrap();
        let friends: Vec<_> = s.knows.targets_of(start).collect();
        for r in run(s, &params()) {
            let author = s.person(r.person_id).unwrap();
            assert!(friends.contains(&author));
            assert!(r.message_creation_date < Date::from_ymd(2012, 6, 1).at_midnight());
        }
    }

    #[test]
    fn newest_first_limit_20() {
        let s = store();
        let rows = run(s, &params());
        assert!(!rows.is_empty());
        assert!(rows.len() <= 20);
        for w in rows.windows(2) {
            assert!(
                w[0].message_creation_date > w[1].message_creation_date
                    || (w[0].message_creation_date == w[1].message_creation_date
                        && w[0].message_id < w[1].message_id)
            );
        }
    }

    #[test]
    fn matches_exhaustive_recomputation() {
        let s = store();
        let p = params();
        let start = s.person(p.person_id).unwrap();
        let cutoff = p.max_date.at_midnight();
        let friends: std::collections::HashSet<_> = s.knows.targets_of(start).collect();
        let mut all: Vec<(std::cmp::Reverse<snb_core::DateTime>, u64)> = (0..s.messages.len()
            as Ix)
            .filter(|&m| {
                friends.contains(&s.messages.creator[m as usize])
                    && s.messages.creation_date[m as usize] < cutoff
            })
            .map(|m| {
                (std::cmp::Reverse(s.messages.creation_date[m as usize]), s.messages.id[m as usize])
            })
            .collect();
        all.sort();
        all.truncate(20);
        let got: Vec<u64> = run(s, &p).into_iter().map(|r| r.message_id).collect();
        let want: Vec<u64> = all.into_iter().map(|(_, id)| id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = params();
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
