//! Short reads IS 1–7 (spec §4.2): single-entity lookups and one-hop
//! expansions, issued by the driver between complex reads.

use snb_engine::TopK;
use snb_store::{Store, NONE};

use crate::common::content_or_image;

/// IS 1 — profile of a person.
pub mod is1 {
    use super::*;

    /// Parameters.
    #[derive(Clone, Copy, Debug)]
    pub struct Params {
        /// Person raw id.
        pub person_id: u64,
    }

    /// Result row.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Row {
        /// First name.
        pub first_name: String,
        /// Last name.
        pub last_name: String,
        /// Birthday.
        pub birthday: snb_core::Date,
        /// Registration IP.
        pub location_ip: String,
        /// Browser used.
        pub browser_used: String,
        /// Home city raw id.
        pub city_id: u64,
        /// Gender.
        pub gender: String,
        /// Profile creation timestamp.
        pub creation_date: snb_core::DateTime,
    }

    /// Runs IS 1.
    pub fn run(store: &Store, params: &Params) -> Vec<Row> {
        let Ok(p) = store.person(params.person_id) else { return Vec::new() };
        let i = p as usize;
        vec![Row {
            first_name: store.persons.first_name[i].to_string(),
            last_name: store.persons.last_name[i].to_string(),
            birthday: store.persons.birthday[i],
            location_ip: store.persons.location_ip[i].to_string(),
            browser_used: store.persons.browser[i].to_string(),
            city_id: store.places.id[store.persons.city[i] as usize],
            gender: store.persons.gender[i].as_str().to_string(),
            creation_date: store.persons.creation_date[i],
        }]
    }
}

/// IS 2 — the person's 10 most recent messages, each with its thread's
/// original post and that post's author.
pub mod is2 {
    use super::*;

    /// Parameters.
    #[derive(Clone, Copy, Debug)]
    pub struct Params {
        /// Person raw id.
        pub person_id: u64,
    }

    /// Result row.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Row {
        /// Message id.
        pub message_id: u64,
        /// Content or image file.
        pub message_content: String,
        /// Message creation timestamp.
        pub message_creation_date: snb_core::DateTime,
        /// Root post id.
        pub original_post_id: u64,
        /// Root post author id.
        pub original_post_author_id: u64,
        /// Root post author first name.
        pub original_post_author_first_name: String,
        /// Root post author last name.
        pub original_post_author_last_name: String,
    }

    const LIMIT: usize = 10;

    /// Runs IS 2.
    pub fn run(store: &Store, params: &Params) -> Vec<Row> {
        let Ok(p) = store.person(params.person_id) else { return Vec::new() };
        let mut tk = TopK::new(LIMIT);
        for m in store.person_messages.targets_of(p) {
            let t = store.messages.creation_date[m as usize];
            let id = store.messages.id[m as usize];
            // Sort: creationDate desc, id desc (spec IS 2).
            let key = (std::cmp::Reverse(t), std::cmp::Reverse(id));
            if !tk.would_accept(&key) {
                continue;
            }
            let root = store.messages.root_post[m as usize];
            let author = store.messages.creator[root as usize] as usize;
            tk.push(
                key,
                Row {
                    message_id: id,
                    message_content: content_or_image(store, m),
                    message_creation_date: t,
                    original_post_id: store.messages.id[root as usize],
                    original_post_author_id: store.persons.id[author],
                    original_post_author_first_name: store.persons.first_name[author].to_string(),
                    original_post_author_last_name: store.persons.last_name[author].to_string(),
                },
            );
        }
        tk.into_sorted()
    }
}

/// IS 3 — friends of a person with friendship dates.
pub mod is3 {
    use super::*;

    /// Parameters.
    #[derive(Clone, Copy, Debug)]
    pub struct Params {
        /// Person raw id.
        pub person_id: u64,
    }

    /// Result row.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Row {
        /// Friend id.
        pub person_id: u64,
        /// First name.
        pub first_name: String,
        /// Last name.
        pub last_name: String,
        /// When the friendship was established.
        pub friendship_creation_date: snb_core::DateTime,
    }

    /// Runs IS 3 (sort: friendship date desc, friend id asc; no limit).
    pub fn run(store: &Store, params: &Params) -> Vec<Row> {
        let Ok(p) = store.person(params.person_id) else { return Vec::new() };
        let mut rows: Vec<Row> = store
            .knows
            .neighbors(p)
            .map(|(f, d)| Row {
                person_id: store.persons.id[f as usize],
                first_name: store.persons.first_name[f as usize].to_string(),
                last_name: store.persons.last_name[f as usize].to_string(),
                friendship_creation_date: d,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.friendship_creation_date
                .cmp(&a.friendship_creation_date)
                .then(a.person_id.cmp(&b.person_id))
        });
        rows
    }
}

/// IS 4 — content of a message.
pub mod is4 {
    use super::*;

    /// Parameters.
    #[derive(Clone, Copy, Debug)]
    pub struct Params {
        /// Message raw id.
        pub message_id: u64,
    }

    /// Result row.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Row {
        /// Creation timestamp.
        pub message_creation_date: snb_core::DateTime,
        /// Content or image file.
        pub message_content: String,
    }

    /// Runs IS 4.
    pub fn run(store: &Store, params: &Params) -> Vec<Row> {
        let Ok(m) = store.message(params.message_id) else { return Vec::new() };
        vec![Row {
            message_creation_date: store.messages.creation_date[m as usize],
            message_content: content_or_image(store, m),
        }]
    }
}

/// IS 5 — creator of a message.
pub mod is5 {
    use super::*;

    /// Parameters.
    #[derive(Clone, Copy, Debug)]
    pub struct Params {
        /// Message raw id.
        pub message_id: u64,
    }

    /// Result row.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Row {
        /// Author id.
        pub person_id: u64,
        /// First name.
        pub first_name: String,
        /// Last name.
        pub last_name: String,
    }

    /// Runs IS 5.
    pub fn run(store: &Store, params: &Params) -> Vec<Row> {
        let Ok(m) = store.message(params.message_id) else { return Vec::new() };
        let p = store.messages.creator[m as usize] as usize;
        vec![Row {
            person_id: store.persons.id[p],
            first_name: store.persons.first_name[p].to_string(),
            last_name: store.persons.last_name[p].to_string(),
        }]
    }
}

/// IS 6 — the forum of a message's thread and its moderator.
pub mod is6 {
    use super::*;

    /// Parameters.
    #[derive(Clone, Copy, Debug)]
    pub struct Params {
        /// Message raw id.
        pub message_id: u64,
    }

    /// Result row.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Row {
        /// Forum id.
        pub forum_id: u64,
        /// Forum title.
        pub forum_title: String,
        /// Moderator id.
        pub moderator_id: u64,
        /// Moderator first name.
        pub moderator_first_name: String,
        /// Moderator last name.
        pub moderator_last_name: String,
    }

    /// Runs IS 6.
    pub fn run(store: &Store, params: &Params) -> Vec<Row> {
        let Ok(m) = store.message(params.message_id) else { return Vec::new() };
        let forum = store.thread_forum(m);
        if forum == NONE {
            return Vec::new();
        }
        let moderator = store.forums.moderator[forum as usize] as usize;
        vec![Row {
            forum_id: store.forums.id[forum as usize],
            forum_title: store.forums.title[forum as usize].to_string(),
            moderator_id: store.persons.id[moderator],
            moderator_first_name: store.persons.first_name[moderator].to_string(),
            moderator_last_name: store.persons.last_name[moderator].to_string(),
        }]
    }
}

/// IS 7 — direct replies of a message, with a flag telling whether each
/// reply's author knows the original author.
pub mod is7 {
    use super::*;

    /// Parameters.
    #[derive(Clone, Copy, Debug)]
    pub struct Params {
        /// Message raw id.
        pub message_id: u64,
    }

    /// Result row.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Row {
        /// Reply comment id.
        pub comment_id: u64,
        /// Reply content.
        pub comment_content: String,
        /// Reply creation timestamp.
        pub comment_creation_date: snb_core::DateTime,
        /// Reply author id.
        pub reply_author_id: u64,
        /// Reply author first name.
        pub reply_author_first_name: String,
        /// Reply author last name.
        pub reply_author_last_name: String,
        /// Whether the reply author knows the original author (false
        /// when they are the same person).
        pub reply_author_knows_original: bool,
    }

    /// Runs IS 7 (sort: reply creation desc, author id asc).
    pub fn run(store: &Store, params: &Params) -> Vec<Row> {
        let Ok(m) = store.message(params.message_id) else { return Vec::new() };
        let original_author = store.messages.creator[m as usize];
        let mut rows: Vec<Row> = store
            .message_replies
            .targets_of(m)
            .map(|c| {
                let author = store.messages.creator[c as usize];
                let knows =
                    author != original_author && store.knows.contains(author, original_author);
                Row {
                    comment_id: store.messages.id[c as usize],
                    comment_content: store.messages.content[c as usize].to_string(),
                    comment_creation_date: store.messages.creation_date[c as usize],
                    reply_author_id: store.persons.id[author as usize],
                    reply_author_first_name: store.persons.first_name[author as usize].to_string(),
                    reply_author_last_name: store.persons.last_name[author as usize].to_string(),
                    reply_author_knows_original: knows,
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.comment_creation_date
                .cmp(&a.comment_creation_date)
                .then(a.reply_author_id.cmp(&b.reply_author_id))
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::store;
    use snb_store::Ix;

    #[test]
    fn is1_profile_round_trip() {
        let s = store();
        let id = s.persons.id[5];
        let rows = is1::run(s, &is1::Params { person_id: id });
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].first_name, s.persons.first_name[5]);
        assert_eq!(rows[0].creation_date, s.persons.creation_date[5]);
        assert!(is1::run(s, &is1::Params { person_id: 12_345_678 }).is_empty());
    }

    #[test]
    fn is2_recent_messages_sorted_desc() {
        let s = store();
        let p = (0..s.persons.len() as Ix).max_by_key(|&p| s.person_messages.degree(p)).unwrap();
        let rows = is2::run(s, &is2::Params { person_id: s.persons.id[p as usize] });
        assert!(!rows.is_empty());
        assert!(rows.len() <= 10);
        for w in rows.windows(2) {
            assert!(
                w[0].message_creation_date > w[1].message_creation_date
                    || (w[0].message_creation_date == w[1].message_creation_date
                        && w[0].message_id > w[1].message_id)
            );
        }
        // Original post resolution: post rows reference themselves.
        for r in &rows {
            let m = s.message(r.message_id).unwrap();
            if s.messages.is_post(m) {
                assert_eq!(r.original_post_id, r.message_id);
            }
        }
    }

    #[test]
    fn is3_friend_list_complete() {
        let s = store();
        let p = (0..s.persons.len() as Ix).max_by_key(|&p| s.knows.degree(p)).unwrap();
        let rows = is3::run(s, &is3::Params { person_id: s.persons.id[p as usize] });
        assert_eq!(rows.len(), s.knows.degree(p));
        for w in rows.windows(2) {
            assert!(w[0].friendship_creation_date >= w[1].friendship_creation_date);
        }
    }

    #[test]
    fn is4_is5_message_lookup() {
        let s = store();
        let mid = s.messages.id[7];
        let content = is4::run(s, &is4::Params { message_id: mid });
        assert_eq!(content.len(), 1);
        let creator = is5::run(s, &is5::Params { message_id: mid });
        assert_eq!(creator.len(), 1);
        assert_eq!(creator[0].person_id, s.persons.id[s.messages.creator[7] as usize]);
    }

    #[test]
    fn is6_resolves_thread_forum_for_comments() {
        let s = store();
        let comment =
            (0..s.messages.len() as Ix).find(|&m| !s.messages.is_post(m)).expect("some comment");
        let rows = is6::run(s, &is6::Params { message_id: s.messages.id[comment as usize] });
        assert_eq!(rows.len(), 1);
        let root = s.messages.root_post[comment as usize];
        assert_eq!(rows[0].forum_id, s.forums.id[s.messages.forum[root as usize] as usize]);
    }

    #[test]
    fn is7_knows_flag_false_for_self_reply() {
        let s = store();
        for m in 0..s.messages.len() as Ix {
            for r in is7::run(s, &is7::Params { message_id: s.messages.id[m as usize] }) {
                let author = s.person(r.reply_author_id).unwrap();
                if author == s.messages.creator[m as usize] {
                    assert!(!r.reply_author_knows_original, "self-reply flagged as knows");
                }
            }
        }
    }
}
