//! Shared helpers for the Interactive workload.

use snb_store::{Ix, Store};

/// Direct friends of a person.
pub fn friends(store: &Store, p: Ix) -> Vec<Ix> {
    store.knows.targets_of(p).collect()
}

/// Friends and friends-of-friends (distance 1..=2), excluding `p`.
pub fn friends_within_2(store: &Store, p: Ix) -> Vec<Ix> {
    snb_engine::traverse::khop_neighborhood(store, snb_engine::QueryMetrics::sink(), p, 2)
        .into_iter()
        .map(|(q, _)| q)
        .collect()
}

/// The message's display content: `content`, or `imageFile` for image
/// posts (the `Message.content or Post.imageFile` projection used by
/// IC 2/7/9 and IS 2/4).
pub fn content_or_image(store: &Store, m: Ix) -> String {
    let content = &store.messages.content[m as usize];
    if content.is_empty() {
        store.messages.image_file[m as usize].to_string()
    } else {
        content.to_string()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared store for the interactive query tests.

    use snb_datagen::GeneratorConfig;
    use snb_store::{store_for_config, Store};
    use std::sync::OnceLock;

    /// The shared tiny store.
    pub fn store() -> &'static Store {
        static STORE: OnceLock<Store> = OnceLock::new();
        STORE.get_or_init(|| {
            let mut c = GeneratorConfig::for_scale_name("0.001").expect("scale exists");
            c.persons = 150;
            store_for_config(&c)
        })
    }

    /// A well-connected start person's raw id.
    pub fn hub_person() -> u64 {
        let s = store();
        let ix = (0..s.persons.len() as u32).max_by_key(|&p| s.knows.degree(p)).unwrap();
        s.persons.id[ix as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::store;

    #[test]
    fn friends_within_2_excludes_self_and_contains_friends() {
        let s = store();
        let p = 0;
        let hood = friends_within_2(s, p);
        assert!(!hood.contains(&p));
        for f in friends(s, p) {
            assert!(hood.contains(&f));
        }
    }

    #[test]
    fn content_or_image_never_empty_for_real_messages() {
        let s = store();
        for m in 0..s.messages.len() as Ix {
            assert!(!content_or_image(s, m).is_empty());
        }
    }
}
