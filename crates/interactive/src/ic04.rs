//! IC 4 — *New topics*.
//!
//! Tags on Posts created by the start person's friends within the
//! window `[start_date, start_date + duration_days)` that never
//! appeared on friends' Posts before the window. Sort: postCount desc,
//! tag name asc; limit 10.

use rustc_hash::{FxHashMap, FxHashSet};
use snb_engine::TopK;
use snb_store::{Ix, Store};

use crate::common::friends;

/// Parameters of IC 4.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Window start.
    pub start_date: snb_core::Date,
    /// Window length in days (closed-open).
    pub duration_days: u32,
}

/// One result row of IC 4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Tag name.
    pub tag_name: String,
    /// Posts in the window carrying the tag.
    pub post_count: u64,
}

const LIMIT: usize = 10;

/// Runs IC 4.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let lo = params.start_date.at_midnight();
    let hi = params.start_date.plus_days(params.duration_days as i32).at_midnight();
    let mut in_window: FxHashMap<Ix, u64> = FxHashMap::default();
    let mut before: FxHashSet<Ix> = FxHashSet::default();
    for f in friends(store, start) {
        for m in store.person_messages.targets_of(f) {
            if !store.messages.is_post(m) {
                continue;
            }
            let t = store.messages.creation_date[m as usize];
            if t < lo {
                before.extend(store.message_tag.targets_of(m));
            } else if t < hi {
                for tag in store.message_tag.targets_of(m) {
                    *in_window.entry(tag).or_insert(0) += 1;
                }
            }
        }
    }
    let mut tk = TopK::new(LIMIT);
    for (tag, count) in in_window {
        if before.contains(&tag) {
            continue;
        }
        let row = Row { tag_name: store.tags.name[tag as usize].to_string(), post_count: count };
        tk.push((std::cmp::Reverse(count), row.tag_name.clone()), row);
    }
    tk.into_sorted()
}

/// Naive reference: full post scan (no per-friend adjacency).
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let lo = params.start_date.at_midnight();
    let hi = params.start_date.plus_days(params.duration_days as i32).at_midnight();
    let friend_set: FxHashSet<Ix> = store.knows.targets_of(start).collect();
    let mut in_window: FxHashMap<Ix, u64> = FxHashMap::default();
    let mut before: FxHashSet<Ix> = FxHashSet::default();
    for m in 0..store.messages.len() as Ix {
        if !store.messages.is_post(m) || !friend_set.contains(&store.messages.creator[m as usize]) {
            continue;
        }
        let t = store.messages.creation_date[m as usize];
        if t < lo {
            before.extend(store.message_tag.targets_of(m));
        } else if t < hi {
            for tag in store.message_tag.targets_of(m) {
                *in_window.entry(tag).or_insert(0) += 1;
            }
        }
    }
    let items: Vec<_> = in_window
        .into_iter()
        .filter(|(tag, _)| !before.contains(tag))
        .map(|(tag, count)| {
            let row = Row { tag_name: store.tags.name[tag as usize].to_string(), post_count: count };
            ((std::cmp::Reverse(count), row.tag_name.clone()), row)
        })
        .collect();
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};
    use snb_core::Date;

    fn params() -> Params {
        Params {
            person_id: hub_person(),
            start_date: Date::from_ymd(2011, 6, 1),
            duration_days: 120,
        }
    }

    #[test]
    fn tags_are_genuinely_new() {
        let s = store();
        let p = params();
        let start = s.person(p.person_id).unwrap();
        let lo = p.start_date.at_midnight();
        let rows = run(s, &p);
        for r in &rows {
            let tag = s.tag_named(&r.tag_name).unwrap();
            // Recheck: no friend post before the window has the tag.
            for f in s.knows.targets_of(start) {
                for m in s.person_messages.targets_of(f) {
                    if s.messages.is_post(m) && s.messages.creation_date[m as usize] < lo {
                        assert!(
                            !s.message_tag.targets_of(m).any(|t| t == tag),
                            "tag {} seen before window",
                            r.tag_name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sorted_and_limited_to_10() {
        let s = store();
        let rows = run(s, &params());
        assert!(rows.len() <= 10);
        for w in rows.windows(2) {
            assert!(
                w[0].post_count > w[1].post_count
                    || (w[0].post_count == w[1].post_count && w[0].tag_name <= w[1].tag_name)
            );
        }
    }

    #[test]
    fn whole_window_has_no_new_tags_before_history() {
        // A window covering the whole simulation has no "before", so
        // any friend-post tag qualifies.
        let s = store();
        let p = Params {
            person_id: hub_person(),
            start_date: Date::from_ymd(2010, 1, 1),
            duration_days: 1096,
        };
        let rows = run(s, &p);
        assert!(!rows.is_empty());
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = params();
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
