//! IC 1 — *Friends with certain name*.
//!
//! From a start Person, find Persons with a given first name within
//! three `knows` hops (excluding the start person), with full profile
//! projection. Sort: distance, last name, id; limit 20.

use snb_engine::traverse::khop_neighborhood;
use snb_engine::TopK;
use snb_store::{Ix, Store};

/// Parameters of IC 1.
#[derive(Clone, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// First name to match.
    pub first_name: String,
}

/// One result row of IC 1.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Friend id.
    pub friend_id: u64,
    /// Last name.
    pub last_name: String,
    /// Distance from the start person (1..=3).
    pub distance: u32,
    /// Birthday.
    pub birthday: snb_core::Date,
    /// Profile creation date.
    pub creation_date: snb_core::DateTime,
    /// Gender string.
    pub gender: String,
    /// Browser used.
    pub browser_used: String,
    /// Location IP.
    pub location_ip: String,
    /// Emails.
    pub emails: Vec<String>,
    /// Languages.
    pub languages: Vec<String>,
    /// Home city name.
    pub city_name: String,
    /// `(university, classYear, city)` triples.
    pub universities: Vec<(String, i32, String)>,
    /// `(company, workFrom, country)` triples.
    pub companies: Vec<(String, i32, String)>,
}

const LIMIT: usize = 20;

fn to_row(store: &Store, p: Ix, distance: u32) -> Row {
    let i = p as usize;
    let universities = store
        .person_study
        .neighbors(p)
        .map(|(org, year)| {
            let city = store.organisations.place[org as usize];
            (
                store.organisations.name[org as usize].to_string(),
                year,
                store.places.name[city as usize].to_string(),
            )
        })
        .collect();
    let companies = store
        .person_work
        .neighbors(p)
        .map(|(org, from)| {
            let country = store.organisations.place[org as usize];
            (
                store.organisations.name[org as usize].to_string(),
                from,
                store.places.name[country as usize].to_string(),
            )
        })
        .collect();
    Row {
        friend_id: store.persons.id[i],
        last_name: store.persons.last_name[i].to_string(),
        distance,
        birthday: store.persons.birthday[i],
        creation_date: store.persons.creation_date[i],
        gender: store.persons.gender[i].as_str().to_string(),
        browser_used: store.persons.browser[i].to_string(),
        location_ip: store.persons.location_ip[i].to_string(),
        emails: store.persons.emails.row_vec(i),
        languages: store.persons.speaks.row_vec(i),
        city_name: store.places.name[store.persons.city[i] as usize].to_string(),
        universities,
        companies,
    }
}

/// Runs IC 1.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let mut tk = TopK::new(LIMIT);
    for (p, d) in khop_neighborhood(store, snb_engine::QueryMetrics::sink(), start, 3) {
        if store.persons.first_name[p as usize] != params.first_name {
            continue;
        }
        let key = (d, store.persons.last_name[p as usize].to_string(), store.persons.id[p as usize]);
        if !tk.would_accept(&key) {
            continue;
        }
        tk.push(key, to_row(store, p, d));
    }
    tk.into_sorted()
}

/// Naive reference: tests every person's name, then recomputes their
/// distance with a from-scratch shortest-path search (no shared BFS).
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let mut items = Vec::new();
    for p in 0..store.persons.len() as Ix {
        if p == start || store.persons.first_name[p as usize] != params.first_name {
            continue;
        }
        let d = snb_engine::traverse::shortest_path_len(
            store,
            snb_engine::QueryMetrics::sink(),
            start,
            p,
        );
        if !(1..=3).contains(&d) {
            continue;
        }
        let row = to_row(store, p, d as u32);
        let key = (row.distance, row.last_name.clone(), row.friend_id);
        items.push((key, row));
    }
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};

    fn common_name(s: &Store) -> String {
        use std::collections::HashMap;
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for n in s.persons.first_name.iter() {
            *freq.entry(n).or_default() += 1;
        }
        freq.into_iter().max_by_key(|&(_, c)| c).unwrap().0.to_string()
    }

    #[test]
    fn results_match_name_and_distance_band() {
        let s = store();
        let name = common_name(s);
        let rows = run(s, &Params { person_id: hub_person(), first_name: name.clone() });
        for r in &rows {
            let p = s.person(r.friend_id).unwrap();
            assert_eq!(s.persons.first_name[p as usize], name);
            assert!((1..=3).contains(&r.distance));
            assert_ne!(r.friend_id, hub_person());
            let d = snb_engine::traverse::shortest_path_len(
                s,
                snb_engine::QueryMetrics::sink(),
                s.person(hub_person()).unwrap(),
                p,
            );
            assert_eq!(d, r.distance as i32, "distance disagrees with BFS");
        }
    }

    #[test]
    fn sorted_by_distance_lastname_id() {
        let s = store();
        let rows = run(s, &Params { person_id: hub_person(), first_name: common_name(s) });
        for w in rows.windows(2) {
            let ka = (w[0].distance, w[0].last_name.clone(), w[0].friend_id);
            let kb = (w[1].distance, w[1].last_name.clone(), w[1].friend_id);
            assert!(ka <= kb);
        }
        assert!(rows.len() <= 20);
    }

    #[test]
    fn unknown_person_or_name_empty() {
        let s = store();
        assert!(run(s, &Params { person_id: 9_999_999, first_name: "X".into() }).is_empty());
        assert!(run(s, &Params { person_id: hub_person(), first_name: "Zzzz".into() }).is_empty());
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = Params { person_id: hub_person(), first_name: common_name(s) };
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
