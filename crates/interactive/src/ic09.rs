//! IC 9 — *Recent messages by friends or friends of friends*.
//!
//! Messages created before a given date by persons within two hops of
//! the start person. Sort: creation desc, id asc; limit 20.

use snb_engine::{QueryContext, TopK};
use snb_store::Store;

use crate::common::{content_or_image, friends_within_2};

/// Parameters of IC 9.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Exclusive upper bound day.
    pub max_date: snb_core::Date,
}

/// One result row of IC 9.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Author id.
    pub person_id: u64,
    /// Author first name.
    pub person_first_name: String,
    /// Author last name.
    pub person_last_name: String,
    /// Message id.
    pub message_id: u64,
    /// Content or image file.
    pub message_content: String,
    /// Message creation timestamp.
    pub message_creation_date: snb_core::DateTime,
}

const LIMIT: usize = 20;

/// Runs IC 9.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Runs IC 9 on an explicit execution context: the two-hop circle fans
/// out as morsels with per-worker bounded heaps (total sort key, so the
/// merged top-20 is thread-count independent).
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let cutoff = params.max_date.at_midnight();
    let circle = friends_within_2(store, start);
    let tk: TopK<_, Row> = ctx.par_topk(circle.len(), LIMIT, |tk, range| {
        for &p in &circle[range] {
            for m in store.person_messages.targets_of(p) {
                let t = store.messages.creation_date[m as usize];
                if t >= cutoff {
                    continue;
                }
                let key = (std::cmp::Reverse(t), store.messages.id[m as usize]);
                if !tk.would_accept(&key) {
                    continue;
                }
                tk.push(
                    key,
                    Row {
                        person_id: store.persons.id[p as usize],
                        person_first_name: store.persons.first_name[p as usize].to_string(),
                        person_last_name: store.persons.last_name[p as usize].to_string(),
                        message_id: store.messages.id[m as usize],
                        message_content: content_or_image(store, m),
                        message_creation_date: t,
                    },
                );
            }
        }
    });
    tk.into_sorted()
}

/// Naive reference: full message scan with per-author distance
/// recomputation.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    use snb_store::Ix;
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let cutoff = params.max_date.at_midnight();
    let mut items = Vec::new();
    for m in 0..store.messages.len() as Ix {
        if store.messages.creation_date[m as usize] >= cutoff {
            continue;
        }
        let p = store.messages.creator[m as usize];
        if p == start {
            continue;
        }
        let d = snb_engine::traverse::shortest_path_len(
            store,
            snb_engine::QueryMetrics::sink(),
            start,
            p,
        );
        if !(1..=2).contains(&d) {
            continue;
        }
        let row = Row {
            person_id: store.persons.id[p as usize],
            person_first_name: store.persons.first_name[p as usize].to_string(),
            person_last_name: store.persons.last_name[p as usize].to_string(),
            message_id: store.messages.id[m as usize],
            message_content: content_or_image(store, m),
            message_creation_date: store.messages.creation_date[m as usize],
        };
        items.push(((std::cmp::Reverse(row.message_creation_date), row.message_id), row));
    }
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};
    use snb_core::Date;

    fn params() -> Params {
        Params { person_id: hub_person(), max_date: Date::from_ymd(2012, 6, 1) }
    }

    #[test]
    fn superset_of_ic2() {
        // IC 9's two-hop author set contains IC 2's one-hop set, so at
        // equal cut-off the top-20 by recency can only be newer-or-equal.
        let s = store();
        let ic2 = crate::ic02::run(
            s,
            &crate::ic02::Params { person_id: hub_person(), max_date: params().max_date },
        );
        let ic9 = run(s, &params());
        assert!(!ic9.is_empty());
        if let (Some(a), Some(b)) = (ic9.first(), ic2.first()) {
            assert!(a.message_creation_date >= b.message_creation_date);
        }
    }

    #[test]
    fn authors_within_two_hops() {
        let s = store();
        let start = s.person(hub_person()).unwrap();
        for r in run(s, &params()) {
            let author = s.person(r.person_id).unwrap();
            let d = snb_engine::traverse::shortest_path_len(
                s,
                snb_engine::QueryMetrics::sink(),
                start,
                author,
            );
            assert!((1..=2).contains(&d), "author at distance {d}");
        }
    }

    #[test]
    fn sorted_and_limited() {
        let s = store();
        let rows = run(s, &params());
        assert!(rows.len() <= 20);
        for w in rows.windows(2) {
            assert!(
                w[0].message_creation_date > w[1].message_creation_date
                    || (w[0].message_creation_date == w[1].message_creation_date
                        && w[0].message_id < w[1].message_id)
            );
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = params();
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
