//! IC 7 — *Recent likers*.
//!
//! For each person who liked any of the start person's Messages,
//! return their most recent like (ties broken toward the lowest
//! message id), with the like-to-creation latency in minutes and a
//! flag telling whether the liker is *not* a friend. Sort: like date
//! desc, liker id asc; limit 20.

use rustc_hash::FxHashMap;
use snb_core::datetime::minutes_between;
use snb_engine::TopK;
use snb_store::{Ix, Store};

use crate::common::content_or_image;

/// Parameters of IC 7.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
}

/// One result row of IC 7.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Liker id.
    pub person_id: u64,
    /// Liker first name.
    pub person_first_name: String,
    /// Liker last name.
    pub person_last_name: String,
    /// When the like was issued.
    pub like_creation_date: snb_core::DateTime,
    /// The liked message id.
    pub message_id: u64,
    /// The liked message's content (or image file).
    pub message_content: String,
    /// Minutes between message creation and like.
    pub minutes_latency: i64,
    /// `false` if the liker is a friend of the start person.
    pub is_new: bool,
}

const LIMIT: usize = 20;

/// Runs IC 7.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    // liker -> (like date, message) with the most-recent/lowest-id rule.
    let mut latest: FxHashMap<Ix, (snb_core::DateTime, Ix)> = FxHashMap::default();
    for m in store.person_messages.targets_of(start) {
        for (liker, date) in store.message_likes.neighbors(m) {
            match latest.get(&liker) {
                Some(&(d, mid))
                    if d > date
                        || (d == date
                            && store.messages.id[mid as usize]
                                <= store.messages.id[m as usize]) => {}
                _ => {
                    latest.insert(liker, (date, m));
                }
            }
        }
    }
    let friends: rustc_hash::FxHashSet<Ix> = store.knows.targets_of(start).collect();
    let mut tk = TopK::new(LIMIT);
    for (liker, (date, m)) in latest {
        let row = Row {
            person_id: store.persons.id[liker as usize],
            person_first_name: store.persons.first_name[liker as usize].to_string(),
            person_last_name: store.persons.last_name[liker as usize].to_string(),
            like_creation_date: date,
            message_id: store.messages.id[m as usize],
            message_content: content_or_image(store, m),
            minutes_latency: minutes_between(store.messages.creation_date[m as usize], date),
            is_new: !friends.contains(&liker),
        };
        tk.push((std::cmp::Reverse(date), row.person_id), row);
    }
    tk.into_sorted()
}

/// Naive reference: person-major scan over every like in the store.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let mut latest: FxHashMap<Ix, (snb_core::DateTime, Ix)> = FxHashMap::default();
    for liker in 0..store.persons.len() as Ix {
        for (m, date) in store.person_likes.neighbors(liker) {
            if store.messages.creator[m as usize] != start {
                continue;
            }
            match latest.get(&liker) {
                Some(&(d, mid))
                    if d > date
                        || (d == date
                            && store.messages.id[mid as usize]
                                <= store.messages.id[m as usize]) => {}
                _ => {
                    latest.insert(liker, (date, m));
                }
            }
        }
    }
    let friends: rustc_hash::FxHashSet<Ix> = store.knows.targets_of(start).collect();
    let items: Vec<_> = latest
        .into_iter()
        .map(|(liker, (date, m))| {
            let row = Row {
                person_id: store.persons.id[liker as usize],
                person_first_name: store.persons.first_name[liker as usize].to_string(),
                person_last_name: store.persons.last_name[liker as usize].to_string(),
                like_creation_date: date,
                message_id: store.messages.id[m as usize],
                message_content: content_or_image(store, m),
                minutes_latency: minutes_between(store.messages.creation_date[m as usize], date),
                is_new: !friends.contains(&liker),
            };
            ((std::cmp::Reverse(date), row.person_id), row)
        })
        .collect();
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::store;

    fn liked_person(s: &Store) -> u64 {
        // Pick a person with many likes on their messages.
        let p = (0..s.persons.len() as Ix)
            .max_by_key(|&p| {
                s.person_messages.targets_of(p).map(|m| s.message_likes.degree(m)).sum::<usize>()
            })
            .unwrap();
        s.persons.id[p as usize]
    }

    #[test]
    fn one_row_per_liker_latest_like() {
        let s = store();
        let pid = liked_person(s);
        let rows = run(s, &Params { person_id: pid });
        assert!(!rows.is_empty());
        let mut likers: Vec<u64> = rows.iter().map(|r| r.person_id).collect();
        let before = likers.len();
        likers.sort_unstable();
        likers.dedup();
        assert_eq!(before, likers.len(), "duplicate likers");
        // Each row's like is the liker's most recent on this person's
        // messages.
        let start = s.person(pid).unwrap();
        for r in &rows {
            let liker = s.person(r.person_id).unwrap();
            for m in s.person_messages.targets_of(start) {
                for (l, d) in s.message_likes.neighbors(m) {
                    if l == liker {
                        assert!(d <= r.like_creation_date);
                    }
                }
            }
        }
    }

    #[test]
    fn latency_non_negative_and_flags_consistent() {
        let s = store();
        let pid = liked_person(s);
        let start = s.person(pid).unwrap();
        let friends: Vec<Ix> = s.knows.targets_of(start).collect();
        for r in run(s, &Params { person_id: pid }) {
            assert!(r.minutes_latency >= 0);
            let liker = s.person(r.person_id).unwrap();
            assert_eq!(r.is_new, !friends.contains(&liker));
        }
    }

    #[test]
    fn sorted_recent_first() {
        let s = store();
        let rows = run(s, &Params { person_id: liked_person(s) });
        for w in rows.windows(2) {
            assert!(
                w[0].like_creation_date > w[1].like_creation_date
                    || (w[0].like_creation_date == w[1].like_creation_date
                        && w[0].person_id < w[1].person_id)
            );
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = Params { person_id: liked_person(s) };
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
