//! IC 10 — *Friend recommendation*.
//!
//! Friends of friends (distance exactly 2) born around the 21st of a
//! given month (on/after the 21st of that month, before the 22nd of the
//! next), scored by how much their posting matches the start person's
//! interests: `commonInterestScore = common - uncommon`, where `common`
//! counts their posts with at least one tag the start person is
//! interested in and `uncommon` those without. Sort: score desc, id
//! asc; limit 10.

use rustc_hash::FxHashSet;
use snb_engine::traverse::khop_neighborhood;
use snb_engine::TopK;
use snb_store::{Ix, Store};

/// Parameters of IC 10.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Month of interest, 1..=12.
    pub month: u32,
}

/// One result row of IC 10.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Candidate id.
    pub person_id: u64,
    /// First name.
    pub person_first_name: String,
    /// Last name.
    pub person_last_name: String,
    /// `common - uncommon`.
    pub common_interest_score: i64,
    /// Gender string.
    pub person_gender: String,
    /// Home city name.
    pub person_city_name: String,
}

const LIMIT: usize = 10;

/// The birthday window: on/after the 21st of `month`, before the 22nd
/// of the following month (any year).
fn birthday_matches(birthday: snb_core::Date, month: u32) -> bool {
    let (_, m, d) = birthday.to_ymd();
    let next = if month == 12 { 1 } else { month + 1 };
    (m == month && d >= 21) || (m == next && d < 22)
}

/// Runs IC 10.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let interests: FxHashSet<Ix> = store.person_interest.targets_of(start).collect();
    let mut tk = TopK::new(LIMIT);
    for (p, d) in khop_neighborhood(store, snb_engine::QueryMetrics::sink(), start, 2) {
        if d != 2 || !birthday_matches(store.persons.birthday[p as usize], params.month) {
            continue;
        }
        let mut common = 0i64;
        let mut uncommon = 0i64;
        for m in store.person_messages.targets_of(p) {
            if !store.messages.is_post(m) {
                continue;
            }
            if store.message_tag.targets_of(m).any(|t| interests.contains(&t)) {
                common += 1;
            } else {
                uncommon += 1;
            }
        }
        let score = common - uncommon;
        let row = Row {
            person_id: store.persons.id[p as usize],
            person_first_name: store.persons.first_name[p as usize].to_string(),
            person_last_name: store.persons.last_name[p as usize].to_string(),
            common_interest_score: score,
            person_gender: store.persons.gender[p as usize].as_str().to_string(),
            person_city_name: store.places.name[store.persons.city[p as usize] as usize].to_string(),
        };
        tk.push((std::cmp::Reverse(score), row.person_id), row);
    }
    tk.into_sorted()
}

/// Naive reference: per-person distance recomputation and message scan.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let Ok(start) = store.person(params.person_id) else { return Vec::new() };
    let interests: FxHashSet<Ix> = store.person_interest.targets_of(start).collect();
    let mut items = Vec::new();
    for p in 0..store.persons.len() as Ix {
        if p == start
            || snb_engine::traverse::shortest_path_len(
                store,
                snb_engine::QueryMetrics::sink(),
                start,
                p,
            ) != 2
            || !birthday_matches(store.persons.birthday[p as usize], params.month)
        {
            continue;
        }
        let mut common = 0i64;
        let mut uncommon = 0i64;
        for m in 0..store.messages.len() as Ix {
            if store.messages.creator[m as usize] != p || !store.messages.is_post(m) {
                continue;
            }
            if store.message_tag.targets_of(m).any(|t| interests.contains(&t)) {
                common += 1;
            } else {
                uncommon += 1;
            }
        }
        let score = common - uncommon;
        let row = Row {
            person_id: store.persons.id[p as usize],
            person_first_name: store.persons.first_name[p as usize].to_string(),
            person_last_name: store.persons.last_name[p as usize].to_string(),
            common_interest_score: score,
            person_gender: store.persons.gender[p as usize].as_str().to_string(),
            person_city_name: store.places.name[store.persons.city[p as usize] as usize].to_string(),
        };
        items.push(((std::cmp::Reverse(score), row.person_id), row));
    }
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};

    #[test]
    fn birthday_window_boundaries() {
        use snb_core::Date;
        assert!(birthday_matches(Date::from_ymd(1990, 5, 21), 5));
        assert!(birthday_matches(Date::from_ymd(1990, 5, 31), 5));
        assert!(birthday_matches(Date::from_ymd(1990, 6, 21), 5));
        assert!(!birthday_matches(Date::from_ymd(1990, 6, 22), 5));
        assert!(!birthday_matches(Date::from_ymd(1990, 5, 20), 5));
        // December rolls into January.
        assert!(birthday_matches(Date::from_ymd(1990, 1, 3), 12));
        assert!(birthday_matches(Date::from_ymd(1990, 12, 25), 12));
    }

    #[test]
    fn candidates_are_exactly_two_hops() {
        let s = store();
        let start = s.person(hub_person()).unwrap();
        for month in 1..=12 {
            for r in run(s, &Params { person_id: hub_person(), month }) {
                let p = s.person(r.person_id).unwrap();
                assert_eq!(
                    snb_engine::traverse::shortest_path_len(
                        s,
                        snb_engine::QueryMetrics::sink(),
                        start,
                        p
                    ),
                    2
                );
                assert!(birthday_matches(s.persons.birthday[p as usize], month));
            }
        }
    }

    #[test]
    fn score_matches_recount() {
        let s = store();
        let start = s.person(hub_person()).unwrap();
        let interests: FxHashSet<Ix> = s.person_interest.targets_of(start).collect();
        for month in [3u32, 7, 11] {
            for r in run(s, &Params { person_id: hub_person(), month }) {
                let p = s.person(r.person_id).unwrap();
                let mut common = 0i64;
                let mut uncommon = 0i64;
                for m in s.person_messages.targets_of(p) {
                    if s.messages.is_post(m) {
                        if s.message_tag.targets_of(m).any(|t| interests.contains(&t)) {
                            common += 1;
                        } else {
                            uncommon += 1;
                        }
                    }
                }
                assert_eq!(r.common_interest_score, common - uncommon);
            }
        }
    }

    #[test]
    fn limit_is_10_and_sorted() {
        let s = store();
        for month in 1..=12 {
            let rows = run(s, &Params { person_id: hub_person(), month });
            assert!(rows.len() <= 10);
            for w in rows.windows(2) {
                assert!(
                    w[0].common_interest_score > w[1].common_interest_score
                        || (w[0].common_interest_score == w[1].common_interest_score
                            && w[0].person_id < w[1].person_id)
                );
            }
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        for month in [2u32, 8] {
            let p = Params { person_id: hub_person(), month };
            assert_eq!(run(s, &p), run_naive(s, &p), "month {month}");
        }
    }
}
