//! IC 12 — *Expert search*.
//!
//! Direct friends who commented (single-hop reply) on Posts tagged with
//! a Tag in the given TagClass or a descendant; count their replies and
//! collect the matching tag names. Sort: replyCount desc, person id
//! asc; limit 20.

use rustc_hash::{FxHashMap, FxHashSet};
use snb_engine::TopK;
use snb_store::{Ix, Store, NONE};

use crate::common::friends;

/// Parameters of IC 12.
#[derive(Clone, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Tag-class name (subtree applies).
    pub tag_class_name: String,
}

/// One result row of IC 12.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Friend id.
    pub person_id: u64,
    /// First name.
    pub person_first_name: String,
    /// Last name.
    pub person_last_name: String,
    /// Names of matching tags on the posts replied to (sorted).
    pub tag_names: Vec<String>,
    /// Number of qualifying reply comments.
    pub reply_count: u64,
}

const LIMIT: usize = 20;

/// Runs IC 12.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(start), Ok(class)) =
        (store.person(params.person_id), store.tag_class_named(&params.tag_class_name))
    else {
        return Vec::new();
    };
    let mut acc: FxHashMap<Ix, (u64, FxHashSet<Ix>)> = FxHashMap::default();
    for f in friends(store, start) {
        for c in store.person_messages.targets_of(f) {
            let parent = store.messages.reply_of[c as usize];
            if parent == NONE || !store.messages.is_post(parent) {
                continue; // only direct replies to Posts
            }
            let matching: Vec<Ix> = store
                .message_tag
                .targets_of(parent)
                .filter(|&t| store.tag_in_class_subtree(t, class))
                .collect();
            if matching.is_empty() {
                continue;
            }
            let e = acc.entry(f).or_default();
            e.0 += 1;
            e.1.extend(matching);
        }
    }
    let mut tk = TopK::new(LIMIT);
    for (f, (count, tags)) in acc {
        let mut tag_names: Vec<String> =
            tags.into_iter().map(|t| store.tags.name[t as usize].to_string()).collect();
        tag_names.sort();
        let row = Row {
            person_id: store.persons.id[f as usize],
            person_first_name: store.persons.first_name[f as usize].to_string(),
            person_last_name: store.persons.last_name[f as usize].to_string(),
            tag_names,
            reply_count: count,
        };
        tk.push((std::cmp::Reverse(count), row.person_id), row);
    }
    tk.into_sorted()
}

/// Naive reference: full comment scan with subtree test per tag.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(start), Ok(class)) =
        (store.person(params.person_id), store.tag_class_named(&params.tag_class_name))
    else {
        return Vec::new();
    };
    let friend_set: FxHashSet<Ix> = store.knows.targets_of(start).collect();
    let mut acc: FxHashMap<Ix, (u64, FxHashSet<Ix>)> = FxHashMap::default();
    for c in 0..store.messages.len() as Ix {
        let f = store.messages.creator[c as usize];
        if !friend_set.contains(&f) {
            continue;
        }
        let parent = store.messages.reply_of[c as usize];
        if parent == NONE || !store.messages.is_post(parent) {
            continue;
        }
        let matching: Vec<Ix> = store
            .message_tag
            .targets_of(parent)
            .filter(|&t| store.tag_in_class_subtree(t, class))
            .collect();
        if matching.is_empty() {
            continue;
        }
        let e = acc.entry(f).or_default();
        e.0 += 1;
        e.1.extend(matching);
    }
    let items: Vec<_> = acc
        .into_iter()
        .map(|(f, (count, tags))| {
            let mut tag_names: Vec<String> =
                tags.into_iter().map(|t| store.tags.name[t as usize].to_string()).collect();
            tag_names.sort();
            let row = Row {
                person_id: store.persons.id[f as usize],
                person_first_name: store.persons.first_name[f as usize].to_string(),
                person_last_name: store.persons.last_name[f as usize].to_string(),
                tag_names,
                reply_count: count,
            };
            ((std::cmp::Reverse(count), row.person_id), row)
        })
        .collect();
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};

    fn params() -> Params {
        Params { person_id: hub_person(), tag_class_name: "Person".into() }
    }

    #[test]
    fn replies_target_matching_posts() {
        let s = store();
        let class = s.tag_class_named("Person").unwrap();
        let start = s.person(hub_person()).unwrap();
        let friends: Vec<Ix> = s.knows.targets_of(start).collect();
        for r in run(s, &params()) {
            let f = s.person(r.person_id).unwrap();
            assert!(friends.contains(&f));
            assert!(r.reply_count > 0);
            assert!(!r.tag_names.is_empty());
            for name in &r.tag_names {
                let t = s.tag_named(name).unwrap();
                assert!(s.tag_in_class_subtree(t, class), "tag {name} outside class");
            }
        }
    }

    #[test]
    fn thing_class_covers_leaf_class() {
        // Counting against the root class can only increase counts.
        let s = store();
        let root: u64 = run(s, &Params { person_id: hub_person(), tag_class_name: "Thing".into() })
            .iter()
            .map(|r| r.reply_count)
            .sum();
        let leaf: u64 = run(s, &params()).iter().map(|r| r.reply_count).sum();
        assert!(root >= leaf);
    }

    #[test]
    fn sorted_and_limited() {
        let s = store();
        let rows = run(s, &params());
        assert!(rows.len() <= 20);
        for w in rows.windows(2) {
            assert!(
                w[0].reply_count > w[1].reply_count
                    || (w[0].reply_count == w[1].reply_count && w[0].person_id < w[1].person_id)
            );
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = params();
        assert_eq!(run(s, &p), run_naive(s, &p));
        let root = Params { person_id: hub_person(), tag_class_name: "Thing".into() };
        assert_eq!(run(s, &root), run_naive(s, &root));
    }
}
