//! IC 14 — *Trusted connection paths*.
//!
//! All shortest `knows` paths between two Persons, each weighted by the
//! interactions between consecutive pairs: a direct reply to a Post
//! contributes 1.0, a direct reply to a Comment 0.5 (counted both
//! ways). Paths are returned by weight descending.

use snb_engine::traverse::all_shortest_paths;
use snb_store::{Ix, Store, NONE};

/// Parameters of IC 14.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// First person (raw id).
    pub person1_id: u64,
    /// Second person (raw id).
    pub person2_id: u64,
}

/// One result row of IC 14.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Person ids along the path.
    pub person_ids_in_path: Vec<u64>,
    /// Total path weight.
    pub path_weight: f64,
}

/// The interaction weight between a pair of persons.
fn pair_weight(store: &Store, a: Ix, b: Ix) -> f64 {
    let mut weight = 0.0;
    for (x, y) in [(a, b), (b, a)] {
        for c in store.person_messages.targets_of(x) {
            let parent = store.messages.reply_of[c as usize];
            if parent != NONE && store.messages.creator[parent as usize] == y {
                weight += if store.messages.is_post(parent) { 1.0 } else { 0.5 };
            }
        }
    }
    weight
}

/// Runs IC 14.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(a), Ok(b)) = (store.person(params.person1_id), store.person(params.person2_id)) else {
        return Vec::new();
    };
    let mut rows: Vec<Row> = all_shortest_paths(store, snb_engine::QueryMetrics::sink(), a, b)
        .into_iter()
        .map(|path| Row {
            path_weight: path.windows(2).map(|w| pair_weight(store, w[0], w[1])).sum(),
            person_ids_in_path: path.iter().map(|&p| store.persons.id[p as usize]).collect(),
        })
        .collect();
    rows.sort_by(|x, y| {
        y.path_weight
            .partial_cmp(&x.path_weight)
            .expect("weights are finite")
            .then_with(|| x.person_ids_in_path.cmp(&y.person_ids_in_path))
    });
    rows
}

/// Naive reference: pair weights recomputed through a full message
/// scan per path edge.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(a), Ok(b)) = (store.person(params.person1_id), store.person(params.person2_id)) else {
        return Vec::new();
    };
    let scan_weight = |x: Ix, y: Ix| -> f64 {
        let mut weight = 0.0;
        for c in 0..store.messages.len() as Ix {
            let parent = store.messages.reply_of[c as usize];
            if parent == NONE {
                continue;
            }
            let (cc, pc) =
                (store.messages.creator[c as usize], store.messages.creator[parent as usize]);
            if (cc == x && pc == y) || (cc == y && pc == x) {
                weight += if store.messages.is_post(parent) { 1.0 } else { 0.5 };
            }
        }
        weight
    };
    let mut rows: Vec<Row> = all_shortest_paths(store, snb_engine::QueryMetrics::sink(), a, b)
        .into_iter()
        .map(|path| Row {
            path_weight: path.windows(2).map(|w| scan_weight(w[0], w[1])).sum(),
            person_ids_in_path: path.iter().map(|&p| store.persons.id[p as usize]).collect(),
        })
        .collect();
    rows.sort_by(|x, y| {
        y.path_weight
            .partial_cmp(&x.path_weight)
            .expect("weights are finite")
            .then_with(|| x.person_ids_in_path.cmp(&y.person_ids_in_path))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::store;
    use snb_engine::traverse::shortest_path_len;

    fn pair_at_distance(s: &Store, d: i32) -> Option<(u64, u64)> {
        for a in 0..s.persons.len() as Ix {
            for b in a + 1..s.persons.len() as Ix {
                if shortest_path_len(s, snb_engine::QueryMetrics::sink(), a, b) == d {
                    return Some((s.persons.id[a as usize], s.persons.id[b as usize]));
                }
            }
        }
        None
    }

    #[test]
    fn paths_have_uniform_shortest_length() {
        let s = store();
        let (p1, p2) = pair_at_distance(s, 2).expect("pair at distance 2");
        let rows = run(s, &Params { person1_id: p1, person2_id: p2 });
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r.person_ids_in_path.len(), 3);
            assert_eq!(r.person_ids_in_path[0], p1);
            assert_eq!(*r.person_ids_in_path.last().unwrap(), p2);
        }
    }

    #[test]
    fn weights_descend_and_are_half_integral() {
        let s = store();
        let (p1, p2) = pair_at_distance(s, 2).unwrap();
        let rows = run(s, &Params { person1_id: p1, person2_id: p2 });
        for w in rows.windows(2) {
            assert!(w[0].path_weight >= w[1].path_weight);
        }
        for r in &rows {
            let doubled = r.path_weight * 2.0;
            assert!((doubled - doubled.round()).abs() < 1e-9, "weight not multiple of 0.5");
        }
    }

    #[test]
    fn no_rows_for_unreachable() {
        let s = store();
        if let Some(lonely) = (0..s.persons.len() as Ix).find(|&p| s.knows.degree(p) == 0) {
            let rows = run(
                s,
                &Params {
                    person1_id: s.persons.id[lonely as usize],
                    person2_id: s.persons.id[(lonely as usize + 1) % s.persons.len()],
                },
            );
            assert!(rows.is_empty());
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let (p1, p2) = pair_at_distance(s, 2).unwrap();
        let p = Params { person1_id: p1, person2_id: p2 };
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
