//! IC 6 — *Tag co-occurrence*.
//!
//! Posts by friends or friends-of-friends that carry a given Tag; count
//! the other tags co-occurring on those posts. Sort: postCount desc,
//! tag name asc; limit 10. (The query body is a figure placeholder in
//! the supplied extraction; semantics follow the official definition.)

use rustc_hash::FxHashMap;
use snb_engine::{QueryContext, TopK};
use snb_store::{Ix, Store};

use crate::common::friends_within_2;

/// Parameters of IC 6.
#[derive(Clone, Debug)]
pub struct Params {
    /// Start person (raw id).
    pub person_id: u64,
    /// Tag name.
    pub tag_name: String,
}

/// One result row of IC 6.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Co-occurring tag name.
    pub tag_name: String,
    /// Posts carrying both tags.
    pub post_count: u64,
}

const LIMIT: usize = 10;

/// Runs IC 6.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    run_ctx(store, QueryContext::global(), params)
}

/// Runs IC 6 on an explicit execution context: the tag's message list
/// fans out as morsels; co-occurrence counts are additive, so the merge
/// order is immaterial.
pub fn run_ctx(store: &Store, ctx: &QueryContext, params: &Params) -> Vec<Row> {
    let (Ok(start), Ok(tag)) = (store.person(params.person_id), store.tag_named(&params.tag_name))
    else {
        return Vec::new();
    };
    let circle: rustc_hash::FxHashSet<Ix> = friends_within_2(store, start).into_iter().collect();
    let tagged: Vec<Ix> = store.tag_message.targets_of(tag).collect();
    let counts = ctx.par_map_reduce(
        tagged.len(),
        FxHashMap::<Ix, u64>::default,
        |acc, range| {
            for &m in &tagged[range] {
                if !store.messages.is_post(m)
                    || !circle.contains(&store.messages.creator[m as usize])
                {
                    continue;
                }
                for t in store.message_tag.targets_of(m) {
                    if t != tag {
                        *acc.entry(t).or_insert(0) += 1;
                    }
                }
            }
        },
        |into, from| {
            for (k, c) in from {
                *into.entry(k).or_insert(0) += c;
            }
        },
    );
    let mut tk = TopK::new(LIMIT);
    for (t, count) in counts {
        let row = Row { tag_name: store.tags.name[t as usize].to_string(), post_count: count };
        tk.push((std::cmp::Reverse(count), row.tag_name.clone()), row);
    }
    tk.into_sorted()
}

/// Naive reference: full post scan with per-post tag membership tests.
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(start), Ok(tag)) = (store.person(params.person_id), store.tag_named(&params.tag_name))
    else {
        return Vec::new();
    };
    let circle: rustc_hash::FxHashSet<Ix> = friends_within_2(store, start).into_iter().collect();
    let mut counts: FxHashMap<Ix, u64> = FxHashMap::default();
    for m in 0..store.messages.len() as Ix {
        if !store.messages.is_post(m)
            || !circle.contains(&store.messages.creator[m as usize])
            || !store.message_tag.targets_of(m).any(|t| t == tag)
        {
            continue;
        }
        for t in store.message_tag.targets_of(m) {
            if t != tag {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
    }
    let items: Vec<_> = counts
        .into_iter()
        .map(|(t, count)| {
            let row = Row { tag_name: store.tags.name[t as usize].to_string(), post_count: count };
            ((std::cmp::Reverse(count), row.tag_name.clone()), row)
        })
        .collect();
    snb_engine::topk::sort_truncate(items, LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{hub_person, store};

    fn busy_tag(s: &Store) -> String {
        let t = (0..s.tags.len() as Ix).max_by_key(|&t| s.tag_message.degree(t)).unwrap();
        s.tags.name[t as usize].to_string()
    }

    #[test]
    fn given_tag_never_in_results() {
        let s = store();
        let tag = busy_tag(s);
        let rows = run(s, &Params { person_id: hub_person(), tag_name: tag.clone() });
        assert!(rows.iter().all(|r| r.tag_name != tag));
        assert!(rows.len() <= 10);
    }

    #[test]
    fn counts_verify_against_rescan() {
        let s = store();
        let tag_name = busy_tag(s);
        let tag = s.tag_named(&tag_name).unwrap();
        let start = s.person(hub_person()).unwrap();
        let circle: rustc_hash::FxHashSet<Ix> = friends_within_2(s, start).into_iter().collect();
        for r in run(s, &Params { person_id: hub_person(), tag_name: tag_name.clone() }) {
            let other = s.tag_named(&r.tag_name).unwrap();
            let recount = (0..s.messages.len() as Ix)
                .filter(|&m| {
                    s.messages.is_post(m)
                        && circle.contains(&s.messages.creator[m as usize])
                        && s.message_tag.targets_of(m).any(|t| t == tag)
                        && s.message_tag.targets_of(m).any(|t| t == other)
                })
                .count() as u64;
            assert_eq!(recount, r.post_count, "{}", r.tag_name);
        }
    }

    #[test]
    fn sorted_desc() {
        let s = store();
        let rows = run(s, &Params { person_id: hub_person(), tag_name: busy_tag(s) });
        for w in rows.windows(2) {
            assert!(
                w[0].post_count > w[1].post_count
                    || (w[0].post_count == w[1].post_count && w[0].tag_name <= w[1].tag_name)
            );
        }
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        let p = Params { person_id: hub_person(), tag_name: busy_tag(s) };
        assert_eq!(run(s, &p), run_naive(s, &p));
    }
}
