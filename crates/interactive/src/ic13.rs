//! IC 13 — *Single shortest path*.
//!
//! The length of the shortest `knows` path between two Persons:
//! `-1` when unreachable, `0` when both are the same person.

use snb_engine::traverse::shortest_path_len;
use snb_store::Store;

/// Parameters of IC 13.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// First person (raw id).
    pub person1_id: u64,
    /// Second person (raw id).
    pub person2_id: u64,
}

/// The single result row of IC 13.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Row {
    /// Shortest path length (see module docs for the sentinel values).
    pub shortest_path_length: i32,
}

/// Runs IC 13.
pub fn run(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(a), Ok(b)) = (store.person(params.person1_id), store.person(params.person2_id)) else {
        return Vec::new();
    };
    vec![Row {
        shortest_path_length: shortest_path_len(store, snb_engine::QueryMetrics::sink(), a, b),
    }]
}

/// Naive reference: plain single-direction layered BFS (the optimized
/// engine uses bidirectional search).
pub fn run_naive(store: &Store, params: &Params) -> Vec<Row> {
    let (Ok(a), Ok(b)) = (store.person(params.person1_id), store.person(params.person2_id)) else {
        return Vec::new();
    };
    if a == b {
        return vec![Row { shortest_path_length: 0 }];
    }
    let mut visited = rustc_hash::FxHashSet::default();
    visited.insert(a);
    let mut frontier = vec![a];
    let mut depth = 0;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for v in store.knows.targets_of(u) {
                if v == b {
                    return vec![Row { shortest_path_length: depth }];
                }
                if visited.insert(v) {
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    vec![Row { shortest_path_length: -1 }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::store;

    #[test]
    fn same_person_is_zero() {
        let s = store();
        let id = s.persons.id[0];
        assert_eq!(
            run(s, &Params { person1_id: id, person2_id: id }),
            vec![Row { shortest_path_length: 0 }]
        );
    }

    #[test]
    fn direct_friends_are_one() {
        let s = store();
        let a = (0..s.persons.len() as u32).find(|&p| s.knows.degree(p) > 0).unwrap();
        let b = s.knows.targets_of(a).next().unwrap();
        let rows = run(
            s,
            &Params { person1_id: s.persons.id[a as usize], person2_id: s.persons.id[b as usize] },
        );
        assert_eq!(rows[0].shortest_path_length, 1);
    }

    #[test]
    fn symmetric() {
        let s = store();
        let (a, b) = (s.persons.id[3], s.persons.id[90]);
        let ab = run(s, &Params { person1_id: a, person2_id: b });
        let ba = run(s, &Params { person1_id: b, person2_id: a });
        assert_eq!(ab, ba);
    }

    #[test]
    fn unknown_person_yields_empty() {
        let s = store();
        assert!(run(s, &Params { person1_id: 1, person2_id: 77_777_777 }).is_empty());
    }

    #[test]
    fn optimized_matches_naive() {
        let s = store();
        for (a, b) in [(0usize, 50usize), (3, 90), (7, 7)] {
            let p = Params { person1_id: s.persons.id[a], person2_id: s.persons.id[b] };
            assert_eq!(run(s, &p), run_naive(s, &p), "{a}->{b}");
        }
    }
}
