//! Struct-of-arrays column groups for every entity type.
//!
//! Entities are addressed by dense `u32` indices assigned at load time;
//! raw 64-bit ids are kept in an `id` column and a hash index maps them
//! back (id→index lookups use `FxHashMap`, per the perf guidance for
//! integer keys). `NONE` marks absent optional references.

use snb_core::datetime::{Date, DateTime};
use snb_core::model::{Gender, MessageKind, OrganisationKind, PlaceKind};

/// Dense entity index.
pub type Ix = u32;

/// Sentinel for absent optional references.
pub const NONE: Ix = u32::MAX;

/// Person columns (spec Table 2.5).
#[derive(Clone, Default)]
pub struct PersonCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// First names.
    pub first_name: Vec<String>,
    /// Surnames.
    pub last_name: Vec<String>,
    /// Genders.
    pub gender: Vec<Gender>,
    /// Birthdays.
    pub birthday: Vec<Date>,
    /// Join dates.
    pub creation_date: Vec<DateTime>,
    /// Registration IPs.
    pub location_ip: Vec<String>,
    /// Browser names (resolved strings, returned verbatim by queries).
    pub browser: Vec<String>,
    /// Home city (place index).
    pub city: Vec<Ix>,
    /// Email addresses (multi-valued).
    pub emails: Vec<Vec<String>>,
    /// Spoken languages (multi-valued).
    pub speaks: Vec<Vec<String>>,
}

impl PersonCols {
    /// Number of persons.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no persons are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

/// Forum columns (spec Table 2.2 + moderator).
#[derive(Clone, Default)]
pub struct ForumCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Titles ("Wall of …" / "Album …" / "Group for …").
    pub title: Vec<String>,
    /// Creation timestamps.
    pub creation_date: Vec<DateTime>,
    /// Moderator (person index).
    pub moderator: Vec<Ix>,
}

impl ForumCols {
    /// Number of forums.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no forums are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

/// Message columns (Posts and Comments share the table; `kind`
/// discriminates — spec Tables 2.3 / 2.7).
#[derive(Clone, Default)]
pub struct MessageCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Post or Comment.
    pub kind: Vec<MessageKind>,
    /// Creation timestamps.
    pub creation_date: Vec<DateTime>,
    /// Author (person index).
    pub creator: Vec<Ix>,
    /// Country the message was issued from (place index).
    pub country: Vec<Ix>,
    /// Browser names.
    pub browser: Vec<String>,
    /// Origin IPs.
    pub location_ip: Vec<String>,
    /// Content (empty iff image post).
    pub content: Vec<String>,
    /// Content length.
    pub length: Vec<u32>,
    /// Image file name (empty string when absent).
    pub image_file: Vec<String>,
    /// Language (Posts; empty string when absent).
    pub language: Vec<String>,
    /// Containing forum (Posts; `NONE` for comments).
    pub forum: Vec<Ix>,
    /// Replied-to message (Comments; `NONE` for posts).
    pub reply_of: Vec<Ix>,
    /// Root post of the thread (self for posts).
    pub root_post: Vec<Ix>,
}

impl MessageCols {
    /// Number of messages.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no messages are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// Whether message `m` is a Post.
    pub fn is_post(&self, m: Ix) -> bool {
        self.kind[m as usize] == MessageKind::Post
    }
}

/// Place columns.
#[derive(Clone, Default)]
pub struct PlaceCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Names.
    pub name: Vec<String>,
    /// City / country / continent.
    pub kind: Vec<PlaceKind>,
    /// `isPartOf` parent (`NONE` for continents).
    pub part_of: Vec<Ix>,
}

impl PlaceCols {
    /// Number of places.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no places are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

/// Tag columns.
#[derive(Clone, Default)]
pub struct TagCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Names.
    pub name: Vec<String>,
    /// `hasType` tag class (index).
    pub class: Vec<Ix>,
}

impl TagCols {
    /// Number of tags.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no tags are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

/// TagClass columns.
#[derive(Clone, Default)]
pub struct TagClassCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Names.
    pub name: Vec<String>,
    /// `isSubclassOf` parent (`NONE` for the root).
    pub parent: Vec<Ix>,
}

impl TagClassCols {
    /// Number of tag classes.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no tag classes are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

/// Organisation columns.
#[derive(Clone, Default)]
pub struct OrganisationCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Names.
    pub name: Vec<String>,
    /// University or company.
    pub kind: Vec<OrganisationKind>,
    /// Location (city for universities, country for companies).
    pub place: Vec<Ix>,
}

impl OrganisationCols {
    /// Number of organisations.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no organisations are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_sentinel_is_max() {
        assert_eq!(NONE, u32::MAX);
    }

    #[test]
    fn message_kind_helper() {
        let mut m = MessageCols::default();
        m.id.push(1);
        m.kind.push(MessageKind::Post);
        m.id.push(2);
        m.kind.push(MessageKind::Comment);
        assert!(m.is_post(0));
        assert!(!m.is_post(1));
        assert_eq!(m.len(), 2);
    }
}
