//! Struct-of-arrays column groups for every entity type.
//!
//! Entities are addressed by dense `u32` indices assigned at load time;
//! raw 64-bit ids are kept in an `id` column and a hash index maps them
//! back (id→index lookups use `FxHashMap`, per the perf guidance for
//! integer keys). `NONE` marks absent optional references.
//!
//! String-valued attributes no longer store `Vec<String>`: dictionary
//! values (names, browsers, languages) live in [`SymCol`] columns of
//! 4-byte symbols into the global [`interner`](crate::intern::interner),
//! and high-cardinality values (content, IPs, emails) live in
//! [`PackCol`]/[`PackListCol`] byte arenas. Both index as `&str`, so
//! `cols.first_name[i]` reads exactly as it did — only `.clone()`
//! became `.to_string()` at the call sites that need ownership.

use snb_core::datetime::{Date, DateTime};
use snb_core::model::{Gender, MessageKind, OrganisationKind, PlaceKind};

use crate::intern::{PackCol, PackListCol, SymCol, SymListCol};

/// Dense entity index.
pub type Ix = u32;

/// Sentinel for absent optional references.
pub const NONE: Ix = u32::MAX;

/// Person columns (spec Table 2.5).
#[derive(Clone, Default)]
pub struct PersonCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// First names (interned — drawn from the name dictionaries).
    pub first_name: SymCol,
    /// Surnames (interned).
    pub last_name: SymCol,
    /// Genders.
    pub gender: Vec<Gender>,
    /// Birthdays.
    pub birthday: Vec<Date>,
    /// Join dates.
    pub creation_date: Vec<DateTime>,
    /// Registration IPs (packed — high cardinality).
    pub location_ip: PackCol,
    /// Browser names (interned — tiny dictionary).
    pub browser: SymCol,
    /// Home city (place index).
    pub city: Vec<Ix>,
    /// Email addresses (multi-valued, packed — unique per person).
    pub emails: PackListCol,
    /// Spoken languages (multi-valued, interned).
    pub speaks: SymListCol,
}

impl PersonCols {
    /// Number of persons.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no persons are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// `(packed, string_baseline)` heap bytes of the string columns.
    pub fn string_bytes(&self) -> (usize, usize) {
        (
            self.first_name.heap_bytes()
                + self.last_name.heap_bytes()
                + self.location_ip.heap_bytes()
                + self.browser.heap_bytes()
                + self.emails.heap_bytes()
                + self.speaks.heap_bytes(),
            self.first_name.string_baseline_bytes()
                + self.last_name.string_baseline_bytes()
                + self.location_ip.string_baseline_bytes()
                + self.browser.string_baseline_bytes()
                + self.emails.string_baseline_bytes()
                + self.speaks.string_baseline_bytes(),
        )
    }

    /// Releases push-growth slack after an append-once bulk build.
    pub fn shrink_to_fit(&mut self) {
        self.id.shrink_to_fit();
        self.first_name.shrink_to_fit();
        self.last_name.shrink_to_fit();
        self.gender.shrink_to_fit();
        self.birthday.shrink_to_fit();
        self.creation_date.shrink_to_fit();
        self.location_ip.shrink_to_fit();
        self.browser.shrink_to_fit();
        self.city.shrink_to_fit();
        self.emails.shrink_to_fit();
        self.speaks.shrink_to_fit();
    }
}

/// Forum columns (spec Table 2.2 + moderator).
#[derive(Clone, Default)]
pub struct ForumCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Titles ("Wall of …" / "Album …" / "Group for …") — packed,
    /// unique per forum.
    pub title: PackCol,
    /// Creation timestamps.
    pub creation_date: Vec<DateTime>,
    /// Moderator (person index).
    pub moderator: Vec<Ix>,
}

impl ForumCols {
    /// Number of forums.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no forums are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// `(packed, string_baseline)` heap bytes of the string columns.
    pub fn string_bytes(&self) -> (usize, usize) {
        (self.title.heap_bytes(), self.title.string_baseline_bytes())
    }

    /// Releases push-growth slack after an append-once bulk build.
    pub fn shrink_to_fit(&mut self) {
        self.id.shrink_to_fit();
        self.title.shrink_to_fit();
        self.creation_date.shrink_to_fit();
        self.moderator.shrink_to_fit();
    }
}

/// Message columns (Posts and Comments share the table; `kind`
/// discriminates — spec Tables 2.3 / 2.7).
#[derive(Clone, Default)]
pub struct MessageCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Post or Comment.
    pub kind: Vec<MessageKind>,
    /// Creation timestamps.
    pub creation_date: Vec<DateTime>,
    /// Author (person index).
    pub creator: Vec<Ix>,
    /// Country the message was issued from (place index).
    pub country: Vec<Ix>,
    /// Browser names (interned).
    pub browser: SymCol,
    /// Origin IPs (packed).
    pub location_ip: PackCol,
    /// Content (empty iff image post) — packed.
    pub content: PackCol,
    /// Content length.
    pub length: Vec<u32>,
    /// Image file name (empty string when absent) — packed.
    pub image_file: PackCol,
    /// Language (Posts; empty string when absent) — interned.
    pub language: SymCol,
    /// Containing forum (Posts; `NONE` for comments).
    pub forum: Vec<Ix>,
    /// Replied-to message (Comments; `NONE` for posts).
    pub reply_of: Vec<Ix>,
    /// Root post of the thread (self for posts).
    pub root_post: Vec<Ix>,
}

impl MessageCols {
    /// Number of messages.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no messages are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// Whether message `m` is a Post.
    pub fn is_post(&self, m: Ix) -> bool {
        self.kind[m as usize] == MessageKind::Post
    }

    /// `(packed, string_baseline)` heap bytes of the string columns.
    pub fn string_bytes(&self) -> (usize, usize) {
        (
            self.browser.heap_bytes()
                + self.location_ip.heap_bytes()
                + self.content.heap_bytes()
                + self.image_file.heap_bytes()
                + self.language.heap_bytes(),
            self.browser.string_baseline_bytes()
                + self.location_ip.string_baseline_bytes()
                + self.content.string_baseline_bytes()
                + self.image_file.string_baseline_bytes()
                + self.language.string_baseline_bytes(),
        )
    }

    /// Releases push-growth slack after an append-once bulk build.
    pub fn shrink_to_fit(&mut self) {
        self.id.shrink_to_fit();
        self.kind.shrink_to_fit();
        self.creation_date.shrink_to_fit();
        self.creator.shrink_to_fit();
        self.country.shrink_to_fit();
        self.browser.shrink_to_fit();
        self.location_ip.shrink_to_fit();
        self.content.shrink_to_fit();
        self.length.shrink_to_fit();
        self.image_file.shrink_to_fit();
        self.language.shrink_to_fit();
        self.forum.shrink_to_fit();
        self.reply_of.shrink_to_fit();
        self.root_post.shrink_to_fit();
    }
}

/// Place columns.
#[derive(Clone, Default)]
pub struct PlaceCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Names (interned).
    pub name: SymCol,
    /// City / country / continent.
    pub kind: Vec<PlaceKind>,
    /// `isPartOf` parent (`NONE` for continents).
    pub part_of: Vec<Ix>,
}

impl PlaceCols {
    /// Number of places.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no places are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

/// Tag columns.
#[derive(Clone, Default)]
pub struct TagCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Names (interned).
    pub name: SymCol,
    /// `hasType` tag class (index).
    pub class: Vec<Ix>,
}

impl TagCols {
    /// Number of tags.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no tags are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

/// TagClass columns.
#[derive(Clone, Default)]
pub struct TagClassCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Names (interned).
    pub name: SymCol,
    /// `isSubclassOf` parent (`NONE` for the root).
    pub parent: Vec<Ix>,
}

impl TagClassCols {
    /// Number of tag classes.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no tag classes are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

/// Organisation columns.
#[derive(Clone, Default)]
pub struct OrganisationCols {
    /// Raw ids.
    pub id: Vec<u64>,
    /// Names (interned).
    pub name: SymCol,
    /// University or company.
    pub kind: Vec<OrganisationKind>,
    /// Location (city for universities, country for companies).
    pub place: Vec<Ix>,
}

impl OrganisationCols {
    /// Number of organisations.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no organisations are loaded.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_sentinel_is_max() {
        assert_eq!(NONE, u32::MAX);
    }

    #[test]
    fn message_kind_helper() {
        let mut m = MessageCols::default();
        m.id.push(1);
        m.kind.push(MessageKind::Post);
        m.id.push(2);
        m.kind.push(MessageKind::Comment);
        assert!(m.is_post(0));
        assert!(!m.is_post(1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn string_columns_index_as_str() {
        let mut p = PersonCols::default();
        p.id.push(7);
        p.first_name.push("Ada");
        p.last_name.push("Lovelace");
        p.location_ip.push("10.0.0.1");
        p.browser.push("Firefox");
        p.emails.push_row(["ada@example.org"]);
        p.speaks.push_row(["en"]);
        assert_eq!(&p.first_name[0], "Ada");
        assert_eq!(&p.location_ip[0], "10.0.0.1");
        assert_eq!(p.emails.row_vec(0), vec!["ada@example.org"]);
        let (packed, baseline) = p.string_bytes();
        assert!(packed > 0 && baseline > packed);
    }
}
