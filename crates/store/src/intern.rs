//! String interning and packed string columns.
//!
//! At the scale factors the SNB spec targets (arXiv 2001.02299: SF1 is
//! ~10k persons and ~3.5M messages, the ladder goes up from there) the
//! store's ~16 `String`-typed columns dominate memory: every row pays a
//! 24-byte `String` header plus a separate heap allocation, even though
//! most values come from tiny dictionaries (names, browsers, languages)
//! or are immutable once loaded (IPs, content). This module replaces
//! them with two representations:
//!
//! * [`SymCol`] — a `Vec<u32>` of symbols into the process-global
//!   [`StrInterner`]. Identical strings share one symbol across every
//!   column and every partition, so a dictionary value costs 4 bytes
//!   per row no matter how often it repeats.
//! * [`PackCol`] — a byte arena plus `u32` offsets for high-cardinality
//!   columns (message content, IPs) where interning would only bloat
//!   the dictionary: 4 bytes per row of overhead instead of 24+.
//!
//! Both index as `&str` (`col[i]`), so query plans compile against them
//! exactly as they did against `Vec<String>`. Multi-valued columns get
//! the same treatment via [`SymListCol`] / [`PackListCol`].
//!
//! Trade-offs, stated honestly: the interner is append-only and leaks
//! its dictionary for the process lifetime (symbols must stay valid in
//! every published copy-on-write store version, and the SNB dictionary
//! space is bounded); a `PackCol` arena is capped at 4 GiB per column
//! by its `u32` offsets (one column of one entity type — far beyond
//! what a single in-memory partition holds).

use std::ops::Index;
use std::sync::{Mutex, OnceLock, RwLock};

use rustc_hash::FxHashMap;

/// A symbol: an index into the global interner's dictionary.
pub type Sym = u32;

/// The process-global append-only string dictionary.
///
/// `intern` is O(1) amortised under a mutex (write path only: bulk
/// load, inserts); `resolve` takes a read lock and returns the
/// `&'static str` leaked at intern time, so readers never contend with
/// each other and the returned reference outlives every store version.
pub struct StrInterner {
    map: Mutex<FxHashMap<&'static str, Sym>>,
    strings: RwLock<Vec<&'static str>>,
}

impl StrInterner {
    fn new() -> StrInterner {
        let interner =
            StrInterner { map: Mutex::new(FxHashMap::default()), strings: RwLock::new(Vec::new()) };
        // Symbol 0 is always the empty string: `Default`-constructed
        // rows and "absent" optional attributes resolve without ever
        // touching the map.
        assert_eq!(interner.intern(""), 0);
        interner
    }

    /// Interns `s`, returning its symbol. Identical strings — from any
    /// column, partition, or thread — always yield the same symbol.
    pub fn intern(&self, s: &str) -> Sym {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&sym) = map.get(s) {
            return sym;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut strings = self.strings.write().unwrap_or_else(|e| e.into_inner());
        let sym = u32::try_from(strings.len()).expect("interner dictionary overflow");
        strings.push(leaked);
        map.insert(leaked, sym);
        sym
    }

    /// Resolves a symbol back to its string. Panics on a symbol that
    /// was never handed out (a corrupted column, not a user error).
    pub fn resolve(&self, sym: Sym) -> &'static str {
        self.strings.read().unwrap_or_else(|e| e.into_inner())[sym as usize]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when only the empty string is interned.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Bytes held by the dictionary itself (leaked strings + index).
    pub fn dictionary_bytes(&self) -> usize {
        let strings = self.strings.read().unwrap_or_else(|e| e.into_inner());
        strings.iter().map(|s| s.len()).sum::<usize>()
            + strings.capacity() * std::mem::size_of::<&'static str>()
    }
}

/// The global interner (one dictionary per process, shared by every
/// store version and partition).
pub fn interner() -> &'static StrInterner {
    static INTERNER: OnceLock<StrInterner> = OnceLock::new();
    INTERNER.get_or_init(StrInterner::new)
}

/// Estimated heap footprint of a `Vec<String>` holding the same rows —
/// the String-column baseline the loading benchmark compares against:
/// 24 bytes of header per row (inline in the vec) plus each string's
/// own allocation.
fn string_baseline(rows: usize, content_bytes: usize) -> usize {
    rows * std::mem::size_of::<String>() + content_bytes
}

/// An interned string column: one `u32` symbol per row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymCol {
    syms: Vec<Sym>,
}

impl SymCol {
    /// Appends a row, interning the value.
    pub fn push(&mut self, s: impl AsRef<str>) {
        self.syms.push(interner().intern(s.as_ref()));
    }

    /// Appends an already-interned symbol (datagen hands these out so
    /// the hot path skips the dictionary lookup entirely).
    pub fn push_sym(&mut self, sym: Sym) {
        self.syms.push(sym);
    }

    /// The symbol at row `i`.
    pub fn sym(&self, i: usize) -> Sym {
        self.syms[i]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Iterates the resolved values in row order.
    pub fn iter(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.syms.iter().map(|&s| interner().resolve(s))
    }

    /// The raw symbol slice (image serialization).
    pub fn syms(&self) -> &[Sym] {
        &self.syms
    }

    /// Keeps only rows whose index passes `keep` (delete rebuilds).
    pub fn filter_in_place(&mut self, keep: impl Fn(usize) -> bool) {
        let mut i = 0;
        self.syms.retain(|_| {
            let k = keep(i);
            i += 1;
            k
        });
    }

    /// Releases push-growth slack after an append-once bulk build.
    pub fn shrink_to_fit(&mut self) {
        self.syms.shrink_to_fit();
    }

    /// Heap bytes held by this column (the shared dictionary is global
    /// and counted once, not per column).
    pub fn heap_bytes(&self) -> usize {
        self.syms.capacity() * std::mem::size_of::<Sym>()
    }

    /// Estimated heap bytes of the `Vec<String>` this column replaced.
    pub fn string_baseline_bytes(&self) -> usize {
        string_baseline(self.syms.len(), self.iter().map(str::len).sum())
    }
}

impl Index<usize> for SymCol {
    type Output = str;
    fn index(&self, i: usize) -> &str {
        interner().resolve(self.syms[i])
    }
}

impl<S: AsRef<str>> FromIterator<S> for SymCol {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> SymCol {
        let mut col = SymCol::default();
        for s in iter {
            col.push(s);
        }
        col
    }
}

/// A packed string column: contiguous byte arena + `u32` end offsets.
/// For high-cardinality values (content, IPs) where a dictionary would
/// not deduplicate anything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackCol {
    bytes: Vec<u8>,
    /// `ends[i]` is the exclusive end of row `i`; row `i` starts at
    /// `ends[i-1]` (0 for the first row).
    ends: Vec<u32>,
}

impl PackCol {
    /// Appends a row.
    pub fn push(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        self.bytes.extend_from_slice(s.as_bytes());
        self.ends.push(u32::try_from(self.bytes.len()).expect("PackCol arena overflow (4 GiB)"));
    }

    fn range(&self, i: usize) -> (usize, usize) {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        (start, self.ends[i] as usize)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Iterates the values in row order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(|i| &self[i])
    }

    /// Keeps only rows whose index passes `keep`, rebuilding the arena
    /// so deleted rows free their bytes.
    pub fn filter_in_place(&mut self, keep: impl Fn(usize) -> bool) {
        let mut next = PackCol::default();
        for i in 0..self.len() {
            if keep(i) {
                next.push(&self[i]);
            }
        }
        *self = next;
    }

    /// Releases push-growth slack after an append-once bulk build.
    pub fn shrink_to_fit(&mut self) {
        self.bytes.shrink_to_fit();
        self.ends.shrink_to_fit();
    }

    /// Heap bytes held by this column.
    pub fn heap_bytes(&self) -> usize {
        self.bytes.capacity() + self.ends.capacity() * std::mem::size_of::<u32>()
    }

    /// Estimated heap bytes of the `Vec<String>` this column replaced.
    pub fn string_baseline_bytes(&self) -> usize {
        string_baseline(self.ends.len(), self.bytes.len())
    }
}

impl Index<usize> for PackCol {
    type Output = str;
    fn index(&self, i: usize) -> &str {
        let (start, end) = self.range(i);
        // The arena only ever receives whole `&str` values, so the
        // slice is valid UTF-8 by construction; the checked conversion
        // keeps the module unsafe-free.
        std::str::from_utf8(&self.bytes[start..end]).expect("PackCol arena holds valid UTF-8")
    }
}

impl<S: AsRef<str>> FromIterator<S> for PackCol {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> PackCol {
        let mut col = PackCol::default();
        for s in iter {
            col.push(s);
        }
        col
    }
}

/// A multi-valued interned column (e.g. spoken languages) in CSR
/// layout: one flat symbol vector plus a `u32` end offset per row.
/// Costs 4 bytes per value and 4 per row — no per-row `Vec` headers
/// (24 bytes each) and no per-row growth slack, which at SNB row
/// counts is the difference between beating the `String` baseline and
/// losing to it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymListCol {
    syms: Vec<Sym>,
    /// `row_ends[i]` is the exclusive end of row `i` in `syms`.
    row_ends: Vec<u32>,
}

impl SymListCol {
    /// Appends a row with the given values.
    pub fn push_row<S: AsRef<str>>(&mut self, values: impl IntoIterator<Item = S>) {
        for s in values {
            self.syms.push(interner().intern(s.as_ref()));
        }
        self.row_ends
            .push(u32::try_from(self.syms.len()).expect("SymListCol overflow (4 G values)"));
    }

    fn range(&self, i: usize) -> (usize, usize) {
        let start = if i == 0 { 0 } else { self.row_ends[i - 1] as usize };
        (start, self.row_ends[i] as usize)
    }

    /// The values of row `i`, resolved.
    pub fn row(&self, i: usize) -> impl Iterator<Item = &'static str> + '_ {
        let (start, end) = self.range(i);
        self.syms[start..end].iter().map(|&s| interner().resolve(s))
    }

    /// The values of row `i` as owned strings (query results).
    pub fn row_vec(&self, i: usize) -> Vec<String> {
        self.row(i).map(str::to_string).collect()
    }

    /// Number of values in row `i`.
    pub fn row_len(&self, i: usize) -> usize {
        let (start, end) = self.range(i);
        end - start
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.row_ends.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_ends.is_empty()
    }

    /// Keeps only rows whose index passes `keep`, rebuilding the flat
    /// vectors so deleted rows free their values.
    pub fn filter_in_place(&mut self, keep: impl Fn(usize) -> bool) {
        let mut next = SymListCol::default();
        for i in 0..self.len() {
            if keep(i) {
                let (start, end) = self.range(i);
                next.syms.extend_from_slice(&self.syms[start..end]);
                next.row_ends.push(next.syms.len() as u32);
            }
        }
        *self = next;
    }

    /// Releases push-growth slack (bulk builds are append-once, so
    /// capacity beyond `len` is pure waste after load).
    pub fn shrink_to_fit(&mut self) {
        self.syms.shrink_to_fit();
        self.row_ends.shrink_to_fit();
    }

    /// Heap bytes held by this column.
    pub fn heap_bytes(&self) -> usize {
        self.syms.capacity() * std::mem::size_of::<Sym>()
            + self.row_ends.capacity() * std::mem::size_of::<u32>()
    }

    /// Estimated heap bytes of the `Vec<Vec<String>>` this replaced.
    pub fn string_baseline_bytes(&self) -> usize {
        self.row_ends.len() * std::mem::size_of::<Vec<String>>()
            + string_baseline(
                self.syms.len(),
                self.syms.iter().map(|&s| interner().resolve(s).len()).sum(),
            )
    }
}

/// A multi-valued packed column (e.g. emails) in CSR layout: all value
/// bytes in one shared arena, a `u32` end offset per value, and a
/// `u32` end offset per row — for unique-per-row values where
/// interning would only grow the global dictionary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackListCol {
    bytes: Vec<u8>,
    /// `val_ends[v]` is the exclusive byte end of value `v` in `bytes`.
    val_ends: Vec<u32>,
    /// `row_ends[i]` is the exclusive end of row `i` in `val_ends`.
    row_ends: Vec<u32>,
}

impl PackListCol {
    /// Appends a row with the given values.
    pub fn push_row<S: AsRef<str>>(&mut self, values: impl IntoIterator<Item = S>) {
        for v in values {
            self.bytes.extend_from_slice(v.as_ref().as_bytes());
            self.val_ends
                .push(u32::try_from(self.bytes.len()).expect("PackListCol arena overflow (4 GiB)"));
        }
        self.row_ends
            .push(u32::try_from(self.val_ends.len()).expect("PackListCol overflow (4 G values)"));
    }

    fn row_range(&self, i: usize) -> (usize, usize) {
        let start = if i == 0 { 0 } else { self.row_ends[i - 1] as usize };
        (start, self.row_ends[i] as usize)
    }

    /// The values of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = &str> + '_ {
        let (start, end) = self.row_range(i);
        (start..end).map(move |v| {
            let b0 = if v == 0 { 0 } else { self.val_ends[v - 1] as usize };
            let b1 = self.val_ends[v] as usize;
            std::str::from_utf8(&self.bytes[b0..b1]).expect("PackListCol arena holds valid UTF-8")
        })
    }

    /// The values of row `i` as owned strings (query results).
    pub fn row_vec(&self, i: usize) -> Vec<String> {
        self.row(i).map(str::to_string).collect()
    }

    /// Number of values in row `i`.
    pub fn row_len(&self, i: usize) -> usize {
        let (start, end) = self.row_range(i);
        end - start
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.row_ends.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_ends.is_empty()
    }

    /// Keeps only rows whose index passes `keep`, rebuilding the arena.
    pub fn filter_in_place(&mut self, keep: impl Fn(usize) -> bool) {
        let mut next = PackListCol::default();
        for i in 0..self.len() {
            if keep(i) {
                next.push_row(self.row(i));
            }
        }
        *self = next;
    }

    /// Releases push-growth slack after an append-once bulk build.
    pub fn shrink_to_fit(&mut self) {
        self.bytes.shrink_to_fit();
        self.val_ends.shrink_to_fit();
        self.row_ends.shrink_to_fit();
    }

    /// Heap bytes held by this column.
    pub fn heap_bytes(&self) -> usize {
        self.bytes.capacity()
            + self.val_ends.capacity() * std::mem::size_of::<u32>()
            + self.row_ends.capacity() * std::mem::size_of::<u32>()
    }

    /// Estimated heap bytes of the `Vec<Vec<String>>` this replaced.
    pub fn string_baseline_bytes(&self) -> usize {
        self.row_ends.len() * std::mem::size_of::<Vec<String>>()
            + string_baseline(self.val_ends.len(), self.bytes.len())
    }
}

/// Zigzag-encodes a signed delta for varint packing.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `pos`. `None` on truncation.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Delta+varint packs a sequence of `i64` values (sorted id and date
/// columns delta-encode to ~1–2 bytes per row; unsorted ones still
/// round-trip, just with larger deltas).
pub fn pack_deltas(values: impl IntoIterator<Item = i64>, out: &mut Vec<u8>) -> usize {
    let mut prev = 0i64;
    let mut n = 0usize;
    for v in values {
        put_varint(out, zigzag(v.wrapping_sub(prev)));
        prev = v;
        n += 1;
    }
    n
}

/// Unpacks `n` delta+varint values. `None` on truncation.
pub fn unpack_deltas(buf: &[u8], pos: &mut usize, n: usize) -> Option<Vec<i64>> {
    let mut out = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        prev = prev.wrapping_add(unzigzag(get_varint(buf, pos)?));
        out.push(prev);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_is_identity_and_dedupes() {
        let it = interner();
        let a = it.intern("Hermione");
        let b = it.intern("Hermione");
        assert_eq!(a, b, "identical strings must share one symbol");
        assert_eq!(it.resolve(a), "Hermione");
        assert_ne!(it.intern("Harry"), a);
        assert_eq!(it.intern(""), 0, "symbol 0 is the empty string");
    }

    #[test]
    fn interner_proptest_round_trip_and_cross_column_dedupe() {
        // A minimal property test (the workspace's proptest stub has no
        // shrinking, so the loop is explicit): random strings from a
        // pseudo-random generator must round-trip intern→resolve, and
        // the same string interned via two independent columns (the
        // "two partitions" case) must share one symbol.
        let mut seed = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut cols = (SymCol::default(), SymCol::default());
        for i in 0..500 {
            let s = format!("w{}-{}", next() % 97, i % 13);
            let sym = interner().intern(&s);
            assert_eq!(interner().resolve(sym), s, "round-trip failed for {s:?}");
            cols.0.push(&s);
            cols.1.push(&s);
        }
        for i in 0..cols.0.len() {
            assert_eq!(
                cols.0.sym(i),
                cols.1.sym(i),
                "identical strings must share a symbol across columns/partitions"
            );
            assert_eq!(&cols.0[i], &cols.1[i]);
        }
    }

    #[test]
    fn sym_col_indexes_and_filters() {
        let mut col = SymCol::default();
        for s in ["alpha", "beta", "alpha", "gamma"] {
            col.push(s);
        }
        assert_eq!(col.len(), 4);
        assert_eq!(&col[0], "alpha");
        assert_eq!(col.sym(0), col.sym(2), "dedupe within a column");
        col.filter_in_place(|i| i != 1);
        assert_eq!(col.len(), 3);
        assert_eq!(&col[1], "alpha");
        assert_eq!(col.iter().collect::<Vec<_>>(), vec!["alpha", "alpha", "gamma"]);
    }

    #[test]
    fn pack_col_round_trips_including_empty_and_unicode() {
        let mut col = PackCol::default();
        for s in ["", "hello", "héllo wörld", "", "x"] {
            col.push(s);
        }
        assert_eq!(col.len(), 5);
        assert_eq!(&col[0], "");
        assert_eq!(&col[2], "héllo wörld");
        assert_eq!(&col[4], "x");
        col.filter_in_place(|i| i % 2 == 0);
        assert_eq!(col.iter().collect::<Vec<_>>(), vec!["", "héllo wörld", "x"]);
        assert!(col.heap_bytes() < col.string_baseline_bytes());
    }

    #[test]
    fn list_cols_round_trip_rows() {
        let mut sl = SymListCol::default();
        sl.push_row(["en", "de"]);
        sl.push_row(Vec::<String>::new());
        sl.push_row(["fr"]);
        assert_eq!(sl.row_vec(0), vec!["en", "de"]);
        assert_eq!(sl.row_len(1), 0);
        assert_eq!(sl.row_vec(2), vec!["fr"]);
        sl.filter_in_place(|i| i != 1);
        assert_eq!(sl.len(), 2);
        assert_eq!(sl.row_vec(0), vec!["en", "de"]);
        assert_eq!(sl.row_vec(1), vec!["fr"]);

        let mut pl = PackListCol::default();
        pl.push_row(["a@x.org", "b@y.org"]);
        pl.push_row(Vec::<String>::new());
        pl.push_row(["c@z.org"]);
        assert_eq!(pl.row_vec(0), vec!["a@x.org", "b@y.org"]);
        assert_eq!(pl.row_len(1), 0);
        assert_eq!(pl.row_vec(2), vec!["c@z.org"]);
        pl.filter_in_place(|i| i != 0);
        assert_eq!(pl.len(), 2);
        assert_eq!(pl.row_len(0), 0);
        assert_eq!(pl.row_vec(1), vec!["c@z.org"]);
    }

    #[test]
    fn list_cols_csr_beats_vec_per_row_baseline() {
        // The per-person gate depends on the CSR layout: a 24-byte
        // `Vec` header per row would already exceed the payload for
        // short lists. Two emails of ~15 bytes per row must cost less
        // than half the `Vec<Vec<String>>` equivalent.
        let mut pl = PackListCol::default();
        let mut sl = SymListCol::default();
        for i in 0..1_000 {
            pl.push_row([format!("u{i}@example.org"), format!("u{i}@mail.test")]);
            sl.push_row(["en", ["de", "fr", "zh"][i % 3]]);
        }
        pl.shrink_to_fit();
        sl.shrink_to_fit();
        assert!(
            pl.heap_bytes() * 2 <= pl.string_baseline_bytes(),
            "packed lists {} vs baseline {}",
            pl.heap_bytes(),
            pl.string_baseline_bytes()
        );
        assert!(
            sl.heap_bytes() * 2 <= sl.string_baseline_bytes(),
            "interned lists {} vs baseline {}",
            sl.heap_bytes(),
            sl.string_baseline_bytes()
        );
    }

    #[test]
    fn packed_columns_beat_string_baseline_by_2x() {
        // The loading gate in miniature: a dictionary-valued column at
        // realistic cardinality must cost less than half its
        // `Vec<String>` equivalent.
        let names = ["Jan", "Maria", "Chen", "Otso", "Ayesha", "Bran"];
        let mut col = SymCol::default();
        for i in 0..10_000 {
            col.push(names[i % names.len()]);
        }
        assert!(
            col.heap_bytes() * 2 <= col.string_baseline_bytes(),
            "interned {} vs baseline {}",
            col.heap_bytes(),
            col.string_baseline_bytes()
        );
    }

    #[test]
    fn varint_and_delta_round_trip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        // Sorted ids pack to ~1 byte per row; negatives round-trip too.
        let values: Vec<i64> = (0..1000).map(|i| 1_000_000 + i * 3).collect();
        let mut packed = Vec::new();
        let n = pack_deltas(values.iter().copied(), &mut packed);
        assert_eq!(n, values.len());
        assert!(packed.len() < values.len() * 2, "sorted deltas must pack tightly");
        let mut pos = 0;
        assert_eq!(unpack_deltas(&packed, &mut pos, n).unwrap(), values);
        let wild = vec![i64::MIN, i64::MAX, 0, -1, 42];
        packed.clear();
        pack_deltas(wild.iter().copied(), &mut packed);
        let mut pos = 0;
        assert_eq!(unpack_deltas(&packed, &mut pos, wild.len()).unwrap(), wild);
        // Truncation is detected, not misread.
        assert_eq!(unpack_deltas(&packed[..packed.len() - 1], &mut 0, wild.len()), None);
    }
}
