//! Insert operations (Interactive updates IU 1–8).
//!
//! Inserts append to the entity columns and to the adjacency overflow
//! (see [`crate::adj::Adj::insert`]); no CSR rebuild happens on the
//! write path, which keeps update latency flat — [`Store::compact`]
//! can fold the overflow back in between benchmark phases.

use snb_core::datetime::{Date, DateTime};
use snb_core::model::{Gender, MessageKind};
use snb_core::{SnbError, SnbResult};

use snb_datagen::dictionaries::{StaticWorld, BROWSERS};
use snb_datagen::stream::{TimedEvent, UpdateEvent};

use crate::columns::{Ix, NONE};
use crate::store::Store;

/// Parameters of IU 1 (add Person).
#[derive(Clone, Debug)]
pub struct PersonInsert {
    /// New person id (must be fresh).
    pub id: u64,
    /// First name.
    pub first_name: String,
    /// Surname.
    pub last_name: String,
    /// Gender.
    pub gender: Gender,
    /// Birthday.
    pub birthday: Date,
    /// Join timestamp.
    pub creation_date: DateTime,
    /// Registration IP.
    pub location_ip: String,
    /// Browser name.
    pub browser_used: String,
    /// Home city (raw place id).
    pub city_id: u64,
    /// Spoken languages.
    pub speaks: Vec<String>,
    /// Email addresses.
    pub emails: Vec<String>,
    /// Interest tag ids (raw).
    pub tag_ids: Vec<u64>,
    /// `(university id, classYear)` pairs.
    pub study_at: Vec<(u64, i32)>,
    /// `(company id, workFrom)` pairs.
    pub work_at: Vec<(u64, i32)>,
}

/// Parameters of IU 6 (add Post).
#[derive(Clone, Debug)]
pub struct PostInsert {
    /// New post id.
    pub id: u64,
    /// Image file (empty for text posts).
    pub image_file: String,
    /// Creation timestamp.
    pub creation_date: DateTime,
    /// Origin IP.
    pub location_ip: String,
    /// Browser name.
    pub browser_used: String,
    /// Language (empty if none).
    pub language: String,
    /// Content (empty for image posts).
    pub content: String,
    /// Content length.
    pub length: u32,
    /// Author (raw person id).
    pub author_person_id: u64,
    /// Containing forum (raw id).
    pub forum_id: u64,
    /// Country (raw place id).
    pub country_id: u64,
    /// Tags (raw ids).
    pub tag_ids: Vec<u64>,
}

/// Parameters of IU 7 (add Comment).
#[derive(Clone, Debug)]
pub struct CommentInsert {
    /// New comment id.
    pub id: u64,
    /// Creation timestamp.
    pub creation_date: DateTime,
    /// Origin IP.
    pub location_ip: String,
    /// Browser name.
    pub browser_used: String,
    /// Content.
    pub content: String,
    /// Content length.
    pub length: u32,
    /// Author (raw person id).
    pub author_person_id: u64,
    /// Country (raw place id).
    pub country_id: u64,
    /// Replied-to post id, or `-1` (spec encoding).
    pub reply_to_post_id: i64,
    /// Replied-to comment id, or `-1`.
    pub reply_to_comment_id: i64,
    /// Tags (raw ids).
    pub tag_ids: Vec<u64>,
}

/// Parameters of IU 4 (add Forum).
#[derive(Clone, Debug)]
pub struct ForumInsert {
    /// New forum id.
    pub id: u64,
    /// Title.
    pub title: String,
    /// Creation timestamp.
    pub creation_date: DateTime,
    /// Moderator (raw person id).
    pub moderator_person_id: u64,
    /// Topic tags (raw ids).
    pub tag_ids: Vec<u64>,
}

impl Store {
    /// IU 1 — inserts a Person node with its edges.
    pub fn insert_person(&mut self, p: PersonInsert) -> SnbResult<Ix> {
        if self.person_ix.contains_key(&p.id) {
            return Err(SnbError::Config(format!("person {} already exists", p.id)));
        }
        let city = *self
            .place_ix
            .get(&p.city_id)
            .ok_or(SnbError::UnknownId { entity: "Place", id: p.city_id })?;
        let ix = self.persons.len() as Ix;
        self.person_ix.insert(p.id, ix);
        self.persons.id.push(p.id);
        self.persons.first_name.push(p.first_name);
        self.persons.last_name.push(p.last_name);
        self.persons.gender.push(p.gender);
        self.persons.birthday.push(p.birthday);
        self.persons.creation_date.push(p.creation_date);
        self.persons.location_ip.push(p.location_ip);
        self.persons.browser.push(p.browser_used);
        self.persons.city.push(city);
        self.persons.emails.push_row(p.emails);
        self.persons.speaks.push_row(p.speaks);

        let n = self.persons.len();
        self.knows.grow_sources(n);
        self.person_interest.grow_sources(n);
        self.person_study.grow_sources(n);
        self.person_work.grow_sources(n);
        self.member_forum.grow_sources(n);
        self.person_messages.grow_sources(n);
        self.person_likes.grow_sources(n);
        self.person_moderates.grow_sources(n);
        self.city_person.insert(city, ix, ());
        for t in p.tag_ids {
            let tix = *self.tag_ix.get(&t).ok_or(SnbError::UnknownId { entity: "Tag", id: t })?;
            self.person_interest.insert(ix, tix, ());
            self.interest_person.insert(tix, ix, ());
        }
        for (org, year) in p.study_at {
            let o = *self
                .org_ix
                .get(&org)
                .ok_or(SnbError::UnknownId { entity: "Organisation", id: org })?;
            self.person_study.insert(ix, o, year);
        }
        for (org, from) in p.work_at {
            let o = *self
                .org_ix
                .get(&org)
                .ok_or(SnbError::UnknownId { entity: "Organisation", id: org })?;
            self.person_work.insert(ix, o, from);
        }
        Ok(ix)
    }

    /// IU 2 / IU 3 — inserts a like.
    pub fn insert_like(&mut self, person: u64, message: u64, date: DateTime) -> SnbResult<()> {
        let p = self.person(person)?;
        let m = self.message(message)?;
        self.person_likes.insert(p, m, date);
        self.message_likes.insert(m, p, date);
        Ok(())
    }

    /// IU 4 — inserts a Forum.
    pub fn insert_forum(&mut self, f: ForumInsert) -> SnbResult<Ix> {
        if self.forum_ix.contains_key(&f.id) {
            return Err(SnbError::Config(format!("forum {} already exists", f.id)));
        }
        let moderator = self.person(f.moderator_person_id)?;
        let ix = self.forums.len() as Ix;
        self.forum_ix.insert(f.id, ix);
        self.forums.id.push(f.id);
        self.forums.title.push(f.title);
        self.forums.creation_date.push(f.creation_date);
        self.forums.moderator.push(moderator);
        let n = self.forums.len();
        self.forum_member.grow_sources(n);
        self.forum_tag.grow_sources(n);
        self.forum_posts.grow_sources(n);
        self.person_moderates.insert(moderator, ix, ());
        for t in f.tag_ids {
            let tix = *self.tag_ix.get(&t).ok_or(SnbError::UnknownId { entity: "Tag", id: t })?;
            self.forum_tag.insert(ix, tix, ());
            self.tag_forum.insert(tix, ix, ());
        }
        Ok(ix)
    }

    /// IU 5 — inserts a forum membership.
    pub fn insert_membership(&mut self, person: u64, forum: u64, join: DateTime) -> SnbResult<()> {
        let p = self.person(person)?;
        let f = self.forum(forum)?;
        self.forum_member.insert(f, p, join);
        self.member_forum.insert(p, f, join);
        Ok(())
    }

    /// IU 6 — inserts a Post.
    pub fn insert_post(&mut self, post: PostInsert) -> SnbResult<Ix> {
        if self.message_ix.contains_key(&post.id) {
            return Err(SnbError::Config(format!("message {} already exists", post.id)));
        }
        let creator = self.person(post.author_person_id)?;
        let forum = self.forum(post.forum_id)?;
        let country = *self
            .place_ix
            .get(&post.country_id)
            .ok_or(SnbError::UnknownId { entity: "Place", id: post.country_id })?;
        let ix = self.push_message_row(
            post.id,
            MessageKind::Post,
            post.creation_date,
            creator,
            country,
            post.browser_used,
            post.location_ip,
            post.content,
            post.length,
            post.image_file,
            post.language,
            forum,
            NONE,
        );
        self.messages.root_post[ix as usize] = ix;
        self.forum_posts.insert(forum, ix, ());
        for t in post.tag_ids {
            let tix = *self.tag_ix.get(&t).ok_or(SnbError::UnknownId { entity: "Tag", id: t })?;
            self.message_tag.insert(ix, tix, ());
            self.tag_message.insert(tix, ix, ());
        }
        Ok(ix)
    }

    /// IU 7 — inserts a Comment replying to a Post or Comment.
    pub fn insert_comment(&mut self, c: CommentInsert) -> SnbResult<Ix> {
        if self.message_ix.contains_key(&c.id) {
            return Err(SnbError::Config(format!("message {} already exists", c.id)));
        }
        let creator = self.person(c.author_person_id)?;
        let country = *self
            .place_ix
            .get(&c.country_id)
            .ok_or(SnbError::UnknownId { entity: "Place", id: c.country_id })?;
        let parent_id = if c.reply_to_post_id >= 0 {
            c.reply_to_post_id as u64
        } else {
            c.reply_to_comment_id as u64
        };
        let parent = self.message(parent_id)?;
        let ix = self.push_message_row(
            c.id,
            MessageKind::Comment,
            c.creation_date,
            creator,
            country,
            c.browser_used,
            c.location_ip,
            c.content,
            c.length,
            String::new(),
            String::new(),
            NONE,
            parent,
        );
        self.messages.root_post[ix as usize] = self.messages.root_post[parent as usize];
        self.message_replies.insert(parent, ix, ());
        for t in c.tag_ids {
            let tix = *self.tag_ix.get(&t).ok_or(SnbError::UnknownId { entity: "Tag", id: t })?;
            self.message_tag.insert(ix, tix, ());
            self.tag_message.insert(tix, ix, ());
        }
        Ok(ix)
    }

    /// IU 8 — inserts a friendship (both directions).
    pub fn insert_knows(&mut self, p1: u64, p2: u64, date: DateTime) -> SnbResult<()> {
        let a = self.person(p1)?;
        let b = self.person(p2)?;
        self.knows.insert(a, b, date);
        self.knows.insert(b, a, date);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn push_message_row(
        &mut self,
        id: u64,
        kind: MessageKind,
        creation_date: DateTime,
        creator: Ix,
        country: Ix,
        browser: String,
        location_ip: String,
        content: String,
        length: u32,
        image_file: String,
        language: String,
        forum: Ix,
        reply_of: Ix,
    ) -> Ix {
        let ix = self.messages.len() as Ix;
        self.message_ix.insert(id, ix);
        self.messages.id.push(id);
        self.messages.kind.push(kind);
        self.messages.creation_date.push(creation_date);
        self.messages.creator.push(creator);
        self.messages.country.push(country);
        self.messages.browser.push(browser);
        self.messages.location_ip.push(location_ip);
        self.messages.content.push(content);
        self.messages.length.push(length);
        self.messages.image_file.push(image_file);
        self.messages.language.push(language);
        self.messages.forum.push(forum);
        self.messages.reply_of.push(reply_of);
        self.messages.root_post.push(NONE);
        let n = self.messages.len();
        self.message_tag.grow_sources(n);
        self.message_replies.grow_sources(n);
        self.message_likes.grow_sources(n);
        self.person_messages.insert(creator, ix, ());
        // Keep the date permutation index fresh when the insert arrives
        // in `(creation_date, ix)` order — true for the time-ordered
        // update stream — so steady-state reads never hit the O(n)
        // linear-scan fallback. Out-of-order inserts leave the index
        // stale for the driver's batch-boundary rebuild to repair.
        if self.message_by_date.len() == ix as usize {
            let in_order = match self.message_by_date.last() {
                None => true,
                Some(&prev) => {
                    (self.messages.creation_date[prev as usize], prev) < (creation_date, ix)
                }
            };
            if in_order {
                self.message_by_date.push(ix);
            }
        }
        ix
    }

    /// Applies one datagen update-stream event (used by the driver to
    /// replay the withheld tail against the bulk-loaded store).
    pub fn apply_event(&mut self, event: &TimedEvent, world: &StaticWorld) -> SnbResult<()> {
        match &event.event {
            UpdateEvent::AddPerson(p) => {
                self.insert_person(PersonInsert {
                    id: p.id.0,
                    first_name: p.first_name.to_string(),
                    last_name: p.last_name.to_string(),
                    gender: p.gender,
                    birthday: p.birthday,
                    creation_date: p.creation_date,
                    location_ip: p.location_ip.clone(),
                    browser_used: BROWSERS[p.browser as usize].0.to_string(),
                    city_id: p.city.0,
                    speaks: p
                        .languages
                        .iter()
                        .map(|&l| world.languages[l as usize].to_string())
                        .collect(),
                    emails: p.emails.clone(),
                    tag_ids: p.interests.iter().map(|t| t.0).collect(),
                    study_at: p.study_at.map(|(o, y)| (o.0, y)).into_iter().collect(),
                    work_at: p.work_at.iter().map(|&(o, y)| (o.0, y)).collect(),
                })?;
            }
            UpdateEvent::AddLikePost(l) | UpdateEvent::AddLikeComment(l) => {
                self.insert_like(l.person.0, l.message.0, l.creation_date)?;
            }
            UpdateEvent::AddForum(f) => {
                self.insert_forum(ForumInsert {
                    id: f.id.0,
                    title: f.title.clone(),
                    creation_date: f.creation_date,
                    moderator_person_id: f.moderator.0,
                    tag_ids: f.tags.iter().map(|t| t.0).collect(),
                })?;
            }
            UpdateEvent::AddMembership(m) => {
                self.insert_membership(m.person.0, m.forum.0, m.join_date)?;
            }
            UpdateEvent::AddPost(p) => {
                self.insert_post(PostInsert {
                    id: p.id.0,
                    image_file: p.image_file.clone().unwrap_or_default(),
                    creation_date: p.creation_date,
                    location_ip: p.location_ip.clone(),
                    browser_used: BROWSERS[p.browser as usize].0.to_string(),
                    language: p
                        .language
                        .map(|l| world.languages[l as usize].to_string())
                        .unwrap_or_default(),
                    content: p.content.clone(),
                    length: p.length,
                    author_person_id: p.creator.0,
                    forum_id: p.forum.expect("post has forum").0,
                    country_id: p.country.0,
                    tag_ids: p.tags.iter().map(|t| t.0).collect(),
                })?;
            }
            UpdateEvent::AddComment(c) => {
                let parent = c.reply_of.expect("comment has parent").0;
                // The raw graph keeps posts and comments in one id space;
                // resolve which side the parent is on.
                let parent_ix = self.message(parent)?;
                let parent_is_post = self.messages.is_post(parent_ix);
                self.insert_comment(CommentInsert {
                    id: c.id.0,
                    creation_date: c.creation_date,
                    location_ip: c.location_ip.clone(),
                    browser_used: BROWSERS[c.browser as usize].0.to_string(),
                    content: c.content.clone(),
                    length: c.length,
                    author_person_id: c.creator.0,
                    country_id: c.country.0,
                    reply_to_post_id: if parent_is_post { parent as i64 } else { -1 },
                    reply_to_comment_id: if parent_is_post { -1 } else { parent as i64 },
                    tag_ids: c.tags.iter().map(|t| t.0).collect(),
                })?;
            }
            UpdateEvent::AddKnows(k) => {
                self.insert_knows(k.a.0, k.b.0, k.creation_date)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{bulk_store_and_stream, store_for_config};
    use snb_core::scale::ScaleFactor;
    use snb_datagen::GeneratorConfig;

    fn config(n: u64) -> GeneratorConfig {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = n;
        c
    }

    #[test]
    fn insert_person_then_lookup() {
        let mut s = store_for_config(&config(40));
        let city = s.places.id[s.persons.city[0] as usize];
        let ix = s
            .insert_person(PersonInsert {
                id: 999_999,
                first_name: "Ada".into(),
                last_name: "Lovelace".into(),
                gender: Gender::Female,
                birthday: Date::from_ymd(1990, 5, 5),
                creation_date: DateTime::from_parts(2012, 6, 1, 12, 0, 0, 0),
                location_ip: "1.2.3.4".into(),
                browser_used: "Firefox".into(),
                city_id: city,
                speaks: vec!["en".into()],
                emails: vec!["ada@example.com".into()],
                tag_ids: vec![0, 1],
                study_at: vec![],
                work_at: vec![(s.organisations.id[0], 2010)],
            })
            .unwrap();
        assert_eq!(s.person(999_999).unwrap(), ix);
        assert_eq!(s.person_interest.targets_of(ix).count(), 2);
        assert!(s.interest_person.targets_of(0).any(|p| p == ix));
        s.validate_invariants().unwrap();
    }

    #[test]
    fn duplicate_person_rejected() {
        let mut s = store_for_config(&config(40));
        let existing = s.persons.id[0];
        let city = s.places.id[s.persons.city[0] as usize];
        let err = s.insert_person(PersonInsert {
            id: existing,
            first_name: "X".into(),
            last_name: "Y".into(),
            gender: Gender::Male,
            birthday: Date::from_ymd(1990, 1, 1),
            creation_date: DateTime(0),
            location_ip: String::new(),
            browser_used: String::new(),
            city_id: city,
            speaks: vec![],
            emails: vec![],
            tag_ids: vec![],
            study_at: vec![],
            work_at: vec![],
        });
        assert!(err.is_err());
    }

    #[test]
    fn insert_knows_is_symmetric() {
        let mut s = store_for_config(&config(40));
        let (a, b) = (s.persons.id[0], s.persons.id[1]);
        let before = s.knows.edge_count();
        s.insert_knows(a, b, DateTime(123)).unwrap();
        assert_eq!(s.knows.edge_count(), before + 2);
        let ai = s.person(a).unwrap();
        let bi = s.person(b).unwrap();
        assert!(s.knows.neighbors(ai).any(|(t, d)| t == bi && d == DateTime(123)));
        assert!(s.knows.neighbors(bi).any(|(t, d)| t == ai && d == DateTime(123)));
    }

    #[test]
    fn insert_comment_threads_correctly() {
        let mut s = store_for_config(&config(40));
        // Find a post.
        let post = (0..s.messages.len() as Ix).find(|&m| s.messages.is_post(m)).unwrap();
        let post_id = s.messages.id[post as usize];
        let author = s.persons.id[0];
        let country = s.places.id[s.messages.country[post as usize] as usize];
        let cix = s
            .insert_comment(CommentInsert {
                id: 5_000_000,
                creation_date: DateTime(s.messages.creation_date[post as usize].0 + 1000),
                location_ip: "9.9.9.9".into(),
                browser_used: "Opera".into(),
                content: "interesting".into(),
                length: 11,
                author_person_id: author,
                country_id: country,
                reply_to_post_id: post_id as i64,
                reply_to_comment_id: -1,
                tag_ids: vec![3],
            })
            .unwrap();
        assert_eq!(s.messages.reply_of[cix as usize], post);
        assert_eq!(s.messages.root_post[cix as usize], post);
        assert!(s.message_replies.targets_of(post).any(|r| r == cix));
        // Reply to the new comment: root must stay the post.
        let c2 = s
            .insert_comment(CommentInsert {
                id: 5_000_001,
                creation_date: DateTime(s.messages.creation_date[cix as usize].0 + 1000),
                location_ip: "9.9.9.9".into(),
                browser_used: "Opera".into(),
                content: "agree".into(),
                length: 5,
                author_person_id: author,
                country_id: country,
                reply_to_post_id: -1,
                reply_to_comment_id: 5_000_000,
                tag_ids: vec![],
            })
            .unwrap();
        assert_eq!(s.messages.root_post[c2 as usize], post);
    }

    #[test]
    fn replaying_stream_reaches_full_counts() {
        let c = config(100);
        let full = store_for_config(&c);
        let (mut bulk, events) = bulk_store_and_stream(&c);
        let world = snb_datagen::dictionaries::StaticWorld::build(c.seed);
        for e in &events {
            bulk.apply_event(e, &world).unwrap();
        }
        assert_eq!(bulk.persons.len(), full.persons.len());
        assert_eq!(bulk.messages.len(), full.messages.len());
        assert_eq!(bulk.forums.len(), full.forums.len());
        assert_eq!(bulk.knows.edge_count(), full.knows.edge_count());
        assert_eq!(bulk.person_likes.edge_count(), full.person_likes.edge_count());
        assert_eq!(bulk.forum_member.edge_count(), full.forum_member.edge_count());
        bulk.validate_invariants().unwrap();
        // Compaction must not change any counts.
        bulk.compact();
        assert_eq!(bulk.knows.edge_count(), full.knows.edge_count());
        bulk.validate_invariants().unwrap();
    }

    #[test]
    fn time_ordered_stream_keeps_date_index_fresh() {
        // The update stream arrives in timestamp order, so the O(1)
        // incremental append in `push_message_row` (plus the rebuild in
        // the delete path) must keep the date permutation index fresh
        // after every single event — no read may ever pay the O(n)
        // linear-scan fallback during steady-state streaming.
        let c = config(100);
        let (mut bulk, events) = bulk_store_and_stream(&c);
        let world = snb_datagen::dictionaries::StaticWorld::build(c.seed);
        assert!(bulk.date_index_fresh());
        for (i, e) in events.iter().enumerate() {
            bulk.apply_event(e, &world).unwrap();
            assert!(bulk.date_index_fresh(), "index went stale after event {i}");
        }
        bulk.validate_invariants().unwrap();
    }

    #[test]
    fn out_of_order_insert_leaves_index_stale() {
        // An insert dated before the newest stored message cannot be
        // appended to the permutation in place; the index goes stale
        // and the driver's batch-boundary rebuild repairs it.
        let mut s = store_for_config(&config(40));
        let post = (0..s.messages.len() as Ix).find(|&m| s.messages.is_post(m)).unwrap();
        let post_id = s.messages.id[post as usize];
        let country = s.places.id[s.messages.country[post as usize] as usize];
        assert!(s.date_index_fresh());
        s.insert_comment(CommentInsert {
            id: 6_000_000,
            creation_date: DateTime(0),
            location_ip: "9.9.9.9".into(),
            browser_used: "Opera".into(),
            content: "late arrival".into(),
            length: 12,
            author_person_id: s.persons.id[0],
            country_id: country,
            reply_to_post_id: post_id as i64,
            reply_to_comment_id: -1,
            tag_ids: vec![],
        })
        .unwrap();
        assert!(!s.date_index_fresh());
        s.rebuild_date_index();
        assert!(s.date_index_fresh());
        s.validate_invariants().unwrap();
    }
}
