//! CSR adjacency with insert overflow.
//!
//! Every relation in the store is a forward (and usually also reverse)
//! [`Adj`]: a compressed sparse row structure — `offsets[u]..offsets[u+1]`
//! slices a flat target array — so neighbour iteration is a contiguous
//! slice scan with no pointer chasing (choke points CP-3.2/3.3 reward
//! exactly this layout). Each edge can carry one `Copy` payload (e.g.
//! the `knows.creationDate`).
//!
//! The Interactive workload's inserts (IU 1–8) append into a sparse
//! per-source *overflow* map instead of rebuilding the CSR; neighbour
//! iteration chains base slice + overflow. `compact()` merges the
//! overflow back into the base arrays.

use rustc_hash::FxHashMap;

/// CSR adjacency from `u32` dense source indices to `u32` dense target
/// indices, with a `Copy` payload per edge.
#[derive(Clone, Debug)]
pub struct Adj<P: Copy = ()> {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    payloads: Vec<P>,
    overflow: FxHashMap<u32, Vec<(u32, P)>>,
    overflow_len: usize,
}

impl<P: Copy> Adj<P> {
    /// Builds the CSR from `(source, target, payload)` triples.
    /// `sources` is the number of source vertices; targets may be any
    /// `u32`. Edge order within a source follows the input order after a
    /// stable counting sort by source.
    pub fn from_edges(sources: usize, edges: &[(u32, u32, P)]) -> Self {
        if edges.is_empty() {
            return Adj {
                offsets: vec![0; sources + 1],
                targets: Vec::new(),
                payloads: Vec::new(),
                overflow: FxHashMap::default(),
                overflow_len: 0,
            };
        }
        let mut counts = vec![0u32; sources + 1];
        for &(s, _, _) in edges {
            debug_assert!((s as usize) < sources, "source {s} out of range {sources}");
            counts[s as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; edges.len()];
        let mut payloads = Vec::with_capacity(edges.len());
        // SAFETY-free approach: fill with placeholder clones via unsafe
        // avoided; use MaybeUninit-free two-pass with Option? Simpler:
        // collect payloads positionally after computing slots.
        let mut slots = vec![0usize; edges.len()];
        for (i, &(s, t, _)) in edges.iter().enumerate() {
            let slot = cursor[s as usize] as usize;
            cursor[s as usize] += 1;
            targets[slot] = t;
            slots[i] = slot;
        }
        payloads.resize(edges.len(), edges[0].2);
        for (i, &(_, _, p)) in edges.iter().enumerate() {
            payloads[slots[i]] = p;
        }
        Adj { offsets, targets, payloads, overflow: FxHashMap::default(), overflow_len: 0 }
    }

    /// Number of source vertices.
    pub fn sources(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of edges, including overflow.
    pub fn edge_count(&self) -> usize {
        self.targets.len() + self.overflow_len
    }

    /// Degree of `u` (base + overflow).
    pub fn degree(&self, u: u32) -> usize {
        let base = (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize;
        base + self.overflow.get(&u).map_or(0, |v| v.len())
    }

    /// The base CSR slice for `u` (excludes overflow) as parallel
    /// target/payload slices.
    pub fn base(&self, u: u32) -> (&[u32], &[P]) {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        (&self.targets[lo..hi], &self.payloads[lo..hi])
    }

    /// Iterates `(target, payload)` for `u`, overflow included.
    pub fn neighbors(&self, u: u32) -> impl Iterator<Item = (u32, P)> + '_ {
        let (t, p) = self.base(u);
        t.iter()
            .copied()
            .zip(p.iter().copied())
            .chain(self.overflow.get(&u).into_iter().flatten().copied())
    }

    /// Iterates targets only.
    pub fn targets_of(&self, u: u32) -> impl Iterator<Item = u32> + '_ {
        self.neighbors(u).map(|(t, _)| t)
    }

    /// Whether an edge `u -> v` exists.
    pub fn contains(&self, u: u32, v: u32) -> bool {
        self.targets_of(u).any(|t| t == v)
    }

    /// Appends an edge without rebuilding (IU insert path). New sources
    /// beyond the original count are accommodated transparently.
    pub fn insert(&mut self, u: u32, v: u32, payload: P) {
        while (u as usize) >= self.sources() {
            let last = *self.offsets.last().expect("offsets non-empty");
            self.offsets.push(last);
        }
        self.overflow.entry(u).or_default().push((v, payload));
        self.overflow_len += 1;
    }

    /// Whether any edges live in the insert overflow (i.e. the CSR
    /// arrays alone do not describe the full adjacency).
    pub fn has_overflow(&self) -> bool {
        self.overflow_len > 0
    }

    /// The raw CSR arrays `(offsets, targets, payloads)` — what the
    /// on-disk store image serialises. Callers must [`Adj::compact`]
    /// first; overflow edges are not visible through these slices.
    ///
    /// # Panics
    /// If overflow edges exist.
    pub fn csr_parts(&self) -> (&[u32], &[u32], &[P]) {
        assert!(self.overflow.is_empty(), "csr_parts on an adjacency with overflow; compact first");
        (&self.offsets, &self.targets, &self.payloads)
    }

    /// Rebuilds an adjacency from raw CSR arrays (the store-image load
    /// path). `offsets` must be monotonic with `offsets[0] == 0` and
    /// `targets`/`payloads` must both match its final value.
    pub fn from_csr_parts(offsets: Vec<u32>, targets: Vec<u32>, payloads: Vec<P>) -> Self {
        assert!(!offsets.is_empty() && offsets[0] == 0, "offsets must start at 0");
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be monotonic");
        assert_eq!(*offsets.last().expect("non-empty") as usize, targets.len());
        assert_eq!(targets.len(), payloads.len());
        Adj { offsets, targets, payloads, overflow: FxHashMap::default(), overflow_len: 0 }
    }

    /// Ensures at least `n` source vertices exist (for vertex inserts
    /// that start with zero edges).
    pub fn grow_sources(&mut self, n: usize) {
        while self.sources() < n {
            let last = *self.offsets.last().expect("offsets non-empty");
            self.offsets.push(last);
        }
    }

    /// Merges overflow edges into the base CSR.
    pub fn compact(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        let n = self.sources();
        let mut edges: Vec<(u32, u32, P)> = Vec::with_capacity(self.edge_count());
        for u in 0..n as u32 {
            for (t, p) in self.neighbors(u) {
                edges.push((u, t, p));
            }
        }
        *self = Adj::from_edges(n, &edges);
    }
}

impl<P: Copy> Default for Adj<P> {
    fn default() -> Self {
        Adj::from_edges(0, &[])
    }
}

/// Builds forward and reverse adjacency from the same edge list.
pub fn forward_reverse<P: Copy>(
    sources: usize,
    targets: usize,
    edges: &[(u32, u32, P)],
) -> (Adj<P>, Adj<P>) {
    let fwd = Adj::from_edges(sources, edges);
    let rev_edges: Vec<(u32, u32, P)> = edges.iter().map(|&(s, t, p)| (t, s, p)).collect();
    let rev = Adj::from_edges(targets, &rev_edges);
    (fwd, rev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_iterates() {
        let edges = [(0u32, 1u32, 10i32), (0, 2, 20), (2, 0, 30), (1, 2, 40)];
        let adj = Adj::from_edges(3, &edges);
        assert_eq!(adj.sources(), 3);
        assert_eq!(adj.edge_count(), 4);
        let n0: Vec<_> = adj.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 10), (2, 20)]);
        assert_eq!(adj.degree(1), 1);
        assert!(adj.contains(2, 0));
        assert!(!adj.contains(2, 1));
    }

    #[test]
    fn empty_adjacency() {
        let adj: Adj<()> = Adj::from_edges(5, &[]);
        assert_eq!(adj.sources(), 5);
        assert_eq!(adj.edge_count(), 0);
        assert_eq!(adj.neighbors(3).count(), 0);
    }

    #[test]
    fn insert_then_iterate_and_compact() {
        let mut adj = Adj::from_edges(2, &[(0u32, 1u32, ())]);
        adj.insert(1, 0, ());
        adj.insert(0, 3, ());
        assert_eq!(adj.edge_count(), 3);
        assert_eq!(adj.targets_of(0).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(adj.targets_of(1).collect::<Vec<_>>(), vec![0]);
        adj.compact();
        assert_eq!(adj.edge_count(), 3);
        assert_eq!(adj.targets_of(0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn insert_grows_sources() {
        let mut adj: Adj<()> = Adj::from_edges(1, &[]);
        adj.insert(4, 0, ());
        assert!(adj.sources() >= 5);
        assert_eq!(adj.targets_of(4).collect::<Vec<_>>(), vec![0]);
        assert_eq!(adj.targets_of(2).count(), 0);
        adj.grow_sources(10);
        assert_eq!(adj.sources(), 10);
    }

    #[test]
    fn forward_reverse_mirror() {
        let edges = [(0u32, 5u32, 1u8), (1, 5, 2), (2, 6, 3)];
        let (fwd, rev) = forward_reverse(3, 7, &edges);
        assert_eq!(fwd.targets_of(1).collect::<Vec<_>>(), vec![5]);
        let mut likers: Vec<_> = rev.neighbors(5).collect();
        likers.sort_unstable();
        assert_eq!(likers, vec![(0, 1), (1, 2)]);
        assert_eq!(rev.targets_of(6).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn stable_order_within_source() {
        // Input order must be preserved per source (queries rely on
        // deterministic iteration for reproducibility).
        let edges: Vec<(u32, u32, u32)> = (0..100).map(|i| (i % 3, i, i)).collect();
        let adj = Adj::from_edges(3, &edges);
        for s in 0..3u32 {
            let ts: Vec<u32> = adj.targets_of(s).collect();
            let mut expect: Vec<u32> = (0..100).filter(|i| i % 3 == s).collect();
            expect.sort_by_key(|&t| edges.iter().position(|&(es, et, _)| es == s && et == t));
            assert_eq!(ts, expect);
        }
    }
}
