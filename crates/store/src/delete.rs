//! Delete operations (DEL 1–8).
//!
//! The v0.3.x spec withholds deletes ("update streams … only contain
//! inserts. Delete operations are being designed and will be released
//! later", §2.3.4.3); the operation set below reproduces the eight
//! deletes the later official workload introduced, with full cascade
//! semantics:
//!
//! | op | deletes | cascades to |
//! |----|---------|-------------|
//! | DEL 1 | Person | their knows/likes/memberships/interests, messages they created (with reply subtrees), forums they moderate (with contents) |
//! | DEL 2 | like → Post | the edge only |
//! | DEL 3 | like → Comment | the edge only |
//! | DEL 4 | Forum | memberships, contained posts (with reply subtrees) |
//! | DEL 5 | membership | the edge only |
//! | DEL 6 | Post | its reply subtree, likes, tags |
//! | DEL 7 | Comment | its reply subtree, likes, tags |
//! | DEL 8 | friendship | the edge only |
//!
//! Deletes are **batch-applied**: tombstones are collected with their
//! transitive closure, then the store is rebuilt without the victims.
//! This trades per-operation latency for zero read-path overhead — the
//! CSR hot loops never test tombstones — which suits the BI usage
//! pattern (bulk refresh between analytical sessions). The insert
//! overflow path (IU 1–8) remains the low-latency write mechanism.

use rustc_hash::FxHashSet;

use snb_core::SnbResult;

use crate::adj::Adj;
use crate::columns::{Ix, NONE};
use crate::store::Store;

/// One delete operation, addressed by raw ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeleteOp {
    /// DEL 1 — delete a Person and everything they own.
    Person(u64),
    /// DEL 2 / DEL 3 — delete a like edge `(person, message)`.
    Like(u64, u64),
    /// DEL 4 — delete a Forum and its contents.
    Forum(u64),
    /// DEL 5 — delete a membership edge `(person, forum)`.
    Membership(u64, u64),
    /// DEL 6 / DEL 7 — delete a Message and its reply subtree.
    Message(u64),
    /// DEL 8 — delete a friendship edge.
    Knows(u64, u64),
}

/// Counts of entities removed by a batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeleteStats {
    /// Persons removed.
    pub persons: usize,
    /// Forums removed.
    pub forums: usize,
    /// Messages removed (including cascaded reply subtrees).
    pub messages: usize,
    /// Like edges removed (cascades included).
    pub likes: usize,
    /// Membership edges removed (cascades included).
    pub memberships: usize,
    /// Knows edges removed (cascades included; undirected count).
    pub knows: usize,
}

/// The tombstone sets a batch expands to.
#[derive(Default)]
struct Victims {
    persons: FxHashSet<Ix>,
    forums: FxHashSet<Ix>,
    messages: FxHashSet<Ix>,
    likes: FxHashSet<(Ix, Ix)>,
    memberships: FxHashSet<(Ix, Ix)>,
    knows: FxHashSet<(Ix, Ix)>, // normalised (min, max)
}

impl Store {
    /// Applies a batch of delete operations with full cascades and
    /// rebuilds the store in place. Returns what was removed. Unknown
    /// ids error without mutating anything.
    pub fn apply_deletes(&mut self, ops: &[DeleteOp]) -> SnbResult<DeleteStats> {
        let mut v = Victims::default();
        // Seed the tombstones from the explicit operations.
        for op in ops {
            match *op {
                DeleteOp::Person(id) => {
                    v.persons.insert(self.person(id)?);
                }
                DeleteOp::Like(p, m) => {
                    v.likes.insert((self.person(p)?, self.message(m)?));
                }
                DeleteOp::Forum(id) => {
                    v.forums.insert(self.forum(id)?);
                }
                DeleteOp::Membership(p, f) => {
                    v.memberships.insert((self.person(p)?, self.forum(f)?));
                }
                DeleteOp::Message(id) => {
                    v.messages.insert(self.message(id)?);
                }
                DeleteOp::Knows(a, b) => {
                    let (a, b) = (self.person(a)?, self.person(b)?);
                    v.knows.insert((a.min(b), a.max(b)));
                }
            }
        }
        self.expand_cascades(&mut v);
        let stats = DeleteStats {
            persons: v.persons.len(),
            forums: v.forums.len(),
            messages: v.messages.len(),
            likes: v.likes.len(),
            memberships: v.memberships.len(),
            knows: v.knows.len(),
        };
        self.rebuild_without(&v);
        Ok(stats)
    }

    /// Expands seeds to their transitive closure.
    fn expand_cascades(&self, v: &mut Victims) {
        // Person → their moderated forums.
        for &p in v.persons.clone().iter() {
            for f in self.person_moderates.targets_of(p) {
                v.forums.insert(f);
            }
        }
        // Forum → contained posts.
        for &f in v.forums.clone().iter() {
            for post in self.forum_posts.targets_of(f) {
                v.messages.insert(post);
            }
        }
        // Person → created messages.
        for &p in v.persons.clone().iter() {
            for m in self.person_messages.targets_of(p) {
                v.messages.insert(m);
            }
        }
        // Message → reply subtree (iterate to fixpoint via DFS).
        let mut stack: Vec<Ix> = v.messages.iter().copied().collect();
        while let Some(m) = stack.pop() {
            for r in self.message_replies.targets_of(m) {
                if v.messages.insert(r) {
                    stack.push(r);
                }
            }
        }
        // Edges incident to deleted nodes.
        for &p in &v.persons {
            for (q, _) in self.knows.neighbors(p) {
                v.knows.insert((p.min(q), p.max(q)));
            }
            for (m, _) in self.person_likes.neighbors(p) {
                v.likes.insert((p, m));
            }
            for (f, _) in self.member_forum.neighbors(p) {
                v.memberships.insert((p, f));
            }
        }
        for &m in &v.messages {
            for (p, _) in self.message_likes.neighbors(m) {
                v.likes.insert((p, m));
            }
        }
        for &f in &v.forums {
            for (p, _) in self.forum_member.neighbors(f) {
                v.memberships.insert((p, f));
            }
        }
    }

    /// Rebuilds every column and adjacency without the victims.
    #[allow(clippy::too_many_lines)]
    fn rebuild_without(&mut self, v: &Victims) {
        // Old-index → new-index maps (NONE = deleted).
        let person_map = remap(self.persons.len(), &v.persons);
        let forum_map = remap(self.forums.len(), &v.forums);
        let message_map = remap(self.messages.len(), &v.messages);

        // --- person columns ---
        let keep_p = |i: usize| person_map[i] != NONE;
        filter_in_place(&mut self.persons.id, keep_p);
        self.persons.first_name.filter_in_place(keep_p);
        self.persons.last_name.filter_in_place(keep_p);
        filter_in_place(&mut self.persons.gender, keep_p);
        filter_in_place(&mut self.persons.birthday, keep_p);
        filter_in_place(&mut self.persons.creation_date, keep_p);
        self.persons.location_ip.filter_in_place(keep_p);
        self.persons.browser.filter_in_place(keep_p);
        filter_in_place(&mut self.persons.city, keep_p);
        self.persons.emails.filter_in_place(keep_p);
        self.persons.speaks.filter_in_place(keep_p);

        // --- forum columns ---
        let keep_f = |i: usize| forum_map[i] != NONE;
        filter_in_place(&mut self.forums.id, keep_f);
        self.forums.title.filter_in_place(keep_f);
        filter_in_place(&mut self.forums.creation_date, keep_f);
        filter_in_place(&mut self.forums.moderator, keep_f);
        for m in &mut self.forums.moderator {
            *m = person_map[*m as usize];
        }

        // --- message columns ---
        let keep_m = |i: usize| message_map[i] != NONE;
        filter_in_place(&mut self.messages.id, keep_m);
        filter_in_place(&mut self.messages.kind, keep_m);
        filter_in_place(&mut self.messages.creation_date, keep_m);
        filter_in_place(&mut self.messages.creator, keep_m);
        filter_in_place(&mut self.messages.country, keep_m);
        self.messages.browser.filter_in_place(keep_m);
        self.messages.location_ip.filter_in_place(keep_m);
        self.messages.content.filter_in_place(keep_m);
        filter_in_place(&mut self.messages.length, keep_m);
        self.messages.image_file.filter_in_place(keep_m);
        self.messages.language.filter_in_place(keep_m);
        filter_in_place(&mut self.messages.forum, keep_m);
        filter_in_place(&mut self.messages.reply_of, keep_m);
        filter_in_place(&mut self.messages.root_post, keep_m);
        for c in &mut self.messages.creator {
            *c = person_map[*c as usize];
        }
        for f in &mut self.messages.forum {
            if *f != NONE {
                *f = forum_map[*f as usize];
            }
        }
        for r in &mut self.messages.reply_of {
            if *r != NONE {
                *r = message_map[*r as usize];
            }
        }
        for r in &mut self.messages.root_post {
            *r = message_map[*r as usize];
        }

        // --- id maps ---
        *self.person_ix =
            self.persons.id.iter().enumerate().map(|(i, &id)| (id, i as Ix)).collect();
        *self.forum_ix = self.forums.id.iter().enumerate().map(|(i, &id)| (id, i as Ix)).collect();
        *self.message_ix =
            self.messages.id.iter().enumerate().map(|(i, &id)| (id, i as Ix)).collect();

        let np = self.persons.len();
        let nf = self.forums.len();
        let nm = self.messages.len();
        let nt = self.tags.len();

        // --- adjacency rebuilds ---
        let knows_edges = collect_edges(&self.knows, |a, b, _| {
            person_map[a as usize] != NONE
                && person_map[b as usize] != NONE
                && !v.knows.contains(&(a.min(b), a.max(b)))
        });
        *self.knows = Adj::from_edges(
            np,
            &knows_edges
                .iter()
                .map(|&(a, b, d)| (person_map[a as usize], person_map[b as usize], d))
                .collect::<Vec<_>>(),
        );

        let like_edges = collect_edges(&self.person_likes, |p, m, _| {
            person_map[p as usize] != NONE
                && message_map[m as usize] != NONE
                && !v.likes.contains(&(p, m))
        });
        let mapped: Vec<_> = like_edges
            .iter()
            .map(|&(p, m, d)| (person_map[p as usize], message_map[m as usize], d))
            .collect();
        *self.person_likes = Adj::from_edges(np, &mapped);
        let rev: Vec<_> = mapped.iter().map(|&(p, m, d)| (m, p, d)).collect();
        *self.message_likes = Adj::from_edges(nm, &rev);

        let member_edges = collect_edges(&self.forum_member, |f, p, _| {
            forum_map[f as usize] != NONE
                && person_map[p as usize] != NONE
                && !v.memberships.contains(&(p, f))
        });
        let mapped: Vec<_> = member_edges
            .iter()
            .map(|&(f, p, d)| (forum_map[f as usize], person_map[p as usize], d))
            .collect();
        *self.forum_member = Adj::from_edges(nf, &mapped);
        let rev: Vec<_> = mapped.iter().map(|&(f, p, d)| (p, f, d)).collect();
        *self.member_forum = Adj::from_edges(np, &rev);

        let interest_edges =
            collect_edges(&self.person_interest, |p, _, _| person_map[p as usize] != NONE);
        let mapped: Vec<_> =
            interest_edges.iter().map(|&(p, t, d)| (person_map[p as usize], t, d)).collect();
        *self.person_interest = Adj::from_edges(np, &mapped);
        let rev: Vec<_> = mapped.iter().map(|&(p, t, d)| (t, p, d)).collect();
        *self.interest_person = Adj::from_edges(nt, &rev);

        let study = collect_edges(&self.person_study, |p, _, _| person_map[p as usize] != NONE);
        *self.person_study = Adj::from_edges(
            np,
            &study.iter().map(|&(p, o, y)| (person_map[p as usize], o, y)).collect::<Vec<_>>(),
        );
        let work = collect_edges(&self.person_work, |p, _, _| person_map[p as usize] != NONE);
        *self.person_work = Adj::from_edges(
            np,
            &work.iter().map(|&(p, o, y)| (person_map[p as usize], o, y)).collect::<Vec<_>>(),
        );

        let tag_edges = collect_edges(&self.message_tag, |m, _, _| message_map[m as usize] != NONE);
        let mapped: Vec<_> =
            tag_edges.iter().map(|&(m, t, d)| (message_map[m as usize], t, d)).collect();
        *self.message_tag = Adj::from_edges(nm, &mapped);
        let rev: Vec<_> = mapped.iter().map(|&(m, t, d)| (t, m, d)).collect();
        *self.tag_message = Adj::from_edges(nt, &rev);

        let forum_tag = collect_edges(&self.forum_tag, |f, _, _| forum_map[f as usize] != NONE);
        let mapped: Vec<_> =
            forum_tag.iter().map(|&(f, t, d)| (forum_map[f as usize], t, d)).collect();
        *self.forum_tag = Adj::from_edges(nf, &mapped);
        let rev: Vec<_> = mapped.iter().map(|&(f, t, d)| (t, f, d)).collect();
        *self.tag_forum = Adj::from_edges(nt, &rev);

        // Derived adjacency from the rewritten columns.
        let mut creator_edges = Vec::with_capacity(nm);
        let mut forum_posts = Vec::new();
        let mut replies = Vec::new();
        for m in 0..nm {
            creator_edges.push((self.messages.creator[m], m as Ix, ()));
            if self.messages.is_post(m as Ix) {
                forum_posts.push((self.messages.forum[m], m as Ix, ()));
            }
            let parent = self.messages.reply_of[m];
            if parent != NONE {
                replies.push((parent, m as Ix, ()));
            }
        }
        *self.person_messages = Adj::from_edges(np, &creator_edges);
        *self.forum_posts = Adj::from_edges(nf, &forum_posts);
        *self.message_replies = Adj::from_edges(nm, &replies);

        let mut moderates = Vec::with_capacity(nf);
        for f in 0..nf {
            moderates.push((self.forums.moderator[f], f as Ix, ()));
        }
        *self.person_moderates = Adj::from_edges(np, &moderates);

        let mut city_person = Vec::with_capacity(np);
        for p in 0..np {
            city_person.push((self.persons.city[p], p as Ix, ()));
        }
        *self.city_person = Adj::from_edges(self.places.len(), &city_person);

        self.rebuild_date_index();
    }
}

/// Old→new dense-index map with `NONE` for victims.
fn remap(len: usize, victims: &FxHashSet<Ix>) -> Vec<Ix> {
    let mut map = vec![NONE; len];
    let mut next = 0;
    for (i, slot) in map.iter_mut().enumerate() {
        if !victims.contains(&(i as Ix)) {
            *slot = next;
            next += 1;
        }
    }
    map
}

/// Keeps only elements whose index passes `keep`.
fn filter_in_place<T>(items: &mut Vec<T>, keep: impl Fn(usize) -> bool) {
    let mut i = 0;
    items.retain(|_| {
        let k = keep(i);
        i += 1;
        k
    });
}

/// Collects all `(source, target, payload)` edges passing `keep` (in
/// source-major order; sources whose halves are dropped by `keep` just
/// produce no edges).
fn collect_edges<P: Copy>(adj: &Adj<P>, keep: impl Fn(Ix, Ix, P) -> bool) -> Vec<(Ix, Ix, P)> {
    let mut out = Vec::with_capacity(adj.edge_count());
    for u in 0..adj.sources() as Ix {
        for (t, p) in adj.neighbors(u) {
            if keep(u, t, p) {
                out.push((u, t, p));
            }
        }
    }
    out
}

/// Convenience constructor validating that the ids exist is done inside
/// [`Store::apply_deletes`]; this free function only documents intent.
pub fn delete_person(id: u64) -> DeleteOp {
    DeleteOp::Person(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::store_for_config;
    use snb_datagen::GeneratorConfig;

    fn store() -> Store {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 100;
        store_for_config(&c)
    }

    #[test]
    fn delete_knows_edge_only() {
        let mut s = store();
        let a = (0..s.persons.len() as Ix).find(|&p| s.knows.degree(p) > 0).unwrap();
        let b = s.knows.targets_of(a).next().unwrap();
        let (aid, bid) = (s.persons.id[a as usize], s.persons.id[b as usize]);
        let persons_before = s.persons.len();
        let knows_before = s.knows.edge_count();
        let stats = s.apply_deletes(&[DeleteOp::Knows(aid, bid)]).unwrap();
        assert_eq!(stats.knows, 1);
        assert_eq!(stats.persons, 0);
        assert_eq!(s.persons.len(), persons_before);
        assert_eq!(s.knows.edge_count(), knows_before - 2);
        let (a2, b2) = (s.person(aid).unwrap(), s.person(bid).unwrap());
        assert!(!s.knows.contains(a2, b2));
        s.validate_invariants().unwrap();
    }

    #[test]
    fn delete_message_cascades_subtree_and_likes() {
        let mut s = store();
        // A post with replies.
        let post = (0..s.messages.len() as Ix)
            .filter(|&m| s.messages.is_post(m))
            .max_by_key(|&m| s.message_replies.degree(m))
            .unwrap();
        assert!(s.message_replies.degree(post) > 0, "need a replied post");
        let post_id = s.messages.id[post as usize];
        // Collect the reply subtree (inclusive).
        let subtree: Vec<Ix> = {
            let mut out = vec![post];
            let mut stack = vec![post];
            while let Some(m) = stack.pop() {
                for r in s.message_replies.targets_of(m) {
                    out.push(r);
                    stack.push(r);
                }
            }
            out
        };
        let messages_before = s.messages.len();
        let stats = s.apply_deletes(&[DeleteOp::Message(post_id)]).unwrap();
        assert_eq!(stats.messages, subtree.len());
        assert_eq!(s.messages.len(), messages_before - subtree.len());
        assert!(s.message(post_id).is_err());
        s.validate_invariants().unwrap();
        // No dangling reply_of / root_post.
        for m in 0..s.messages.len() {
            assert_ne!(s.messages.root_post[m], NONE);
            let r = s.messages.reply_of[m];
            if r != NONE {
                assert!((r as usize) < s.messages.len());
            }
        }
    }

    #[test]
    fn delete_person_cascades_everything_they_own() {
        let mut s = store();
        let p = (0..s.persons.len() as Ix).max_by_key(|&p| s.knows.degree(p)).unwrap();
        let pid = s.persons.id[p as usize];
        let stats = s.apply_deletes(&[DeleteOp::Person(pid)]).unwrap();
        assert_eq!(stats.persons, 1);
        assert!(stats.forums >= 1, "wall must cascade");
        assert!(s.person(pid).is_err());
        s.validate_invariants().unwrap();
        // Nothing in the store references the victim: creators, likers,
        // members, moderators are all remapped survivors.
        for m in 0..s.messages.len() {
            assert!((s.messages.creator[m] as usize) < s.persons.len());
        }
        for f in 0..s.forums.len() {
            assert!((s.forums.moderator[f] as usize) < s.persons.len());
        }
        // Reverse indexes agree with the rewritten columns.
        for p2 in 0..s.persons.len() as Ix {
            for m in s.person_messages.targets_of(p2) {
                assert_eq!(s.messages.creator[m as usize], p2);
            }
        }
    }

    #[test]
    fn delete_forum_cascades_posts() {
        let mut s = store();
        let f = (0..s.forums.len() as Ix).max_by_key(|&f| s.forum_posts.degree(f)).unwrap();
        let posts = s.forum_posts.degree(f);
        assert!(posts > 0);
        let fid = s.forums.id[f as usize];
        let stats = s.apply_deletes(&[DeleteOp::Forum(fid)]).unwrap();
        assert_eq!(stats.forums, 1);
        assert!(stats.messages >= posts, "posts (and replies) cascade");
        assert!(s.forum(fid).is_err());
        s.validate_invariants().unwrap();
    }

    #[test]
    fn delete_like_and_membership_edges() {
        let mut s = store();
        let (p, m) = {
            let p = (0..s.persons.len() as Ix).find(|&p| s.person_likes.degree(p) > 0).unwrap();
            let (m, _) = s.person_likes.neighbors(p).next().unwrap();
            (p, m)
        };
        let (pid, mid) = (s.persons.id[p as usize], s.messages.id[m as usize]);
        let likes_before = s.person_likes.edge_count();
        s.apply_deletes(&[DeleteOp::Like(pid, mid)]).unwrap();
        assert_eq!(s.person_likes.edge_count(), likes_before - 1);

        let (p, f) = {
            let p = (0..s.persons.len() as Ix).find(|&p| s.member_forum.degree(p) > 0).unwrap();
            let (f, _) = s.member_forum.neighbors(p).next().unwrap();
            (p, f)
        };
        let (pid, fid) = (s.persons.id[p as usize], s.forums.id[f as usize]);
        let members_before = s.forum_member.edge_count();
        s.apply_deletes(&[DeleteOp::Membership(pid, fid)]).unwrap();
        assert_eq!(s.forum_member.edge_count(), members_before - 1);
        s.validate_invariants().unwrap();
    }

    #[test]
    fn unknown_ids_error_without_mutation() {
        let mut s = store();
        let persons = s.persons.len();
        let messages = s.messages.len();
        assert!(s.apply_deletes(&[DeleteOp::Person(987_654_321)]).is_err());
        assert!(s.apply_deletes(&[DeleteOp::Message(987_654_321)]).is_err());
        assert_eq!(s.persons.len(), persons);
        assert_eq!(s.messages.len(), messages);
    }

    #[test]
    fn insert_after_delete_works() {
        let mut s = store();
        let victim = s.persons.id[10];
        s.apply_deletes(&[DeleteOp::Person(victim)]).unwrap();
        // Reuse the freed id: a fresh person may take it.
        let city = s.places.id[s.persons.city[0] as usize];
        s.insert_person(crate::insert::PersonInsert {
            id: victim,
            first_name: "Reborn".into(),
            last_name: "User".into(),
            gender: snb_core::model::Gender::Female,
            birthday: snb_core::Date::from_ymd(1991, 2, 3),
            creation_date: snb_core::DateTime(1_000_000),
            location_ip: "8.8.8.8".into(),
            browser_used: "Safari".into(),
            city_id: city,
            speaks: vec!["en".into()],
            emails: vec![],
            tag_ids: vec![0],
            study_at: vec![],
            work_at: vec![],
        })
        .unwrap();
        assert_eq!(&s.persons.first_name[s.person(victim).unwrap() as usize], "Reborn");
        s.validate_invariants().unwrap();
    }
}
