//! Bulk-loading a [`Store`] from the generator's in-memory output.

use snb_core::datetime::DateTime;
use snb_core::model::{MessageKind, OrganisationKind, PlaceKind};

use snb_datagen::dictionaries::{StaticWorld, BROWSERS, COUNTRIES, TAGS, TAG_CLASSES};
use snb_datagen::graph::RawGraph;
use snb_datagen::GeneratorConfig;

use crate::adj::Adj;
use crate::columns::{Ix, NONE};
use crate::store::Store;

/// Builds a store from a generated graph, optionally excluding records
/// at/after `cut` (pass `None` to load everything, or
/// `Some(config.stream_cut())` to load only the bulk dataset and replay
/// the tail through the insert API).
pub fn build_store(graph: &RawGraph, world: &StaticWorld, cut: Option<DateTime>) -> Store {
    let mut s = Store::default();
    let keep = |t: DateTime| cut.is_none_or(|c| t < c);

    load_static(&mut s, world);

    // --- persons ---
    for p in graph.persons.iter().filter(|p| keep(p.creation_date)) {
        let ix = s.persons.len() as Ix;
        s.person_ix.insert(p.id.0, ix);
        s.persons.id.push(p.id.0);
        s.persons.first_name.push(p.first_name);
        s.persons.last_name.push(p.last_name);
        s.persons.gender.push(p.gender);
        s.persons.birthday.push(p.birthday);
        s.persons.creation_date.push(p.creation_date);
        s.persons.location_ip.push(&p.location_ip);
        s.persons.browser.push(BROWSERS[p.browser as usize].0);
        s.persons.city.push(s.place_ix[&p.city.0]);
        s.persons.emails.push_row(&p.emails);
        s.persons.speaks.push_row(p.languages.iter().map(|&l| world.languages[l as usize]));
    }
    let np = s.persons.len();

    // Person edge lists.
    let mut interest_edges = Vec::new();
    let mut study_edges = Vec::new();
    let mut work_edges = Vec::new();
    let mut city_edges = Vec::new();
    for p in graph.persons.iter().filter(|p| keep(p.creation_date)) {
        let ix = s.person_ix[&p.id.0];
        for t in &p.interests {
            interest_edges.push((ix, s.tag_ix[&t.0], ()));
        }
        if let Some((org, year)) = p.study_at {
            study_edges.push((ix, s.org_ix[&org.0], year));
        }
        for &(org, from) in &p.work_at {
            work_edges.push((ix, s.org_ix[&org.0], from));
        }
        city_edges.push((s.persons.city[ix as usize], ix, ()));
    }
    let nt = s.tags.len();
    let (pi, ip) = crate::adj::forward_reverse(np, nt, &interest_edges);
    *s.person_interest = pi;
    *s.interest_person = ip;
    *s.person_study = Adj::from_edges(np, &study_edges);
    *s.person_work = Adj::from_edges(np, &work_edges);
    *s.city_person = Adj::from_edges(s.places.len(), &city_edges);

    // knows (symmetric; store both directions).
    let mut knows_edges = Vec::new();
    for k in graph.knows.iter().filter(|k| keep(k.creation_date)) {
        let (Some(&a), Some(&b)) = (s.person_ix.get(&k.a.0), s.person_ix.get(&k.b.0)) else {
            continue;
        };
        knows_edges.push((a, b, k.creation_date));
        knows_edges.push((b, a, k.creation_date));
    }
    *s.knows = Adj::from_edges(np, &knows_edges);

    // --- forums ---
    let mut forum_tag_edges = Vec::new();
    let mut moderates = Vec::new();
    for f in graph.forums.iter().filter(|f| keep(f.creation_date)) {
        let Some(&moderator) = s.person_ix.get(&f.moderator.0) else { continue };
        let ix = s.forums.len() as Ix;
        s.forum_ix.insert(f.id.0, ix);
        s.forums.id.push(f.id.0);
        s.forums.title.push(&f.title);
        s.forums.creation_date.push(f.creation_date);
        s.forums.moderator.push(moderator);
        for t in &f.tags {
            forum_tag_edges.push((ix, s.tag_ix[&t.0], ()));
        }
        moderates.push((moderator, ix, ()));
    }
    let nf = s.forums.len();
    let (ft, tf) = crate::adj::forward_reverse(nf, nt, &forum_tag_edges);
    *s.forum_tag = ft;
    *s.tag_forum = tf;
    *s.person_moderates = Adj::from_edges(np, &moderates);

    // memberships
    let mut member_edges = Vec::new();
    for m in graph.memberships.iter().filter(|m| keep(m.join_date)) {
        let (Some(&f), Some(&p)) = (s.forum_ix.get(&m.forum.0), s.person_ix.get(&m.person.0))
        else {
            continue;
        };
        member_edges.push((f, p, m.join_date));
    }
    let fm = Adj::from_edges(nf, &member_edges);
    let rev: Vec<(u32, u32, DateTime)> = member_edges.iter().map(|&(f, p, d)| (p, f, d)).collect();
    *s.forum_member = fm;
    *s.member_forum = Adj::from_edges(np, &rev);

    // --- messages ---
    // First pass: allocate indices for kept messages.
    for m in graph.messages.iter().filter(|m| keep(m.creation_date)) {
        let ix = s.messages.len() as Ix;
        s.message_ix.insert(m.id.0, ix);
        s.messages.id.push(m.id.0);
        s.messages.kind.push(m.kind);
        s.messages.creation_date.push(m.creation_date);
        s.messages.creator.push(s.person_ix[&m.creator.0]);
        s.messages.country.push(s.place_ix[&m.country.0]);
        s.messages.browser.push(BROWSERS[m.browser as usize].0);
        s.messages.location_ip.push(&m.location_ip);
        s.messages.content.push(&m.content);
        s.messages.length.push(m.length);
        s.messages.image_file.push(m.image_file.as_deref().unwrap_or_default());
        s.messages.language.push(m.language.map(|l| world.languages[l as usize]).unwrap_or_default());
        s.messages.forum.push(match m.forum {
            Some(f) => s.forum_ix[&f.0],
            None => NONE,
        });
        s.messages.reply_of.push(NONE); // second pass
        s.messages.root_post.push(NONE);
    }
    // Second pass: intra-message references + edge lists.
    let nm = s.messages.len();
    let mut tag_edges = Vec::new();
    let mut creator_edges = Vec::new();
    let mut forum_post_edges = Vec::new();
    let mut reply_edges = Vec::new();
    for m in graph.messages.iter().filter(|m| keep(m.creation_date)) {
        let ix = s.message_ix[&m.id.0];
        if let Some(parent) = m.reply_of {
            let parent_ix = s.message_ix[&parent.0];
            s.messages.reply_of[ix as usize] = parent_ix;
            reply_edges.push((parent_ix, ix, ()));
        }
        s.messages.root_post[ix as usize] = s.message_ix[&m.root_post.0];
        for t in &m.tags {
            tag_edges.push((ix, s.tag_ix[&t.0], ()));
        }
        creator_edges.push((s.messages.creator[ix as usize], ix, ()));
        if m.kind == MessageKind::Post {
            forum_post_edges.push((s.messages.forum[ix as usize], ix, ()));
        }
    }
    let (mt, tm) = crate::adj::forward_reverse(nm, nt, &tag_edges);
    *s.message_tag = mt;
    *s.tag_message = tm;
    *s.person_messages = Adj::from_edges(np, &creator_edges);
    *s.forum_posts = Adj::from_edges(nf, &forum_post_edges);
    *s.message_replies = Adj::from_edges(nm, &reply_edges);

    // --- likes ---
    let mut like_edges = Vec::new();
    for l in graph.likes.iter().filter(|l| keep(l.creation_date)) {
        let (Some(&p), Some(&m)) = (s.person_ix.get(&l.person.0), s.message_ix.get(&l.message.0))
        else {
            continue;
        };
        like_edges.push((p, m, l.creation_date));
    }
    *s.person_likes = Adj::from_edges(np, &like_edges);
    let rev: Vec<(u32, u32, DateTime)> = like_edges.iter().map(|&(p, m, d)| (m, p, d)).collect();
    *s.message_likes = Adj::from_edges(nm, &rev);

    s.rebuild_date_index();
    s.shrink_columns();
    s
}

/// Loads the static part of the schema (places, tags, tag classes,
/// organisations) from the dictionary world.
pub(crate) fn load_static(s: &mut Store, world: &StaticWorld) {
    // Places: ids are the StaticWorld's dense layout (continents,
    // countries, cities).
    let continents = world.continent_place.len();
    let countries = world.country_place.len();
    for (pid, name) in world.place_names.iter().enumerate() {
        let ix = pid as Ix;
        s.place_ix.insert(pid as u64, ix);
        s.places.id.push(pid as u64);
        s.places.name.push(name);
        let kind = if pid < continents {
            PlaceKind::Continent
        } else if pid < continents + countries {
            PlaceKind::Country
        } else {
            PlaceKind::City
        };
        s.places.kind.push(kind);
        let parent = match kind {
            PlaceKind::Continent => NONE,
            PlaceKind::Country => {
                let ci = pid - continents;
                world.continent_place[COUNTRIES[ci].continent].0 as Ix
            }
            PlaceKind::City => {
                let country = world
                    .country_of_city(snb_core::model::PlaceId(pid as u64))
                    .expect("city has country");
                world.country_place[country].0 as Ix
            }
        };
        s.places.part_of.push(parent);
        s.place_by_name.insert(name.clone(), ix);
    }
    let mut child_edges = Vec::new();
    for (pid, &parent) in s.places.part_of.iter().enumerate() {
        if parent != NONE {
            child_edges.push((parent, pid as Ix, ()));
        }
    }
    *s.place_children = Adj::from_edges(s.places.len(), &child_edges);

    // Tag classes.
    for (ci, &(name, parent)) in TAG_CLASSES.iter().enumerate() {
        let ix = ci as Ix;
        s.tag_class_ix.insert(ci as u64, ix);
        s.tag_classes.id.push(ci as u64);
        s.tag_classes.name.push(name);
        s.tag_classes.parent.push(if ci == 0 { NONE } else { parent as Ix });
        s.tag_class_by_name.insert(name.to_string(), ix);
    }
    let mut class_children = Vec::new();
    for (ci, &parent) in s.tag_classes.parent.iter().enumerate() {
        if parent != NONE {
            class_children.push((parent, ci as Ix, ()));
        }
    }
    *s.tagclass_children = Adj::from_edges(s.tag_classes.len(), &class_children);

    // Tags.
    let mut class_tag_edges = Vec::new();
    for (ti, &(name, class)) in TAGS.iter().enumerate() {
        let ix = ti as Ix;
        s.tag_ix.insert(ti as u64, ix);
        s.tags.id.push(ti as u64);
        s.tags.name.push(name);
        s.tags.class.push(class as Ix);
        s.tag_by_name.insert(name.to_string(), ix);
        class_tag_edges.push((class as Ix, ix, ()));
    }
    *s.tagclass_tags = Adj::from_edges(s.tag_classes.len(), &class_tag_edges);

    // Organisations: universities first, then companies (the raw-id
    // convention shared with the serializer).
    for (ui, u) in world.universities.iter().enumerate() {
        let ix = s.organisations.len() as Ix;
        s.org_ix.insert(ui as u64, ix);
        s.organisations.id.push(ui as u64);
        s.organisations.name.push(&u.name);
        s.organisations.kind.push(OrganisationKind::University);
        s.organisations.place.push(u.city.0 as Ix);
    }
    let base = world.universities.len() as u64;
    for (ci, (name, country)) in world.companies.iter().enumerate() {
        let ix = s.organisations.len() as Ix;
        s.org_ix.insert(base + ci as u64, ix);
        s.organisations.id.push(base + ci as u64);
        s.organisations.name.push(name);
        s.organisations.kind.push(OrganisationKind::Company);
        s.organisations.place.push(world.country_place[*country].0 as Ix);
    }
}

/// Convenience: generate a scale factor and load everything (no
/// bulk/stream split). The workhorse constructor for tests, examples
/// and benchmarks.
pub fn store_for_config(config: &GeneratorConfig) -> Store {
    let world = StaticWorld::build(config.seed);
    let graph = snb_datagen::generate(config);
    build_store(&graph, &world, None)
}

/// Like [`store_for_config`] but split at the stream cut, returning the
/// bulk store together with the update events for replay.
pub fn bulk_store_and_stream(
    config: &GeneratorConfig,
) -> (Store, Vec<snb_datagen::stream::TimedEvent>) {
    let world = StaticWorld::build(config.seed);
    let graph = snb_datagen::generate(config);
    let cut = config.stream_cut();
    let store = build_store(&graph, &world, Some(cut));
    let events = snb_datagen::stream::build_update_streams(&graph, cut);
    (store, events)
}

/// Summary counts used by experiment E1 (scale statistics).
pub struct StoreStats {
    /// Total nodes (all entity types).
    pub nodes: u64,
    /// Total edges (all relation instances).
    pub edges: u64,
    /// Persons.
    pub persons: u64,
    /// Forums.
    pub forums: u64,
    /// Posts.
    pub posts: u64,
    /// Comments.
    pub comments: u64,
    /// `knows` edges (undirected count).
    pub knows: u64,
    /// Likes.
    pub likes: u64,
}

impl Store {
    /// Computes summary statistics.
    pub fn stats(&self) -> StoreStats {
        let posts = self.messages.kind.iter().filter(|k| **k == MessageKind::Post).count() as u64;
        let nodes = (self.persons.len()
            + self.forums.len()
            + self.messages.len()
            + self.places.len()
            + self.tags.len()
            + self.tag_classes.len()
            + self.organisations.len()) as u64;
        let edges = (self.knows.edge_count() / 2
            + self.person_interest.edge_count()
            + self.person_study.edge_count()
            + self.person_work.edge_count()
            + self.persons.len() // person isLocatedIn
            + self.forum_member.edge_count()
            + self.forum_tag.edge_count()
            + self.forums.len() // hasModerator
            + self.message_tag.edge_count()
            + self.messages.len() * 2 // hasCreator + isLocatedIn
            + self.forum_posts.edge_count() // containerOf
            + self.message_replies.edge_count() // replyOf
            + self.person_likes.edge_count()
            + self.places.len() // isPartOf (continents contribute 0 but close enough: count non-NONE)
            + self.tags.len() // hasType
            + self.tag_classes.len().saturating_sub(1) // isSubclassOf
            + self.organisations.len()) as u64; // org isLocatedIn
        StoreStats {
            nodes,
            edges,
            persons: self.persons.len() as u64,
            forums: self.forums.len() as u64,
            posts,
            comments: self.messages.len() as u64 - posts,
            knows: (self.knows.edge_count() / 2) as u64,
            likes: self.person_likes.edge_count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::scale::ScaleFactor;

    fn config(n: u64) -> GeneratorConfig {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = n;
        c
    }

    #[test]
    fn builds_and_validates() {
        let s = store_for_config(&config(80));
        s.validate_invariants().unwrap();
        assert_eq!(s.persons.len(), 80);
        assert!(s.messages.len() > 100);
        assert!(s.forums.len() >= 80); // at least one wall each
    }

    #[test]
    fn id_maps_round_trip() {
        let s = store_for_config(&config(60));
        for (ix, &id) in s.persons.id.iter().enumerate() {
            assert_eq!(s.person_ix[&id], ix as Ix);
        }
        for (ix, &id) in s.messages.id.iter().enumerate() {
            assert_eq!(s.message_ix[&id], ix as Ix);
        }
    }

    #[test]
    fn reply_edges_mirror_columns() {
        let s = store_for_config(&config(60));
        for m in 0..s.messages.len() as Ix {
            let parent = s.messages.reply_of[m as usize];
            if parent != NONE {
                assert!(s.message_replies.targets_of(parent).any(|r| r == m), "reply edge missing");
            }
        }
        for m in 0..s.messages.len() as Ix {
            for r in s.message_replies.targets_of(m) {
                assert_eq!(s.messages.reply_of[r as usize], m);
            }
        }
    }

    #[test]
    fn place_hierarchy_is_three_levels() {
        let s = store_for_config(&config(40));
        for p in 0..s.places.len() {
            match s.places.kind[p] {
                PlaceKind::Continent => assert_eq!(s.places.part_of[p], NONE),
                PlaceKind::Country => {
                    let parent = s.places.part_of[p] as usize;
                    assert_eq!(s.places.kind[parent], PlaceKind::Continent);
                }
                PlaceKind::City => {
                    let parent = s.places.part_of[p] as usize;
                    assert_eq!(s.places.kind[parent], PlaceKind::Country);
                }
            }
        }
    }

    #[test]
    fn tagclass_subtree_contains_descendants() {
        let s = store_for_config(&config(40));
        let person_class = s.tag_class_named("Person").unwrap();
        let subtree = s.tagclass_subtree(person_class);
        let artist = s.tag_class_named("Artist").unwrap();
        let musical = s.tag_class_named("MusicalArtist").unwrap();
        assert!(subtree.contains(&artist));
        assert!(subtree.contains(&musical));
        let work = s.tag_class_named("Work").unwrap();
        assert!(!subtree.contains(&work));
        // tag_in_class_subtree agrees with subtree membership.
        for t in 0..s.tags.len() as Ix {
            let by_walk = s.tag_in_class_subtree(t, person_class);
            let by_set = subtree.contains(&s.tags.class[t as usize]);
            assert_eq!(by_walk, by_set, "tag {t}");
        }
    }

    #[test]
    fn bulk_split_smaller_than_full() {
        let c = config(120);
        let full = store_for_config(&c);
        let (bulk, events) = bulk_store_and_stream(&c);
        assert!(bulk.messages.len() < full.messages.len());
        assert!(!events.is_empty());
        bulk.validate_invariants().unwrap();
    }

    #[test]
    fn persons_in_country_matches_columns() {
        let s = store_for_config(&config(150));
        let mut via_helper = 0usize;
        for country in
            (0..s.places.len() as Ix).filter(|&p| s.places.kind[p as usize] == PlaceKind::Country)
        {
            for p in s.persons_in_country(country) {
                assert_eq!(s.person_country(p), country);
                via_helper += 1;
            }
        }
        assert_eq!(via_helper, s.persons.len());
    }

    #[test]
    fn date_index_windows_match_scans() {
        let mut s = store_for_config(&config(80));
        assert!(s.date_index_fresh());
        // Probe a handful of cut points, including both extremes.
        let mut cuts = s.messages.creation_date.to_vec();
        cuts.sort_unstable();
        for &t in
            [cuts[0], cuts[cuts.len() / 3], cuts[cuts.len() / 2], *cuts.last().unwrap()].iter()
        {
            let before = s.messages_created_before(t).unwrap();
            let after = s.messages_created_after(t).unwrap();
            let scan_before: Vec<Ix> = (0..s.messages.len() as Ix)
                .filter(|&m| s.messages.creation_date[m as usize] < t)
                .collect();
            let mut sorted = before.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, scan_before);
            let at = (0..s.messages.len()).filter(|&m| s.messages.creation_date[m] == t).count();
            assert_eq!(before.len() + at + after.len(), s.messages.len());
        }
        // Staleness: truncate the index and confirm the accessors bail.
        s.message_by_date.pop();
        assert!(!s.date_index_fresh());
        assert!(s.messages_created_before(cuts[0]).is_none());
        s.rebuild_date_index();
        assert!(s.date_index_fresh());
        // Chunk surface tiles the column blocks exactly.
        let total: usize = s.message_chunks(1000).map(|r| r.len()).sum();
        assert_eq!(total, s.messages.len());
        let total: usize = s.vertex_chunks(7).map(|r| r.len()).sum();
        assert_eq!(total, s.persons.len());
    }

    #[test]
    fn thread_forum_resolves_for_comments() {
        let s = store_for_config(&config(80));
        for m in 0..s.messages.len() as Ix {
            let f = s.thread_forum(m);
            assert_ne!(f, NONE, "thread forum missing for message {m}");
            assert!((f as usize) < s.forums.len());
        }
    }
}
