#![warn(missing_docs)]

//! # snb-store
//!
//! The System Under Test of this reproduction: an in-memory columnar
//! property-graph store purpose-built for the SNB schema.
//!
//! * [`columns`] — struct-of-arrays attribute storage per entity type,
//!   dense `u32` indices, raw-id hash indexes;
//! * [`intern`] — the global string interner plus packed string
//!   columns (`u32` symbols / byte arenas instead of `Vec<String>`);
//! * [`adj`] — CSR adjacency (forward + reverse) for every relation,
//!   with an insert overflow so the Interactive workload's IU 1–8 don't
//!   rebuild anything on the write path;
//! * [`build`] — bulk load from the generator's in-memory output (with
//!   optional bulk/stream split);
//! * [`image`] — the checksummed store-image codec (full store ⇄ packed
//!   bytes) backing the server's snapshot files and follower bootstrap;
//! * [`load`] — bulk load from a CsvBasic dataset directory;
//! * [`insert`] — the IU 1–8 write operations and update-stream replay;
//! * [`partition`] — horizontal hash shards behind the
//!   [`PartitionedStore`] facade (ownership lists + per-shard date
//!   indexes), preserving the monolithic read API and determinism.

pub mod adj;
pub mod build;
pub mod columns;
pub mod cow;
pub mod image;
pub mod delete;
pub mod insert;
pub mod intern;
pub mod load;
pub mod partition;
pub mod snapshot;
mod store;
pub mod stream_build;

pub use adj::Adj;
pub use build::{build_store, bulk_store_and_stream, store_for_config, StoreStats};
pub use columns::{Ix, NONE};
pub use cow::CowBox;
pub use image::{decode_store, encode_store, fnv64 as image_fnv64};
pub use intern::{interner, PackCol, PackListCol, StrInterner, Sym, SymCol, SymListCol};
pub use delete::{DeleteOp, DeleteStats};
pub use insert::{CommentInsert, ForumInsert, PersonInsert, PostInsert};
pub use partition::{partition_of, partition_of_raw, PartitionLayout, PartitionedStore};
pub use snapshot::{SnapshotCell, SnapshotStats, StoreHandle, StoreSnapshot, StoreVersion};
pub use store::Store;
pub use stream_build::{
    streaming_bulk_store_and_stream, streaming_store_for_config, StreamBuilder,
};
