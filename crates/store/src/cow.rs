//! Copy-on-write component boxes for cheap store versioning.
//!
//! The snapshot-publication scheme (see [`crate::snapshot`]) needs
//! `Store::clone` to be near-free: a published version and the writer's
//! next version share every component a write batch does *not* touch.
//! [`CowBox`] delivers that with zero churn in the mutation code: every
//! top-level `Store` component sits behind an `Arc`, reads deref
//! through shared references, and the first mutable access inside a
//! write batch triggers `Arc::make_mut` — cloning exactly the touched
//! component and nothing else. Components whose `Arc` is unique (the
//! common case while bulk-loading) mutate in place with no copy at all.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A copy-on-write box: shared on clone, deep-copied on first mutable
/// access when shared. `Deref`/`DerefMut` make it transparent at every
/// field-access and method-call site, so wrapping a struct field in
/// `CowBox` does not change the code that reads or mutates it — only
/// whole-value assignment sites need a `*` deref or [`CowBox::set`].
pub struct CowBox<T>(Arc<T>);

impl<T> CowBox<T> {
    /// Wraps a value.
    pub fn new(value: T) -> CowBox<T> {
        CowBox(Arc::new(value))
    }

    /// Replaces the contents without cloning the old value first (a
    /// plain `*b = v` would `make_mut` — i.e. deep-copy — the value
    /// about to be discarded when the box is shared).
    pub fn set(&mut self, value: T) {
        self.0 = Arc::new(value);
    }

    /// Whether two boxes share the same underlying allocation — the
    /// observable COW property tests assert on.
    pub fn ptr_eq(a: &CowBox<T>, b: &CowBox<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl<T> Deref for CowBox<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: Clone> DerefMut for CowBox<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        Arc::make_mut(&mut self.0)
    }
}

impl<T> Clone for CowBox<T> {
    #[inline]
    fn clone(&self) -> CowBox<T> {
        CowBox(Arc::clone(&self.0))
    }
}

impl<T: Default> Default for CowBox<T> {
    fn default() -> CowBox<T> {
        CowBox::new(T::default())
    }
}

impl<T> From<T> for CowBox<T> {
    fn from(value: T) -> CowBox<T> {
        CowBox::new(value)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CowBox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: PartialEq> PartialEq for CowBox<T> {
    fn eq(&self, other: &CowBox<T>) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl<'a, T> IntoIterator for &'a CowBox<T>
where
    &'a T: IntoIterator,
{
    type Item = <&'a T as IntoIterator>::Item;
    type IntoIter = <&'a T as IntoIterator>::IntoIter;
    fn into_iter(self) -> Self::IntoIter {
        (&**self).into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_until_mutated() {
        let mut a: CowBox<Vec<u32>> = vec![1, 2, 3].into();
        let b = a.clone();
        assert!(CowBox::ptr_eq(&a, &b), "clone must share the allocation");
        a.push(4);
        assert!(!CowBox::ptr_eq(&a, &b), "mutation must unshare");
        assert_eq!(*a, vec![1, 2, 3, 4]);
        assert_eq!(*b, vec![1, 2, 3], "the shared copy must be untouched");
    }

    #[test]
    fn unique_box_mutates_in_place() {
        let mut a: CowBox<Vec<u32>> = vec![1].into();
        let before = a.as_ptr();
        a.push(2);
        assert_eq!(a.as_ptr(), before, "unique boxes must not copy");
    }

    #[test]
    fn set_replaces_without_copying_old() {
        let mut a: CowBox<Vec<u32>> = vec![1, 2].into();
        let b = a.clone();
        a.set(vec![9]);
        assert_eq!(*a, vec![9]);
        assert_eq!(*b, vec![1, 2]);
    }

    #[test]
    fn ref_iteration_delegates() {
        let a: CowBox<Vec<u32>> = vec![5, 6].into();
        let sum: u32 = (&a).into_iter().copied().sum();
        assert_eq!(sum, 11);
        let mut via_for = 0;
        for &x in &a {
            via_for += x;
        }
        assert_eq!(via_for, 11);
    }
}
