//! Store-image codec: the full [`Store`] ⇄ a compact checksummed byte
//! image.
//!
//! This is the payload format of the on-disk store-image snapshot (the
//! file framing — magic, header, fsync/rename discipline — lives in the
//! server crate next to the WAL). The codec's job is to make recovery
//! and follower bootstrap cost proportional to *live data*, not to
//! history length: a recovered process decodes this image and replays
//! only the WAL tail written after it.
//!
//! Layout: a fixed sequence of tagged sections, each
//! `[u8 tag][u32 len][u64 fnv64(body)][body]`. Sections cover the seven
//! entity column groups and all 21 adjacencies. Hash indexes, the
//! name→index maps, and the date permutation index are *not* stored —
//! they are deterministic functions of the columns and are rebuilt at
//! decode time (same insert order as the bulk loader, so lookups behave
//! identically).
//!
//! Within sections everything is varints: sorted id and timestamp
//! columns are zigzag-delta packed (~1–2 bytes/row), `Ix` references are
//! plain varints, interned string columns are written as a per-column
//! local dictionary plus per-row dictionary indices and re-interned into
//! the process-global dictionary at load (symbols are process-local and
//! must never cross a process boundary). Any length/checksum mismatch,
//! unknown tag, or trailing bytes decodes to a hard
//! [`SnbError::Parse`] — a corrupt image is refused, never half-loaded.

use rustc_hash::FxHashMap;
use snb_core::datetime::{Date, DateTime};
use snb_core::model::{Gender, MessageKind, OrganisationKind, PlaceKind};
use snb_core::{SnbError, SnbResult};

use crate::adj::Adj;
use crate::columns::{
    ForumCols, Ix, MessageCols, OrganisationCols, PersonCols, PlaceCols, TagClassCols, TagCols,
};
use crate::intern::{
    get_varint, interner, pack_deltas, put_varint, unpack_deltas, PackCol, PackListCol, SymCol,
    SymListCol,
};
use crate::store::Store;

/// FNV-1a 64-bit — the same checksum the WAL uses for its records, so
/// one corruption-detection story covers both durability artifacts.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// Section tags, in the exact order they appear in the image. Decode
// enforces this order: a permuted or truncated image is corrupt.
const SECT_PERSONS: u8 = 1;
const SECT_FORUMS: u8 = 2;
const SECT_MESSAGES: u8 = 3;
const SECT_PLACES: u8 = 4;
const SECT_TAGS: u8 = 5;
const SECT_TAG_CLASSES: u8 = 6;
const SECT_ORGANISATIONS: u8 = 7;
const SECT_ADJ_BASE: u8 = 10; // 10..=30: the 21 adjacencies in Store field order.
const ADJ_COUNT: u8 = 21;

fn corrupt(detail: impl Into<String>) -> SnbError {
    SnbError::Parse { context: "store image".into(), detail: detail.into() }
}

/// A bounds-checked read cursor over one section body.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn varint(&mut self) -> SnbResult<u64> {
        get_varint(self.buf, &mut self.pos).ok_or_else(|| corrupt("truncated varint"))
    }

    fn len(&mut self) -> SnbResult<usize> {
        usize::try_from(self.varint()?).map_err(|_| corrupt("length overflow"))
    }

    fn ix(&mut self) -> SnbResult<Ix> {
        u32::try_from(self.varint()?).map_err(|_| corrupt("u32 overflow"))
    }

    fn bytes(&mut self, n: usize) -> SnbResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| corrupt("truncated byte run"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn str(&mut self) -> SnbResult<&'a str> {
        let n = self.len()?;
        std::str::from_utf8(self.bytes(n)?).map_err(|_| corrupt("invalid UTF-8 in string"))
    }

    fn deltas(&mut self, n: usize) -> SnbResult<Vec<i64>> {
        unpack_deltas(self.buf, &mut self.pos, n).ok_or_else(|| corrupt("truncated delta run"))
    }

    fn finish(&self) -> SnbResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt(format!("{} trailing bytes in section", self.buf.len() - self.pos)))
        }
    }
}

// ---- scalar column helpers -------------------------------------------------

fn put_u64s(out: &mut Vec<u8>, values: &[u64]) {
    put_varint(out, values.len() as u64);
    pack_deltas(values.iter().map(|&v| v as i64), out);
}

fn get_u64s(cur: &mut Cur<'_>) -> SnbResult<Vec<u64>> {
    let n = cur.len()?;
    Ok(cur.deltas(n)?.into_iter().map(|v| v as u64).collect())
}

fn put_ixs(out: &mut Vec<u8>, values: &[Ix]) {
    put_varint(out, values.len() as u64);
    for &v in values {
        put_varint(out, u64::from(v));
    }
}

fn get_ixs(cur: &mut Cur<'_>) -> SnbResult<Vec<Ix>> {
    let n = cur.len()?;
    (0..n).map(|_| cur.ix()).collect()
}

fn put_u32s(out: &mut Vec<u8>, values: &[u32]) {
    put_ixs(out, values);
}

fn get_u32s(cur: &mut Cur<'_>) -> SnbResult<Vec<u32>> {
    get_ixs(cur)
}

fn put_dates(out: &mut Vec<u8>, values: &[Date]) {
    put_varint(out, values.len() as u64);
    pack_deltas(values.iter().map(|d| i64::from(d.0)), out);
}

fn get_dates(cur: &mut Cur<'_>) -> SnbResult<Vec<Date>> {
    let n = cur.len()?;
    cur.deltas(n)?
        .into_iter()
        .map(|v| i32::try_from(v).map(Date).map_err(|_| corrupt("date out of range")))
        .collect()
}

fn put_datetimes(out: &mut Vec<u8>, values: &[DateTime]) {
    put_varint(out, values.len() as u64);
    pack_deltas(values.iter().map(|d| d.0), out);
}

fn get_datetimes(cur: &mut Cur<'_>) -> SnbResult<Vec<DateTime>> {
    let n = cur.len()?;
    Ok(cur.deltas(n)?.into_iter().map(DateTime).collect())
}

fn put_enums<T: Copy>(out: &mut Vec<u8>, values: &[T], enc: impl Fn(T) -> u8) {
    put_varint(out, values.len() as u64);
    out.extend(values.iter().map(|&v| enc(v)));
}

fn get_enums<T>(cur: &mut Cur<'_>, dec: impl Fn(u8) -> Option<T>) -> SnbResult<Vec<T>> {
    let n = cur.len()?;
    cur.bytes(n)?
        .iter()
        .map(|&b| dec(b).ok_or_else(|| corrupt(format!("invalid enum byte {b}"))))
        .collect()
}

// ---- string column helpers -------------------------------------------------

/// Builds a local dictionary over an iterator of symbols and writes
/// `dict_len, dict strings..., rows..., per-row local index`.
fn put_symcol(out: &mut Vec<u8>, col: &SymCol) {
    let (dict, locals) = localize(col.syms().iter().copied());
    put_varint(out, col.len() as u64);
    put_dict(out, &dict);
    for local in locals {
        put_varint(out, u64::from(local));
    }
}

fn localize(syms: impl Iterator<Item = u32>) -> (Vec<&'static str>, Vec<u32>) {
    let mut map: FxHashMap<u32, u32> = FxHashMap::default();
    let mut dict = Vec::new();
    let mut locals = Vec::new();
    for sym in syms {
        let local = *map.entry(sym).or_insert_with(|| {
            dict.push(interner().resolve(sym));
            (dict.len() - 1) as u32
        });
        locals.push(local);
    }
    (dict, locals)
}

fn put_dict(out: &mut Vec<u8>, dict: &[&str]) {
    put_varint(out, dict.len() as u64);
    for s in dict {
        put_varint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
}

fn get_dict(cur: &mut Cur<'_>) -> SnbResult<Vec<u32>> {
    let n = cur.len()?;
    (0..n).map(|_| cur.str().map(|s| interner().intern(s))).collect()
}

fn get_symcol(cur: &mut Cur<'_>) -> SnbResult<SymCol> {
    let rows = cur.len()?;
    let dict = get_dict(cur)?;
    let mut col = SymCol::default();
    for _ in 0..rows {
        let local = cur.len()?;
        let sym = *dict.get(local).ok_or_else(|| corrupt("dictionary index out of range"))?;
        col.push_sym(sym);
    }
    Ok(col)
}

fn put_packcol(out: &mut Vec<u8>, col: &PackCol) {
    put_varint(out, col.len() as u64);
    for s in col.iter() {
        put_varint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
}

fn get_packcol(cur: &mut Cur<'_>) -> SnbResult<PackCol> {
    let rows = cur.len()?;
    let mut col = PackCol::default();
    for _ in 0..rows {
        col.push(cur.str()?);
    }
    Ok(col)
}

fn put_symlist(out: &mut Vec<u8>, col: &SymListCol) {
    put_varint(out, col.len() as u64);
    for i in 0..col.len() {
        put_varint(out, col.row_len(i) as u64);
        for s in col.row(i) {
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn get_symlist(cur: &mut Cur<'_>) -> SnbResult<SymListCol> {
    let rows = cur.len()?;
    let mut col = SymListCol::default();
    let mut row: Vec<&str> = Vec::new();
    for _ in 0..rows {
        let k = cur.len()?;
        row.clear();
        for _ in 0..k {
            row.push(cur.str()?);
        }
        col.push_row(&row);
    }
    Ok(col)
}

fn put_packlist(out: &mut Vec<u8>, col: &PackListCol) {
    put_varint(out, col.len() as u64);
    for i in 0..col.len() {
        put_varint(out, col.row_len(i) as u64);
        for s in col.row(i) {
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn get_packlist(cur: &mut Cur<'_>) -> SnbResult<PackListCol> {
    let rows = cur.len()?;
    let mut col = PackListCol::default();
    let mut row: Vec<&str> = Vec::new();
    for _ in 0..rows {
        let k = cur.len()?;
        row.clear();
        for _ in 0..k {
            row.push(cur.str()?);
        }
        col.push_row(&row);
    }
    Ok(col)
}

// ---- adjacency helpers -----------------------------------------------------

/// Writes one adjacency: source count, per-source degrees, targets, then
/// the payload run (payload encoding differs per type). Adjacencies with
/// insert overflow are compacted into a clone first — the image always
/// holds pure CSR.
fn put_adj<P: Copy>(
    out: &mut Vec<u8>,
    adj: &Adj<P>,
    put_payloads: impl FnOnce(&mut Vec<u8>, &[P]),
) {
    let compacted;
    let adj = if adj.has_overflow() {
        let mut c = adj.clone();
        c.compact();
        compacted = c;
        &compacted
    } else {
        adj
    };
    let (offsets, targets, payloads) = adj.csr_parts();
    put_varint(out, (offsets.len() - 1) as u64);
    for w in offsets.windows(2) {
        put_varint(out, u64::from(w[1] - w[0]));
    }
    put_varint(out, targets.len() as u64);
    for &t in targets {
        put_varint(out, u64::from(t));
    }
    put_payloads(out, payloads);
}

fn get_adj<P: Copy>(
    cur: &mut Cur<'_>,
    get_payloads: impl FnOnce(&mut Cur<'_>, usize) -> SnbResult<Vec<P>>,
) -> SnbResult<Adj<P>> {
    let sources = cur.len()?;
    let mut offsets = Vec::with_capacity(sources + 1);
    offsets.push(0u32);
    let mut total = 0u64;
    for _ in 0..sources {
        total += cur.varint()?;
        let off = u32::try_from(total).map_err(|_| corrupt("adjacency edge count overflow"))?;
        offsets.push(off);
    }
    let edge_count = cur.len()?;
    if edge_count != total as usize {
        return Err(corrupt(format!("adjacency degrees sum {total} != edge count {edge_count}")));
    }
    let targets: Vec<u32> = (0..edge_count).map(|_| cur.ix()).collect::<SnbResult<_>>()?;
    let payloads = get_payloads(cur, edge_count)?;
    if payloads.len() != edge_count {
        return Err(corrupt("adjacency payload count mismatch"));
    }
    Ok(Adj::from_csr_parts(offsets, targets, payloads))
}

fn put_adj_unit(out: &mut Vec<u8>, adj: &Adj<()>) {
    put_adj(out, adj, |_, _| {});
}

fn get_adj_unit(cur: &mut Cur<'_>) -> SnbResult<Adj<()>> {
    get_adj(cur, |_, n| Ok(vec![(); n]))
}

fn put_adj_datetime(out: &mut Vec<u8>, adj: &Adj<DateTime>) {
    put_adj(out, adj, |out, p| {
        pack_deltas(p.iter().map(|d| d.0), out);
    });
}

fn get_adj_datetime(cur: &mut Cur<'_>) -> SnbResult<Adj<DateTime>> {
    get_adj(cur, |cur, n| Ok(cur.deltas(n)?.into_iter().map(DateTime).collect()))
}

fn put_adj_i32(out: &mut Vec<u8>, adj: &Adj<i32>) {
    put_adj(out, adj, |out, p| {
        pack_deltas(p.iter().map(|&v| i64::from(v)), out);
    });
}

fn get_adj_i32(cur: &mut Cur<'_>) -> SnbResult<Adj<i32>> {
    get_adj(cur, |cur, n| {
        cur.deltas(n)?
            .into_iter()
            .map(|v| i32::try_from(v).map_err(|_| corrupt("i32 payload out of range")))
            .collect()
    })
}

// ---- enum byte maps --------------------------------------------------------

fn gender_enc(g: Gender) -> u8 {
    match g {
        Gender::Male => 0,
        Gender::Female => 1,
    }
}

fn gender_dec(b: u8) -> Option<Gender> {
    match b {
        0 => Some(Gender::Male),
        1 => Some(Gender::Female),
        _ => None,
    }
}

fn msg_kind_enc(k: MessageKind) -> u8 {
    match k {
        MessageKind::Post => 0,
        MessageKind::Comment => 1,
    }
}

fn msg_kind_dec(b: u8) -> Option<MessageKind> {
    match b {
        0 => Some(MessageKind::Post),
        1 => Some(MessageKind::Comment),
        _ => None,
    }
}

fn place_kind_enc(k: PlaceKind) -> u8 {
    match k {
        PlaceKind::City => 0,
        PlaceKind::Country => 1,
        PlaceKind::Continent => 2,
    }
}

fn place_kind_dec(b: u8) -> Option<PlaceKind> {
    match b {
        0 => Some(PlaceKind::City),
        1 => Some(PlaceKind::Country),
        2 => Some(PlaceKind::Continent),
        _ => None,
    }
}

fn org_kind_enc(k: OrganisationKind) -> u8 {
    match k {
        OrganisationKind::University => 0,
        OrganisationKind::Company => 1,
    }
}

fn org_kind_dec(b: u8) -> Option<OrganisationKind> {
    match b {
        0 => Some(OrganisationKind::University),
        1 => Some(OrganisationKind::Company),
        _ => None,
    }
}

// ---- sections --------------------------------------------------------------

fn section(out: &mut Vec<u8>, tag: u8, body: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(u32::try_from(body.len()).expect("section over 4 GiB")).to_le_bytes());
    out.extend_from_slice(&fnv64(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// Reads the next section, enforcing the expected tag and verifying the
/// body checksum.
fn read_section<'a>(buf: &'a [u8], pos: &mut usize, want_tag: u8) -> SnbResult<Cur<'a>> {
    let head_end = pos.checked_add(13).filter(|&e| e <= buf.len());
    let head_end = head_end.ok_or_else(|| corrupt("truncated section header"))?;
    let tag = buf[*pos];
    if tag != want_tag {
        return Err(corrupt(format!("expected section {want_tag}, found {tag}")));
    }
    let len =
        u32::from_le_bytes(buf[*pos + 1..*pos + 5].try_into().expect("4 bytes")) as usize;
    let sum = u64::from_le_bytes(buf[*pos + 5..*pos + 13].try_into().expect("8 bytes"));
    let body_end = head_end.checked_add(len).filter(|&e| e <= buf.len());
    let body_end = body_end.ok_or_else(|| corrupt(format!("section {tag} body truncated")))?;
    let body = &buf[head_end..body_end];
    if fnv64(body) != sum {
        return Err(corrupt(format!("section {tag} checksum mismatch")));
    }
    *pos = body_end;
    Ok(Cur { buf: body, pos: 0 })
}

fn encode_persons(c: &PersonCols) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64s(&mut b, &c.id);
    put_symcol(&mut b, &c.first_name);
    put_symcol(&mut b, &c.last_name);
    put_enums(&mut b, &c.gender, gender_enc);
    put_dates(&mut b, &c.birthday);
    put_datetimes(&mut b, &c.creation_date);
    put_packcol(&mut b, &c.location_ip);
    put_symcol(&mut b, &c.browser);
    put_ixs(&mut b, &c.city);
    put_packlist(&mut b, &c.emails);
    put_symlist(&mut b, &c.speaks);
    b
}

fn decode_persons(cur: &mut Cur<'_>) -> SnbResult<PersonCols> {
    let c = PersonCols {
        id: get_u64s(cur)?,
        first_name: get_symcol(cur)?,
        last_name: get_symcol(cur)?,
        gender: get_enums(cur, gender_dec)?,
        birthday: get_dates(cur)?,
        creation_date: get_datetimes(cur)?,
        location_ip: get_packcol(cur)?,
        browser: get_symcol(cur)?,
        city: get_ixs(cur)?,
        emails: get_packlist(cur)?,
        speaks: get_symlist(cur)?,
    };
    cur.finish()?;
    Ok(c)
}

fn encode_forums(c: &ForumCols) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64s(&mut b, &c.id);
    put_packcol(&mut b, &c.title);
    put_datetimes(&mut b, &c.creation_date);
    put_ixs(&mut b, &c.moderator);
    b
}

fn decode_forums(cur: &mut Cur<'_>) -> SnbResult<ForumCols> {
    let c = ForumCols {
        id: get_u64s(cur)?,
        title: get_packcol(cur)?,
        creation_date: get_datetimes(cur)?,
        moderator: get_ixs(cur)?,
    };
    cur.finish()?;
    Ok(c)
}

fn encode_messages(c: &MessageCols) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64s(&mut b, &c.id);
    put_enums(&mut b, &c.kind, msg_kind_enc);
    put_datetimes(&mut b, &c.creation_date);
    put_ixs(&mut b, &c.creator);
    put_ixs(&mut b, &c.country);
    put_symcol(&mut b, &c.browser);
    put_packcol(&mut b, &c.location_ip);
    put_packcol(&mut b, &c.content);
    put_u32s(&mut b, &c.length);
    put_packcol(&mut b, &c.image_file);
    put_symcol(&mut b, &c.language);
    put_ixs(&mut b, &c.forum);
    put_ixs(&mut b, &c.reply_of);
    put_ixs(&mut b, &c.root_post);
    b
}

fn decode_messages(cur: &mut Cur<'_>) -> SnbResult<MessageCols> {
    let c = MessageCols {
        id: get_u64s(cur)?,
        kind: get_enums(cur, msg_kind_dec)?,
        creation_date: get_datetimes(cur)?,
        creator: get_ixs(cur)?,
        country: get_ixs(cur)?,
        browser: get_symcol(cur)?,
        location_ip: get_packcol(cur)?,
        content: get_packcol(cur)?,
        length: get_u32s(cur)?,
        image_file: get_packcol(cur)?,
        language: get_symcol(cur)?,
        forum: get_ixs(cur)?,
        reply_of: get_ixs(cur)?,
        root_post: get_ixs(cur)?,
    };
    cur.finish()?;
    Ok(c)
}

fn encode_places(c: &PlaceCols) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64s(&mut b, &c.id);
    put_symcol(&mut b, &c.name);
    put_enums(&mut b, &c.kind, place_kind_enc);
    put_ixs(&mut b, &c.part_of);
    b
}

fn decode_places(cur: &mut Cur<'_>) -> SnbResult<PlaceCols> {
    let c = PlaceCols {
        id: get_u64s(cur)?,
        name: get_symcol(cur)?,
        kind: get_enums(cur, place_kind_dec)?,
        part_of: get_ixs(cur)?,
    };
    cur.finish()?;
    Ok(c)
}

fn encode_tags(c: &TagCols) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64s(&mut b, &c.id);
    put_symcol(&mut b, &c.name);
    put_ixs(&mut b, &c.class);
    b
}

fn decode_tags(cur: &mut Cur<'_>) -> SnbResult<TagCols> {
    let c = TagCols { id: get_u64s(cur)?, name: get_symcol(cur)?, class: get_ixs(cur)? };
    cur.finish()?;
    Ok(c)
}

fn encode_tag_classes(c: &TagClassCols) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64s(&mut b, &c.id);
    put_symcol(&mut b, &c.name);
    put_ixs(&mut b, &c.parent);
    b
}

fn decode_tag_classes(cur: &mut Cur<'_>) -> SnbResult<TagClassCols> {
    let c = TagClassCols { id: get_u64s(cur)?, name: get_symcol(cur)?, parent: get_ixs(cur)? };
    cur.finish()?;
    Ok(c)
}

fn encode_organisations(c: &OrganisationCols) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64s(&mut b, &c.id);
    put_symcol(&mut b, &c.name);
    put_enums(&mut b, &c.kind, org_kind_enc);
    put_ixs(&mut b, &c.place);
    b
}

fn decode_organisations(cur: &mut Cur<'_>) -> SnbResult<OrganisationCols> {
    let c = OrganisationCols {
        id: get_u64s(cur)?,
        name: get_symcol(cur)?,
        kind: get_enums(cur, org_kind_dec)?,
        place: get_ixs(cur)?,
    };
    cur.finish()?;
    Ok(c)
}

// ---- top level -------------------------------------------------------------

/// Serialises the full store into the tagged-section image payload.
pub fn encode_store(s: &Store) -> Vec<u8> {
    let mut out = Vec::new();
    section(&mut out, SECT_PERSONS, &encode_persons(&s.persons));
    section(&mut out, SECT_FORUMS, &encode_forums(&s.forums));
    section(&mut out, SECT_MESSAGES, &encode_messages(&s.messages));
    section(&mut out, SECT_PLACES, &encode_places(&s.places));
    section(&mut out, SECT_TAGS, &encode_tags(&s.tags));
    section(&mut out, SECT_TAG_CLASSES, &encode_tag_classes(&s.tag_classes));
    section(&mut out, SECT_ORGANISATIONS, &encode_organisations(&s.organisations));
    let mut body = Vec::new();
    let mut adj_section = |out: &mut Vec<u8>, i: u8, write: &mut dyn FnMut(&mut Vec<u8>)| {
        body.clear();
        write(&mut body);
        section(out, SECT_ADJ_BASE + i, &body);
    };
    adj_section(&mut out, 0, &mut |b| put_adj_datetime(b, &s.knows));
    adj_section(&mut out, 1, &mut |b| put_adj_unit(b, &s.person_interest));
    adj_section(&mut out, 2, &mut |b| put_adj_unit(b, &s.interest_person));
    adj_section(&mut out, 3, &mut |b| put_adj_i32(b, &s.person_study));
    adj_section(&mut out, 4, &mut |b| put_adj_i32(b, &s.person_work));
    adj_section(&mut out, 5, &mut |b| put_adj_datetime(b, &s.forum_member));
    adj_section(&mut out, 6, &mut |b| put_adj_datetime(b, &s.member_forum));
    adj_section(&mut out, 7, &mut |b| put_adj_unit(b, &s.forum_tag));
    adj_section(&mut out, 8, &mut |b| put_adj_unit(b, &s.tag_forum));
    adj_section(&mut out, 9, &mut |b| put_adj_unit(b, &s.message_tag));
    adj_section(&mut out, 10, &mut |b| put_adj_unit(b, &s.tag_message));
    adj_section(&mut out, 11, &mut |b| put_adj_unit(b, &s.person_messages));
    adj_section(&mut out, 12, &mut |b| put_adj_unit(b, &s.forum_posts));
    adj_section(&mut out, 13, &mut |b| put_adj_unit(b, &s.message_replies));
    adj_section(&mut out, 14, &mut |b| put_adj_datetime(b, &s.person_likes));
    adj_section(&mut out, 15, &mut |b| put_adj_datetime(b, &s.message_likes));
    adj_section(&mut out, 16, &mut |b| put_adj_unit(b, &s.place_children));
    adj_section(&mut out, 17, &mut |b| put_adj_unit(b, &s.city_person));
    adj_section(&mut out, 18, &mut |b| put_adj_unit(b, &s.tagclass_children));
    adj_section(&mut out, 19, &mut |b| put_adj_unit(b, &s.tagclass_tags));
    adj_section(&mut out, 20, &mut |b| put_adj_unit(b, &s.person_moderates));
    out
}

/// Decodes an image payload back into a full store, rebuilding the
/// derived structures (id hash indexes, name→index maps, date
/// permutation index) the image deliberately omits. Refuses — with a
/// hard error, never a partial store — any checksum mismatch,
/// truncation, or layout violation.
pub fn decode_store(buf: &[u8]) -> SnbResult<Store> {
    let mut pos = 0usize;
    let mut s = Store::default();

    let mut cur = read_section(buf, &mut pos, SECT_PERSONS)?;
    s.persons.set(decode_persons(&mut cur)?);
    let mut cur = read_section(buf, &mut pos, SECT_FORUMS)?;
    s.forums.set(decode_forums(&mut cur)?);
    let mut cur = read_section(buf, &mut pos, SECT_MESSAGES)?;
    s.messages.set(decode_messages(&mut cur)?);
    let mut cur = read_section(buf, &mut pos, SECT_PLACES)?;
    s.places.set(decode_places(&mut cur)?);
    let mut cur = read_section(buf, &mut pos, SECT_TAGS)?;
    s.tags.set(decode_tags(&mut cur)?);
    let mut cur = read_section(buf, &mut pos, SECT_TAG_CLASSES)?;
    s.tag_classes.set(decode_tag_classes(&mut cur)?);
    let mut cur = read_section(buf, &mut pos, SECT_ORGANISATIONS)?;
    s.organisations.set(decode_organisations(&mut cur)?);

    fn adj_sect<P: Copy>(
        buf: &[u8],
        pos: &mut usize,
        i: u8,
        get: impl FnOnce(&mut Cur<'_>) -> SnbResult<Adj<P>>,
    ) -> SnbResult<Adj<P>> {
        let mut cur = read_section(buf, pos, SECT_ADJ_BASE + i)?;
        let adj = get(&mut cur)?;
        cur.finish()?;
        Ok(adj)
    }
    debug_assert_eq!(SECT_ADJ_BASE + ADJ_COUNT - 1, 30);
    s.knows.set(adj_sect(buf, &mut pos, 0, get_adj_datetime)?);
    s.person_interest.set(adj_sect(buf, &mut pos, 1, get_adj_unit)?);
    s.interest_person.set(adj_sect(buf, &mut pos, 2, get_adj_unit)?);
    s.person_study.set(adj_sect(buf, &mut pos, 3, get_adj_i32)?);
    s.person_work.set(adj_sect(buf, &mut pos, 4, get_adj_i32)?);
    s.forum_member.set(adj_sect(buf, &mut pos, 5, get_adj_datetime)?);
    s.member_forum.set(adj_sect(buf, &mut pos, 6, get_adj_datetime)?);
    s.forum_tag.set(adj_sect(buf, &mut pos, 7, get_adj_unit)?);
    s.tag_forum.set(adj_sect(buf, &mut pos, 8, get_adj_unit)?);
    s.message_tag.set(adj_sect(buf, &mut pos, 9, get_adj_unit)?);
    s.tag_message.set(adj_sect(buf, &mut pos, 10, get_adj_unit)?);
    s.person_messages.set(adj_sect(buf, &mut pos, 11, get_adj_unit)?);
    s.forum_posts.set(adj_sect(buf, &mut pos, 12, get_adj_unit)?);
    s.message_replies.set(adj_sect(buf, &mut pos, 13, get_adj_unit)?);
    s.person_likes.set(adj_sect(buf, &mut pos, 14, get_adj_datetime)?);
    s.message_likes.set(adj_sect(buf, &mut pos, 15, get_adj_datetime)?);
    s.place_children.set(adj_sect(buf, &mut pos, 16, get_adj_unit)?);
    s.city_person.set(adj_sect(buf, &mut pos, 17, get_adj_unit)?);
    s.tagclass_children.set(adj_sect(buf, &mut pos, 18, get_adj_unit)?);
    s.tagclass_tags.set(adj_sect(buf, &mut pos, 19, get_adj_unit)?);
    s.person_moderates.set(adj_sect(buf, &mut pos, 20, get_adj_unit)?);

    if pos != buf.len() {
        return Err(corrupt(format!("{} trailing bytes after last section", buf.len() - pos)));
    }

    rebuild_derived(&mut s);
    Ok(s)
}

/// Rebuilds everything the image omits, in the same insert order as the
/// bulk loader so id/name lookups behave identically.
fn rebuild_derived(s: &mut Store) {
    fn index(ids: &[u64]) -> FxHashMap<u64, Ix> {
        ids.iter().enumerate().map(|(i, &id)| (id, i as Ix)).collect()
    }
    s.person_ix.set(index(&s.persons.id));
    s.forum_ix.set(index(&s.forums.id));
    s.message_ix.set(index(&s.messages.id));
    s.place_ix.set(index(&s.places.id));
    s.tag_ix.set(index(&s.tags.id));
    s.tag_class_ix.set(index(&s.tag_classes.id));
    s.org_ix.set(index(&s.organisations.id));

    fn by_name(names: &SymCol) -> FxHashMap<String, Ix> {
        names.iter().enumerate().map(|(i, n)| (n.to_string(), i as Ix)).collect()
    }
    s.place_by_name.set(by_name(&s.places.name));
    s.tag_by_name.set(by_name(&s.tags.name));
    s.tag_class_by_name.set(by_name(&s.tag_classes.name));

    s.rebuild_date_index();
    s.shrink_columns();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::store_for_config;
    use snb_datagen::GeneratorConfig;

    fn small_store() -> Store {
        let mut c = GeneratorConfig::for_scale_name("0.001").expect("scale");
        c.persons = 60;
        store_for_config(&c)
    }

    #[test]
    fn image_round_trips_bit_identically() {
        let store = small_store();
        let image = encode_store(&store);
        let decoded = decode_store(&image).expect("decode");
        // Re-encoding the decoded store must reproduce the image byte
        // for byte — the strongest whole-store equality check available
        // without a field-by-field walk (the codec covers every column
        // and adjacency, so any drift shows up here).
        assert_eq!(encode_store(&decoded), image, "decode→encode must be the identity");
        decoded.validate_invariants().expect("decoded store invariants");
        assert!(decoded.date_index_fresh(), "date index must be rebuilt");
        // Derived indexes answer like the originals.
        let id = store.persons.id[3];
        assert_eq!(decoded.person(id).unwrap(), store.person(id).unwrap());
        let place = store.places.name.iter().next().unwrap();
        assert_eq!(
            decoded.place_by_name.get(place).copied(),
            store.place_by_name.get(place).copied()
        );
    }

    #[test]
    fn image_round_trips_overflow_adjacencies() {
        let mut store = small_store();
        // Simulate streamed inserts: overflow edges must survive the
        // image (compacted into CSR form) even though the live store
        // has not compacted yet.
        store.knows.insert(0, 1, snb_core::datetime::DateTime(42));
        store.knows.insert(1, 0, snb_core::datetime::DateTime(42));
        let decoded = decode_store(&encode_store(&store)).expect("decode");
        assert_eq!(decoded.knows.edge_count(), store.knows.edge_count());
        assert!(decoded.knows.neighbors(0).any(|(t, d)| t == 1 && d.0 == 42));
    }

    #[test]
    fn every_corrupted_byte_is_refused() {
        let store = small_store();
        let image = encode_store(&store);
        // Flip one byte at a spread of positions (covering headers,
        // checksums, and bodies of several sections) — decode must
        // refuse every time, never yield a store.
        for pos in (0..image.len()).step_by(image.len() / 97 + 1) {
            let mut bad = image.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode_store(&bad).is_err(),
                "flipped byte at {pos}/{} must be refused",
                image.len()
            );
        }
    }

    #[test]
    fn truncation_is_refused_at_every_section_boundary() {
        let image = encode_store(&small_store());
        for cut in [0, 1, 12, 13, image.len() / 2, image.len() - 1] {
            assert!(decode_store(&image[..cut]).is_err(), "truncation at {cut} must be refused");
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let store = Store::default();
        let decoded = decode_store(&encode_store(&store)).expect("decode empty");
        assert_eq!(decoded.persons.len(), 0);
        assert_eq!(decoded.messages.len(), 0);
        decoded.validate_invariants().expect("empty invariants");
    }
}
