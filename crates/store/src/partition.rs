//! Horizontal partitioning: hash-sharded entity ownership behind a
//! facade that preserves the monolithic [`Store`] API.
//!
//! The store stays **one** columnar block with **one** global dense-id
//! space — partitioning is an overlay, not a physical split. Each
//! person and message is *owned* by the shard its dense id hashes to
//! ([`partition_of`]); edge lists stay co-located with their source
//! vertex because CSR adjacency is keyed by the source's dense id, so
//! whichever shard owns the source owns its out-edges. The overlay
//! buys three things without disturbing a single query plan:
//!
//! * **shard-routed writes** — the server routes update batches to
//!   per-partition WAL segments by [`partition_of_raw`] over the raw
//!   id (raw ids are stable before the dense id is even assigned);
//! * **per-shard date indexes** — each shard keeps its own
//!   `(creation_date, ix)`-sorted message list; shard windows merge
//!   back to exactly the global window (see
//!   [`PartitionedStore::merged_window`]), which is what lets the BI
//!   date-window helpers compose per-shard ranges;
//! * **a proof obligation** — [`validate_partition_invariants`] checks
//!   that the shards are a disjoint cover and the per-shard date lists
//!   merge to the global permutation, for any partition count.
//!
//! Determinism: the id→shard map is a pure function of `(dense id,
//! partition count)`; every merge is ordered by the same `(date, ix)`
//! key the global index uses. Partition count therefore changes layout
//! and locality, never results.
//!
//! [`validate_partition_invariants`]: PartitionedStore::validate_partition_invariants

use snb_core::datetime::DateTime;
use snb_core::{SnbError, SnbResult};
use snb_datagen::dictionaries::StaticWorld;
use snb_datagen::stream::TimedEvent;

use crate::columns::Ix;
use crate::cow::CowBox;
use crate::delete::{DeleteOp, DeleteStats};
use crate::store::Store;

/// Fibonacci multiplier (2^64 / φ) — spreads consecutive dense ids
/// evenly across shards, so the time-clustered id ranges the datagen
/// produces don't pile onto one partition.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// The shard owning dense id `ix` under `parts` partitions. Pure
/// function of its inputs; `parts = 1` always yields shard 0.
#[inline]
pub fn partition_of(ix: Ix, parts: usize) -> usize {
    if parts <= 1 {
        return 0;
    }
    ((ix as u64).wrapping_mul(FIB) >> 32) as usize % parts
}

/// The shard a *raw* (external) id routes to — used on the write path,
/// where a batch must pick its WAL segment before the dense id exists.
/// Distinct from [`partition_of`]: raw-id routing balances the log,
/// dense-id ownership shards the store; both are deterministic.
#[inline]
pub fn partition_of_raw(id: u64, parts: usize) -> usize {
    if parts <= 1 {
        return 0;
    }
    (id.wrapping_mul(FIB) >> 32) as usize % parts
}

/// The per-shard overlay: ownership lists plus per-shard date indexes.
///
/// Each shard's lists sit in their own [`CowBox`], so cloning a layout
/// for the next store version shares every shard a write batch doesn't
/// touch — copy-on-write is per *partition*, not per layout.
#[derive(Clone, Debug, Default)]
pub struct PartitionLayout {
    parts: usize,
    /// Dense person ids per owning shard, ascending.
    person_shards: Vec<CowBox<Vec<Ix>>>,
    /// Dense message ids per owning shard, ascending.
    message_shards: Vec<CowBox<Vec<Ix>>>,
    /// Per-shard message lists in ascending `(creation_date, ix)`
    /// order — the shard-local slice of the global date permutation.
    date_shards: Vec<CowBox<Vec<Ix>>>,
    /// Messages covered by `date_shards`; behind `messages.len()` means
    /// the per-shard date lists are stale (mirrors the global index).
    date_indexed: usize,
}

impl PartitionLayout {
    fn build(store: &Store, parts: usize) -> PartitionLayout {
        let parts = parts.max(1);
        let mut layout = PartitionLayout {
            parts,
            person_shards: vec![CowBox::default(); parts],
            message_shards: vec![CowBox::default(); parts],
            date_shards: vec![CowBox::default(); parts],
            date_indexed: 0,
        };
        for p in 0..store.persons.len() as Ix {
            layout.person_shards[partition_of(p, parts)].push(p);
        }
        for m in 0..store.messages.len() as Ix {
            layout.message_shards[partition_of(m, parts)].push(m);
        }
        layout.rebuild_date_shards(store);
        layout
    }

    /// Re-derives the per-shard date lists by splitting the global
    /// permutation by owner; a no-op marker when the global index is
    /// stale (the shard lists then report stale too).
    fn rebuild_date_shards(&mut self, store: &Store) {
        for shard in &mut self.date_shards {
            shard.clear();
        }
        if store.date_index_fresh() {
            for &m in &store.message_by_date {
                self.date_shards[partition_of(m, self.parts)].push(m);
            }
            self.date_indexed = store.messages.len();
        } else {
            self.date_indexed = 0;
        }
    }

    /// Number of shards.
    pub fn partitions(&self) -> usize {
        self.parts
    }

    /// Dense person ids owned by shard `p`, ascending.
    pub fn shard_persons(&self, p: usize) -> &[Ix] {
        &self.person_shards[p]
    }

    /// Dense message ids owned by shard `p`, ascending.
    pub fn shard_messages(&self, p: usize) -> &[Ix] {
        &self.message_shards[p]
    }
}

/// The partitioned facade: a monolithic [`Store`] plus the shard
/// overlay, kept consistent through the mutating wrappers.
///
/// `Deref<Target = Store>` exposes the complete read API unchanged —
/// every query plan compiles against a `PartitionedStore` exactly as it
/// did against `Store`. There is deliberately **no** `DerefMut`: all
/// mutation goes through [`apply_event`](PartitionedStore::apply_event)
/// / [`apply_deletes`](PartitionedStore::apply_deletes) so the overlay
/// can never silently go stale.
#[derive(Clone)]
pub struct PartitionedStore {
    store: Store,
    layout: PartitionLayout,
}

impl std::ops::Deref for PartitionedStore {
    type Target = Store;
    fn deref(&self) -> &Store {
        &self.store
    }
}

impl PartitionedStore {
    /// Wraps a store into `parts` shards (`0`/`1` = single shard).
    pub fn new(store: Store, parts: usize) -> PartitionedStore {
        let layout = PartitionLayout::build(&store, parts.max(1));
        PartitionedStore { store, layout }
    }

    /// Shard count.
    pub fn partitions(&self) -> usize {
        self.layout.parts
    }

    /// The shard overlay (ownership lists + per-shard date indexes).
    pub fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    /// Unwraps the facade.
    pub fn into_store(self) -> Store {
        self.store
    }

    /// Applies one update-stream event and incrementally extends the
    /// overlay: new dense ids append to their owning shard (ids grow
    /// monotonically, so shard lists stay ascending), and in-order
    /// message inserts extend the owning shard's date list exactly when
    /// they extend the global one.
    pub fn apply_event(&mut self, event: &TimedEvent, world: &StaticWorld) -> SnbResult<()> {
        let result = self.store.apply_event(event, world);
        self.sync_appended();
        result
    }

    /// Applies a delete batch. Deletes rebuild the store with remapped
    /// dense ids, so the overlay is rebuilt wholesale afterwards.
    pub fn apply_deletes(&mut self, ops: &[DeleteOp]) -> SnbResult<DeleteStats> {
        let stats = self.store.apply_deletes(ops)?;
        self.layout = PartitionLayout::build(&self.store, self.layout.parts);
        Ok(stats)
    }

    /// Rebuilds the global date permutation and the per-shard splits.
    pub fn rebuild_date_index(&mut self) {
        self.store.rebuild_date_index();
        self.layout.rebuild_date_shards(&self.store);
    }

    /// Folds the adjacency overflow back into CSR form and refreshes
    /// both date-index levels.
    pub fn compact(&mut self) {
        self.store.compact();
        self.layout.rebuild_date_shards(&self.store);
    }

    /// Whether the per-shard date lists cover every message.
    pub fn shard_date_fresh(&self) -> bool {
        self.layout.date_indexed == self.store.messages.len() && self.store.date_index_fresh()
    }

    /// Shard `p`'s messages in the half-open window `[lo, hi)`, in
    /// ascending `(creation_date, ix)` order. `None` when stale.
    pub fn shard_messages_in(&self, p: usize, lo: DateTime, hi: DateTime) -> Option<&[Ix]> {
        if !self.shard_date_fresh() {
            return None;
        }
        let shard = &self.layout.date_shards[p];
        if hi <= lo {
            return Some(&shard[0..0]);
        }
        let dates = &self.store.messages.creation_date;
        let a = shard.partition_point(|&m| dates[m as usize] < lo);
        let b = shard.partition_point(|&m| dates[m as usize] < hi);
        Some(&shard[a..b])
    }

    /// The global `[lo, hi)` window re-composed by k-way-merging the
    /// per-shard windows on `(creation_date, ix)` — byte-identical to
    /// [`Store::messages_created_in`] for any partition count. `None`
    /// when the shard indexes are stale.
    pub fn merged_window(&self, lo: DateTime, hi: DateTime) -> Option<Vec<Ix>> {
        let shards: Vec<&[Ix]> = (0..self.layout.parts)
            .map(|p| self.shard_messages_in(p, lo, hi))
            .collect::<Option<_>>()?;
        let dates = &self.store.messages.creation_date;
        let mut cursors = vec![0usize; shards.len()];
        let mut out = Vec::with_capacity(shards.iter().map(|s| s.len()).sum());
        loop {
            let mut best: Option<(DateTime, Ix, usize)> = None;
            for (p, shard) in shards.iter().enumerate() {
                if let Some(&m) = shard.get(cursors[p]) {
                    let key = (dates[m as usize], m);
                    if best.map(|(d, i, _)| key < (d, i)).unwrap_or(true) {
                        best = Some((key.0, key.1, p));
                    }
                }
            }
            match best {
                Some((_, m, p)) => {
                    out.push(m);
                    cursors[p] += 1;
                }
                None => break,
            }
        }
        Some(out)
    }

    /// Extends the overlay for ids appended since the last sync.
    fn sync_appended(&mut self) {
        let parts = self.layout.parts;
        let persons_known: usize = self.layout.person_shards.iter().map(|s| s.len()).sum();
        for p in persons_known as Ix..self.store.persons.len() as Ix {
            self.layout.person_shards[partition_of(p, parts)].push(p);
        }
        let messages_known: usize = self.layout.message_shards.iter().map(|s| s.len()).sum();
        for m in messages_known as Ix..self.store.messages.len() as Ix {
            self.layout.message_shards[partition_of(m, parts)].push(m);
            // The shard date list extends iff the global index did: the
            // stream's in-order inserts append ascending `(date, ix)`
            // keys, and any subsequence of an ascending sequence is
            // ascending, so a tail push is always safe here.
            if self.layout.date_indexed == m as usize
                && self.store.message_by_date.len() > m as usize
            {
                self.layout.date_shards[partition_of(m, parts)].push(m);
                self.layout.date_indexed = m as usize + 1;
            }
        }
    }

    /// Proof obligation for the overlay: shards are disjoint, cover
    /// every dense id, agree with the ownership hash, and the per-shard
    /// date lists merge back to exactly the global permutation.
    pub fn validate_partition_invariants(&self) -> SnbResult<()> {
        let check_cover = |shards: &[CowBox<Vec<Ix>>], n: usize, what: &str| -> SnbResult<()> {
            let mut seen = vec![false; n];
            for (p, shard) in shards.iter().enumerate() {
                for w in shard.windows(2) {
                    if w[0] >= w[1] {
                        return Err(SnbError::Config(format!("{what} shard {p} not ascending")));
                    }
                }
                for &ix in shard {
                    if partition_of(ix, self.layout.parts) != p {
                        return Err(SnbError::Config(format!(
                            "{what} {ix} misplaced in shard {p}"
                        )));
                    }
                    if seen[ix as usize] {
                        return Err(SnbError::Config(format!("{what} {ix} owned twice")));
                    }
                    seen[ix as usize] = true;
                }
            }
            if seen.iter().any(|&s| !s) {
                return Err(SnbError::Config(format!("{what} shards don't cover all ids")));
            }
            Ok(())
        };
        check_cover(&self.layout.person_shards, self.store.persons.len(), "person")?;
        check_cover(&self.layout.message_shards, self.store.messages.len(), "message")?;
        if self.shard_date_fresh() {
            let merged = self
                .merged_window(DateTime(i64::MIN), DateTime(i64::MAX))
                .ok_or_else(|| SnbError::Config("fresh shard index yielded no window".into()))?;
            // MAX is exclusive in the window; cover any message created
            // exactly at DateTime(i64::MAX) via the full-permutation check.
            let global = &self.store.message_by_date;
            if merged.len() == global.len() && merged[..] != global[..] {
                return Err(SnbError::Config("shard date merge != global permutation".into()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::GeneratorConfig;

    fn small_config() -> GeneratorConfig {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 100;
        c
    }

    #[test]
    fn hash_is_pure_and_in_range() {
        for parts in [1usize, 2, 3, 4, 7] {
            for ix in 0..500u32 {
                let p = partition_of(ix, parts);
                assert!(p < parts);
                assert_eq!(p, partition_of(ix, parts));
            }
        }
        assert_eq!(partition_of(42, 1), 0);
        assert_eq!(partition_of_raw(u64::MAX, 1), 0);
        for parts in [2usize, 4] {
            assert!(partition_of_raw(123_456_789, parts) < parts);
        }
    }

    #[test]
    fn hash_spreads_dense_ids() {
        // Consecutive dense ids must not all land on one shard.
        for parts in [2usize, 4] {
            let mut counts = vec![0usize; parts];
            for ix in 0..4096u32 {
                counts[partition_of(ix, parts)] += 1;
            }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(*min > 0, "empty shard for parts={parts}: {counts:?}");
            assert!(*max < 4096, "all ids on one shard for parts={parts}");
        }
    }

    #[test]
    fn layout_invariants_hold_for_any_partition_count() {
        for parts in [1usize, 2, 3, 4] {
            let ps = PartitionedStore::new(crate::store_for_config(&small_config()), parts);
            assert_eq!(ps.partitions(), parts);
            assert!(ps.shard_date_fresh());
            ps.validate_partition_invariants().unwrap();
        }
    }

    #[test]
    fn merged_window_equals_global_window() {
        let ps = PartitionedStore::new(crate::store_for_config(&small_config()), 4);
        let dates = &ps.messages.creation_date;
        assert!(!dates.is_empty());
        let mut sorted = dates.clone();
        sorted.sort_unstable();
        let (lo, hi) = (sorted[sorted.len() / 4], sorted[3 * sorted.len() / 4]);
        let global = ps.messages_created_in(lo, hi).unwrap().to_vec();
        assert_eq!(ps.merged_window(lo, hi).unwrap(), global);
        // Degenerate windows.
        assert!(ps.merged_window(hi, lo).unwrap().is_empty());
        let all = ps.merged_window(DateTime(i64::MIN), DateTime(i64::MAX)).unwrap();
        assert_eq!(
            all.len(),
            ps.messages_created_in(DateTime(i64::MIN), DateTime(i64::MAX)).unwrap().len()
        );
    }

    #[test]
    fn streamed_inserts_keep_overlay_fresh() {
        let c = small_config();
        let (store, events) = crate::bulk_store_and_stream(&c);
        let world = StaticWorld::build(c.seed);
        let mut ps = PartitionedStore::new(store, 3);
        for e in &events {
            ps.apply_event(e, &world).unwrap();
        }
        assert!(ps.date_index_fresh(), "stream left the global index stale");
        assert!(ps.shard_date_fresh(), "stream left the shard indexes stale");
        ps.validate_partition_invariants().unwrap();
    }

    #[test]
    fn deletes_rebuild_overlay_with_remapped_ids() {
        let c = small_config();
        let mut ps = PartitionedStore::new(crate::store_for_config(&c), 2);
        let victim = ps.persons.id[0];
        let before = ps.persons.len();
        ps.apply_deletes(&[DeleteOp::Person(victim)]).unwrap();
        assert!(ps.persons.len() < before);
        assert!(ps.shard_date_fresh());
        ps.validate_partition_invariants().unwrap();
    }

    #[test]
    fn facade_preserves_read_api() {
        let ps = PartitionedStore::new(crate::store_for_config(&small_config()), 2);
        // Deref surfaces the monolithic API unchanged.
        let first = ps.persons.id[0];
        assert_eq!(ps.person(first).unwrap(), 0);
        assert!(ps.stats().nodes > 0);
    }
}
