//! The columnar graph store: columns + CSR adjacency + id/name indexes.

use std::ops::Range;

use rustc_hash::FxHashMap;
use snb_core::datetime::DateTime;
use snb_core::model::PlaceKind;
use snb_core::{SnbError, SnbResult};

use crate::adj::Adj;
use crate::columns::{
    ForumCols, Ix, MessageCols, OrganisationCols, PersonCols, PlaceCols, TagClassCols, TagCols,
    NONE,
};
use crate::cow::CowBox;

/// The System Under Test: an in-memory columnar property graph holding
/// the full SNB schema with forward and reverse CSR adjacency for every
/// relation the workloads traverse.
#[derive(Clone, Default)]
pub struct Store {
    /// Person columns.
    pub persons: CowBox<PersonCols>,
    /// Forum columns.
    pub forums: CowBox<ForumCols>,
    /// Message columns (posts + comments).
    pub messages: CowBox<MessageCols>,
    /// Place columns.
    pub places: CowBox<PlaceCols>,
    /// Tag columns.
    pub tags: CowBox<TagCols>,
    /// TagClass columns.
    pub tag_classes: CowBox<TagClassCols>,
    /// Organisation columns.
    pub organisations: CowBox<OrganisationCols>,

    /// Raw person id → dense index.
    pub person_ix: CowBox<FxHashMap<u64, Ix>>,
    /// Raw forum id → dense index.
    pub forum_ix: CowBox<FxHashMap<u64, Ix>>,
    /// Raw message id → dense index.
    pub message_ix: CowBox<FxHashMap<u64, Ix>>,
    /// Raw place id → dense index.
    pub place_ix: CowBox<FxHashMap<u64, Ix>>,
    /// Raw tag id → dense index.
    pub tag_ix: CowBox<FxHashMap<u64, Ix>>,
    /// Raw tag-class id → dense index.
    pub tag_class_ix: CowBox<FxHashMap<u64, Ix>>,
    /// Raw organisation id → dense index.
    pub org_ix: CowBox<FxHashMap<u64, Ix>>,

    /// Symmetric `knows` adjacency with creation dates (each edge stored
    /// in both directions).
    pub knows: CowBox<Adj<DateTime>>,
    /// Person → interest tags.
    pub person_interest: CowBox<Adj>,
    /// Tag → interested persons.
    pub interest_person: CowBox<Adj>,
    /// Person → university with class year.
    pub person_study: CowBox<Adj<i32>>,
    /// Person → companies with work-from year.
    pub person_work: CowBox<Adj<i32>>,
    /// Forum → members with join date.
    pub forum_member: CowBox<Adj<DateTime>>,
    /// Person → forums joined with join date.
    pub member_forum: CowBox<Adj<DateTime>>,
    /// Forum → topic tags.
    pub forum_tag: CowBox<Adj>,
    /// Tag → forums carrying it.
    pub tag_forum: CowBox<Adj>,
    /// Message → tags.
    pub message_tag: CowBox<Adj>,
    /// Tag → messages carrying it.
    pub tag_message: CowBox<Adj>,
    /// Person → created messages.
    pub person_messages: CowBox<Adj>,
    /// Forum → contained posts.
    pub forum_posts: CowBox<Adj>,
    /// Message → direct reply comments.
    pub message_replies: CowBox<Adj>,
    /// Person → liked messages with like date.
    pub person_likes: CowBox<Adj<DateTime>>,
    /// Message → likers with like date.
    pub message_likes: CowBox<Adj<DateTime>>,
    /// Place → child places (continent → countries, country → cities).
    pub place_children: CowBox<Adj>,
    /// City → resident persons.
    pub city_person: CowBox<Adj>,
    /// TagClass → direct subclasses.
    pub tagclass_children: CowBox<Adj>,
    /// TagClass → tags of exactly that class.
    pub tagclass_tags: CowBox<Adj>,
    /// Person → moderated forums.
    pub person_moderates: CowBox<Adj>,

    /// Message indices permuted into ascending `(creation_date, ix)`
    /// order. Built by the bulk loader and rebuilt by [`Store::compact`]
    /// and after deletes; streamed inserts leave it stale (shorter than
    /// `messages`), in which case the windowed accessors return `None`
    /// and callers fall back to a full scan.
    pub message_by_date: CowBox<Vec<Ix>>,

    /// Place name → index.
    pub place_by_name: CowBox<FxHashMap<String, Ix>>,
    /// Tag name → index.
    pub tag_by_name: CowBox<FxHashMap<String, Ix>>,
    /// TagClass name → index.
    pub tag_class_by_name: CowBox<FxHashMap<String, Ix>>,
}

impl Store {
    /// Releases push-growth slack in the big column groups. Bulk loads
    /// are append-once, so capacity beyond `len` is pure waste; every
    /// build path (datagen, streaming, image decode) calls this before
    /// handing the store out. Runtime inserts re-grow as needed.
    pub fn shrink_columns(&mut self) {
        self.persons.shrink_to_fit();
        self.forums.shrink_to_fit();
        self.messages.shrink_to_fit();
    }

    /// Resolves a raw person id.
    pub fn person(&self, id: u64) -> SnbResult<Ix> {
        self.person_ix.get(&id).copied().ok_or(SnbError::UnknownId { entity: "Person", id })
    }

    /// Resolves a raw message id.
    pub fn message(&self, id: u64) -> SnbResult<Ix> {
        self.message_ix.get(&id).copied().ok_or(SnbError::UnknownId { entity: "Message", id })
    }

    /// Resolves a raw forum id.
    pub fn forum(&self, id: u64) -> SnbResult<Ix> {
        self.forum_ix.get(&id).copied().ok_or(SnbError::UnknownId { entity: "Forum", id })
    }

    /// Resolves a country by name.
    pub fn country_by_name(&self, name: &str) -> SnbResult<Ix> {
        self.place_by_name
            .get(name)
            .copied()
            .filter(|&p| self.places.kind[p as usize] == PlaceKind::Country)
            .ok_or_else(|| SnbError::Config(format!("unknown country {name:?}")))
    }

    /// Resolves a tag by name.
    pub fn tag_named(&self, name: &str) -> SnbResult<Ix> {
        self.tag_by_name
            .get(name)
            .copied()
            .ok_or_else(|| SnbError::Config(format!("unknown tag {name:?}")))
    }

    /// Resolves a tag class by name.
    pub fn tag_class_named(&self, name: &str) -> SnbResult<Ix> {
        self.tag_class_by_name
            .get(name)
            .copied()
            .ok_or_else(|| SnbError::Config(format!("unknown tag class {name:?}")))
    }

    /// The country of a person (home city's parent).
    pub fn person_country(&self, p: Ix) -> Ix {
        self.places.part_of[self.persons.city[p as usize] as usize]
    }

    /// The continent of a country.
    pub fn country_continent(&self, country: Ix) -> Ix {
        self.places.part_of[country as usize]
    }

    /// Iterates all persons located in `country` (via its cities).
    pub fn persons_in_country(&self, country: Ix) -> impl Iterator<Item = Ix> + '_ {
        self.place_children
            .targets_of(country)
            .flat_map(move |city| self.city_person.targets_of(city))
    }

    /// All tag classes in the subtree rooted at `class` (inclusive) —
    /// the transitive `isSubclassOf` closure needed by BI 12/16/20 etc.
    pub fn tagclass_subtree(&self, class: Ix) -> Vec<Ix> {
        let mut out = vec![class];
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            for child in self.tagclass_children.targets_of(c) {
                out.push(child);
                stack.push(child);
            }
        }
        out
    }

    /// Whether tag `t`'s class lies in the subtree rooted at `class`.
    pub fn tag_in_class_subtree(&self, t: Ix, class: Ix) -> bool {
        let mut c = self.tags.class[t as usize];
        loop {
            if c == class {
                return true;
            }
            let parent = self.tag_classes.parent[c as usize];
            if parent == NONE {
                return false;
            }
            c = parent;
        }
    }

    /// The forum a message's thread lives in (container of its root
    /// post).
    pub fn thread_forum(&self, m: Ix) -> Ix {
        let root = self.messages.root_post[m as usize];
        self.messages.forum[root as usize]
    }

    /// Rebuilds the `(creation_date, ix)` message permutation index.
    pub fn rebuild_date_index(&mut self) {
        let dates = &self.messages.creation_date;
        let mut perm: Vec<Ix> = (0..self.messages.len() as Ix).collect();
        perm.sort_unstable_by_key(|&m| (dates[m as usize], m));
        self.message_by_date.set(perm);
    }

    /// Whether the date permutation index covers every message (it goes
    /// stale when streamed inserts append messages without a rebuild).
    pub fn date_index_fresh(&self) -> bool {
        self.message_by_date.len() == self.messages.len()
    }

    /// Message indices created strictly before `t`, as a binary-searched
    /// prefix of the date permutation index (ascending `(creation_date,
    /// ix)` order). `None` when the index is stale.
    pub fn messages_created_before(&self, t: DateTime) -> Option<&[Ix]> {
        if !self.date_index_fresh() {
            return None;
        }
        let cut =
            self.message_by_date.partition_point(|&m| self.messages.creation_date[m as usize] < t);
        Some(&self.message_by_date[..cut])
    }

    /// Message indices created in the half-open timestamp window
    /// `[lo, hi)`, as a binary-searched contiguous run of the date
    /// permutation index. `None` when the index is stale.
    pub fn messages_created_in(&self, lo: DateTime, hi: DateTime) -> Option<&[Ix]> {
        if !self.date_index_fresh() {
            return None;
        }
        if hi <= lo {
            return Some(&self.message_by_date[0..0]);
        }
        let a =
            self.message_by_date.partition_point(|&m| self.messages.creation_date[m as usize] < lo);
        let b =
            self.message_by_date.partition_point(|&m| self.messages.creation_date[m as usize] < hi);
        Some(&self.message_by_date[a..b])
    }

    /// Message indices created strictly after `t`, as a binary-searched
    /// suffix of the date permutation index. `None` when the index is
    /// stale.
    pub fn messages_created_after(&self, t: DateTime) -> Option<&[Ix]> {
        if !self.date_index_fresh() {
            return None;
        }
        let cut =
            self.message_by_date.partition_point(|&m| self.messages.creation_date[m as usize] <= t);
        Some(&self.message_by_date[cut..])
    }

    /// Morsel ranges covering the message column block — the scan
    /// surface the parallel execution primitives consume.
    pub fn message_chunks(&self, morsel: usize) -> impl Iterator<Item = Range<usize>> {
        chunks(self.messages.len(), morsel)
    }

    /// Morsel ranges covering the person column block.
    pub fn vertex_chunks(&self, morsel: usize) -> impl Iterator<Item = Range<usize>> {
        chunks(self.persons.len(), morsel)
    }

    /// Rebuilds the hot CSRs after a batch of inserts (optional; queries
    /// work on the overflow form too).
    pub fn compact(&mut self) {
        self.rebuild_date_index();
        self.knows.compact();
        self.person_messages.compact();
        self.message_replies.compact();
        self.message_likes.compact();
        self.person_likes.compact();
        self.forum_member.compact();
        self.member_forum.compact();
        self.message_tag.compact();
        self.tag_message.compact();
        self.forum_posts.compact();
    }

    /// Consistency check used by tests: every reverse edge must mirror a
    /// forward edge and all column lengths must agree.
    pub fn validate_invariants(&self) -> SnbResult<()> {
        let n = self.persons.len();
        let cols = [
            self.persons.first_name.len(),
            self.persons.last_name.len(),
            self.persons.birthday.len(),
            self.persons.creation_date.len(),
            self.persons.city.len(),
            self.persons.emails.len(),
            self.persons.speaks.len(),
        ];
        if cols.iter().any(|&c| c != n) {
            return Err(SnbError::Config(format!("person column lengths differ: {cols:?}")));
        }
        let m = self.messages.len();
        if self.messages.creator.len() != m
            || self.messages.reply_of.len() != m
            || self.messages.root_post.len() != m
        {
            return Err(SnbError::Config("message column lengths differ".into()));
        }
        // knows symmetry.
        for u in 0..n as Ix {
            for (v, d) in self.knows.neighbors(u) {
                if !self.knows.neighbors(v).any(|(w, d2)| w == u && d2 == d) {
                    return Err(SnbError::Config(format!("knows edge {u}->{v} not mirrored")));
                }
            }
        }
        // Message likes mirror person likes.
        if self.person_likes.edge_count() != self.message_likes.edge_count() {
            return Err(SnbError::Config("likes forward/reverse counts differ".into()));
        }
        // Date permutation index: when fresh it must be a permutation in
        // ascending (creation_date, ix) order.
        if self.date_index_fresh() {
            let mut seen = vec![false; m];
            for w in self.message_by_date.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                let ka = (self.messages.creation_date[a], w[0]);
                let kb = (self.messages.creation_date[b], w[1]);
                if ka >= kb {
                    return Err(SnbError::Config("date index out of order".into()));
                }
            }
            for &ix in &self.message_by_date {
                seen[ix as usize] = true;
            }
            if seen.iter().any(|&s| !s) {
                return Err(SnbError::Config("date index is not a permutation".into()));
            }
        }
        Ok(())
    }
}

/// Morsel ranges `[0, n)` split into `size`-sized pieces (last one
/// short). Mirrors `snb_engine::exec::chunk_ranges`, re-implemented
/// here because the store sits below the engine in the crate graph.
fn chunks(n: usize, size: usize) -> impl Iterator<Item = Range<usize>> {
    let size = size.max(1);
    (0..n).step_by(size).map(move |lo| lo..(lo + size).min(n))
}
