//! Epoch/snapshot concurrency: immutable published store versions.
//!
//! The service tier used to funnel every request — including pure
//! reads — through one `RwLock<PartitionedStore>`, the exact
//! anti-pattern the LDBC benchmarking literature flags as the reason
//! "parallel" engines show negative scaling under mixed load. This
//! module replaces the lock with version publication:
//!
//! * a **writer** clones the latest [`PartitionedStore`] (near-free:
//!   every component is a [`CowBox`](crate::cow::CowBox), so the clone
//!   is ~40 `Arc` bumps), mutates the private clone (copy-on-write
//!   deep-copies only the components the batch touches), and publishes
//!   it as the next [`StoreVersion`] with an atomic swap;
//! * a **reader** grabs a [`StoreSnapshot`] pointer at admission —
//!   wait-free in the common case, never taking a lock — and runs its
//!   whole query against that immutable version, unaffected by any
//!   concurrent publish.
//!
//! The invalidation point is the publish itself: a version is visible
//! to new readers exactly from the moment [`SnapshotCell::publish`]
//! stores the new version counter, and a reader admitted before that
//! instant keeps its old version alive (and byte-identical) for as long
//! as it holds the snapshot. Mid-batch state is unpublishable by
//! construction: if the mutation closure fails or panics, the private
//! clone is discarded and the current version stays current.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use snb_core::SnbResult;

use crate::partition::PartitionedStore;

/// Slot-ring size of the [`SnapshotCell`]. A publish reuses the slot
/// `SLOTS` generations old, so the ring itself retains at most `SLOTS`
/// recent versions (readers can retain older ones via their snapshots).
const SLOTS: usize = 8;

/// Reader attempts before a retry loop is counted as *blocked* (the
/// safety valve the interference CI stage asserts never fires).
const BLOCKED_AFTER: u32 = 64;

struct Slot<T> {
    /// Readers currently dereferencing this slot's value.
    pins: AtomicU64,
    value: UnsafeCell<Option<Arc<T>>>,
}

/// A lock-free single-writer / multi-reader publication cell.
///
/// Readers never block: [`load`](SnapshotCell::load) is a pin → recheck
/// → clone → unpin sequence that retries only if a publish raced it
/// (bounded in practice by the publish rate, and counted honestly in
/// [`reader_retries`](SnapshotCell::reader_retries)). The writer waits
/// only for stragglers pinning the slot it is about to *reuse* — a
/// reader from `SLOTS` publishes ago that is mid-clone, a window of a
/// few instructions.
///
/// Publishes must be serialized by the caller ([`StoreHandle`] holds a
/// mutex); a concurrent publish is a programming error and panics.
pub struct SnapshotCell<T> {
    slots: Box<[Slot<T>]>,
    /// Monotone version counter of the latest published value; the
    /// value for version `v` lives in slot `v % SLOTS`.
    current: AtomicU64,
    publishing: AtomicBool,
    reader_retries: AtomicU64,
    reader_blocked: AtomicU64,
}

// Safety: the cell hands out `Arc<T>` clones across threads (needs
// `T: Send + Sync`) and guards every `UnsafeCell` access with the
// pin/recheck protocol proven in `load`/`publish`.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// A cell whose version 0 is `initial`.
    pub fn new(initial: Arc<T>) -> SnapshotCell<T> {
        let slots: Box<[Slot<T>]> = (0..SLOTS)
            .map(|i| Slot {
                pins: AtomicU64::new(0),
                value: UnsafeCell::new((i == 0).then_some(Arc::clone(&initial))),
            })
            .collect();
        SnapshotCell {
            slots,
            current: AtomicU64::new(0),
            publishing: AtomicBool::new(false),
            reader_retries: AtomicU64::new(0),
            reader_blocked: AtomicU64::new(0),
        }
    }

    /// The latest published version counter.
    pub fn version(&self) -> u64 {
        self.current.load(Ordering::SeqCst)
    }

    /// Loads the latest published value without ever taking a lock.
    pub fn load(&self) -> Arc<T> {
        let mut attempts = 0u32;
        loop {
            let cur = self.current.load(Ordering::SeqCst);
            let slot = &self.slots[(cur as usize) % SLOTS];
            slot.pins.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == cur {
                // The pin is visible (SeqCst RMW) and the version did
                // not move: a writer can next touch this slot only when
                // publishing `cur + SLOTS`, which requires `current` to
                // have advanced first — so it will observe our pin and
                // wait. Reading the cell here cannot race a write.
                let value =
                    unsafe { (*slot.value.get()).as_ref().expect("published slot").clone() };
                slot.pins.fetch_sub(1, Ordering::SeqCst);
                return value;
            }
            // A publish raced us between the version read and the pin;
            // the slot may be mid-overwrite. Back off and retry.
            slot.pins.fetch_sub(1, Ordering::SeqCst);
            self.reader_retries.fetch_add(1, Ordering::Relaxed);
            attempts += 1;
            if attempts >= BLOCKED_AFTER {
                // Safety valve: only reachable if publishes lap readers
                // SLOTS times within one pin attempt. Counted so the CI
                // interference stage can assert it stays at zero.
                self.reader_blocked.fetch_add(1, Ordering::Relaxed);
                attempts = 0;
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Publishes `value` as the next version and returns its counter.
    /// Caller must serialize publishes.
    pub fn publish(&self, value: Arc<T>) -> u64 {
        assert!(
            !self.publishing.swap(true, Ordering::SeqCst),
            "concurrent SnapshotCell::publish — publishes must be serialized"
        );
        let next = self.current.load(Ordering::SeqCst) + 1;
        let slot = &self.slots[(next as usize) % SLOTS];
        // Drain stragglers still cloning the SLOTS-generations-old value
        // out of the slot we are about to reuse. Readers hold pins only
        // across an Arc clone, so this wait is a few instructions long.
        let mut spins = 0u32;
        while slot.pins.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins >= BLOCKED_AFTER {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // Safety: pins are zero and any reader that pins from here on
        // rechecks `current`, which still names an older version, so it
        // unpins without touching the cell.
        unsafe { *slot.value.get() = Some(value) };
        self.current.store(next, Ordering::SeqCst);
        self.publishing.store(false, Ordering::SeqCst);
        next
    }

    /// Reader retry count (pin attempts that lost a race to a publish).
    pub fn reader_retries(&self) -> u64 {
        self.reader_retries.load(Ordering::Relaxed)
    }

    /// Reader safety-valve count — loops that exceeded
    /// [`BLOCKED_AFTER`] attempts and yielded. Zero under any sane
    /// publish rate; the CI interference smoke asserts exactly that.
    pub fn reader_blocked(&self) -> u64 {
        self.reader_blocked.load(Ordering::Relaxed)
    }
}

/// Live/peak gauge for published versions, shared by every
/// [`StoreVersion`] a handle creates.
#[derive(Default)]
struct LiveGauge {
    live: AtomicU64,
    peak: AtomicU64,
}

impl LiveGauge {
    fn inc(&self) {
        let now = self.live.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }
    fn dec(&self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One immutable published version of the partitioned store.
///
/// Dereferences to [`PartitionedStore`] (and transitively to
/// [`Store`](crate::Store)), so query code takes a version exactly
/// where it used to take a store reference.
pub struct StoreVersion {
    store: PartitionedStore,
    version: u64,
    published_at: Instant,
    gauge: Arc<LiveGauge>,
}

impl StoreVersion {
    /// The version counter stamped at publish time (0 = bulk-load base).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Time since this version was published.
    pub fn age(&self) -> Duration {
        self.published_at.elapsed()
    }
}

impl std::ops::Deref for StoreVersion {
    type Target = PartitionedStore;
    fn deref(&self) -> &PartitionedStore {
        &self.store
    }
}

impl Drop for StoreVersion {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

/// A reader's pinned, immutable view of one published store version.
/// Cloning is an `Arc` bump; the underlying version (and every result
/// computed from it) stays byte-identical for the snapshot's lifetime,
/// no matter how many versions the writer publishes meanwhile.
#[derive(Clone)]
pub struct StoreSnapshot(Arc<StoreVersion>);

impl StoreSnapshot {
    /// The published version this snapshot pins.
    pub fn version(&self) -> u64 {
        self.0.version()
    }

    /// Time since this snapshot's version was published — the
    /// "snapshot age" the access log records per request.
    pub fn age(&self) -> Duration {
        self.0.age()
    }

    /// The pinned store version.
    pub fn store(&self) -> &PartitionedStore {
        &self.0.store
    }
}

impl std::ops::Deref for StoreSnapshot {
    type Target = PartitionedStore;
    fn deref(&self) -> &PartitionedStore {
        &self.0.store
    }
}

impl std::fmt::Debug for StoreSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSnapshot").field("version", &self.version()).finish()
    }
}

/// Counters describing a handle's publication history, recorded in
/// benchmark metadata so result-cache work can key off the publish
/// point.
#[derive(Clone, Copy, Debug, Default)]
pub struct SnapshotStats {
    /// Latest published version (equals versions published; 0 = base).
    pub version: u64,
    /// Store versions currently alive (ring slots + reader snapshots).
    pub live_versions: u64,
    /// High-water mark of `live_versions`.
    pub peak_live_versions: u64,
    /// Reader pin attempts that lost a race to a publish and retried.
    pub reader_retries: u64,
    /// Reader retry loops that hit the safety valve and yielded —
    /// the "reader blocked" events CI asserts are zero.
    pub reader_blocked: u64,
}

/// The publication handle: the *only* way to mutate a served store.
///
/// Readers call [`snapshot`](StoreHandle::snapshot) (lock-free);
/// writers call [`publish_with`](StoreHandle::publish_with), which
/// builds the next version privately and publishes it atomically on
/// success. There is no way to reach a `&mut` of the published store,
/// so callers cannot bypass the writer or expose mid-batch state.
pub struct StoreHandle {
    cell: SnapshotCell<StoreVersion>,
    /// Serializes writers; held only across clone + mutate + publish,
    /// never touched by readers.
    publish: Mutex<()>,
    gauge: Arc<LiveGauge>,
}

impl StoreHandle {
    /// Publishes `store` as version 0 and returns the handle.
    pub fn new(store: PartitionedStore) -> StoreHandle {
        let gauge = Arc::new(LiveGauge::default());
        gauge.inc();
        let base = StoreVersion {
            store,
            version: 0,
            published_at: Instant::now(),
            gauge: Arc::clone(&gauge),
        };
        StoreHandle { cell: SnapshotCell::new(Arc::new(base)), publish: Mutex::new(()), gauge }
    }

    /// The latest published version — lock-free.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot(self.cell.load())
    }

    /// The latest published version counter.
    pub fn version(&self) -> u64 {
        self.cell.version()
    }

    /// Builds and publishes the next version: clones the latest store
    /// (cheap, copy-on-write), applies `f` to the private clone, and
    /// publishes it only if `f` returns `Ok`. On `Err` — or if `f`
    /// panics — the clone is discarded and readers keep seeing the
    /// current version; a half-applied batch is unpublishable.
    pub fn publish_with<R>(
        &self,
        f: impl FnOnce(&mut PartitionedStore) -> SnbResult<R>,
    ) -> SnbResult<R> {
        // A writer panic poisons the std mutex; the store itself cannot
        // be torn (the clone died with the panic), so later writers may
        // keep going — the service layer decides separately whether to
        // degrade.
        let _writer = self.publish.lock().unwrap_or_else(|e| e.into_inner());
        let mut next = self.cell.load().store.clone();
        let out = f(&mut next)?;
        self.gauge.inc();
        let version = StoreVersion {
            store: next,
            version: self.cell.version() + 1,
            published_at: Instant::now(),
            gauge: Arc::clone(&self.gauge),
        };
        self.cell.publish(Arc::new(version));
        Ok(out)
    }

    /// Publication counters for run metadata.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            version: self.cell.version(),
            live_versions: self.gauge.live.load(Ordering::SeqCst),
            peak_live_versions: self.gauge.peak.load(Ordering::SeqCst),
            reader_retries: self.cell.reader_retries(),
            reader_blocked: self.cell.reader_blocked(),
        }
    }
}

impl std::fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHandle").field("version", &self.version()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use snb_core::SnbError;

    fn handle() -> StoreHandle {
        StoreHandle::new(PartitionedStore::new(Store::default(), 2))
    }

    #[test]
    fn publish_increments_version_and_snapshot_pins_old() {
        let h = handle();
        let pinned = h.snapshot();
        assert_eq!(pinned.version(), 0);
        for i in 1..=3u64 {
            h.publish_with(|_s| Ok(())).unwrap();
            assert_eq!(h.version(), i);
        }
        // The pinned snapshot still names version 0 while the handle
        // serves version 3 to new readers.
        assert_eq!(pinned.version(), 0);
        assert_eq!(h.snapshot().version(), 3);
    }

    #[test]
    fn failed_publish_leaves_version_unchanged() {
        let h = handle();
        let err = h.publish_with(|_s| -> SnbResult<()> { Err(SnbError::Config("boom".into())) });
        assert!(err.is_err());
        assert_eq!(h.version(), 0, "a failed batch must not publish");
        assert_eq!(h.snapshot().version(), 0);
    }

    #[test]
    fn panicking_publish_discards_the_clone() {
        let h = Arc::new(handle());
        let h2 = Arc::clone(&h);
        let r = std::thread::spawn(move || {
            h2.publish_with(|_s| -> SnbResult<()> { panic!("mid-batch") })
        })
        .join();
        assert!(r.is_err(), "the panic must propagate");
        assert_eq!(h.version(), 0);
        // The handle must still accept publishes afterwards.
        h.publish_with(|_s| Ok(())).unwrap();
        assert_eq!(h.version(), 1);
    }

    #[test]
    fn gauge_tracks_live_and_peak_versions() {
        let h = handle();
        let s = h.stats();
        assert_eq!(s.version, 0);
        assert_eq!(s.live_versions, 1);
        for _ in 0..20 {
            h.publish_with(|_s| Ok(())).unwrap();
        }
        let s = h.stats();
        assert_eq!(s.version, 20);
        // The ring retains at most SLOTS versions once publishes wrap.
        assert!(s.live_versions <= SLOTS as u64 + 1, "live={}", s.live_versions);
        assert!(s.peak_live_versions >= s.live_versions);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_versions() {
        // Hammer load() from several threads while the writer publishes
        // as fast as it can; every loaded version must be valid and
        // monotone non-decreasing per reader.
        let h = Arc::new(handle());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut loads = 0u64;
                    // Check `stop` *after* each load: on a 1-core host
                    // the writer can finish all 500 publishes before
                    // this thread is first scheduled, and every reader
                    // must still observe at least one version.
                    loop {
                        let v = h.snapshot().version();
                        assert!(v >= last, "version went backwards: {last} -> {v}");
                        last = v;
                        loads += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    loads
                })
            })
            .collect();
        for _ in 0..500 {
            h.publish_with(|_s| Ok(())).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(h.version(), 500);
        assert_eq!(h.stats().reader_blocked, 0, "readers must never block");
    }
}
