//! Streaming datagen→ingest: build a [`Store`] directly from the
//! generator's record stream without materialising the full
//! [`RawGraph`].
//!
//! The classic path ([`crate::build::store_for_config`]) holds every raw
//! record — dominated by message content `String`s — *and* the columnar
//! store at the same time, roughly doubling peak memory. The streaming
//! path keeps only what later passes genuinely need:
//!
//! * persons and `knows` edges (both O(persons), a sliver of the data)
//!   because the activity pass draws repliers/likers from the whole
//!   friendship graph;
//! * compact edge-index accumulators (`(u32, u32, payload)` triples) for
//!   the CSR builds at the end;
//! * three dense creation-date ledgers (a few bytes per entity) so the
//!   update-stream tail can compute dependant timestamps without the
//!   bulk records.
//!
//! Every forum/membership/message/like flows straight from
//! [`ActivitySink`] into columnar form and is dropped. Emission order is
//! dependency-safe (see the sink contract), so ingestion is single-pass:
//! a comment's parent and a post's forum are always already resolved.
//! The result is bit-identical to the bulk path — pinned by
//! `streaming_build_matches_bulk` below.

use snb_core::datetime::DateTime;
use snb_core::model::MessageKind;

use snb_datagen::dictionaries::{StaticWorld, BROWSERS};
use snb_datagen::graph::{RawForum, RawGraph, RawKnows, RawLike, RawMembership, RawMessage, RawPerson};
use snb_datagen::stream::TimedEvent;
use snb_datagen::{ActivitySink, GeneratorConfig};

use crate::adj::Adj;
use crate::columns::{Ix, NONE};
use crate::store::Store;

/// How many persons each generation chunk holds. Small enough that a
/// chunk is a rounding error next to the store, large enough that the
/// per-chunk overhead vanishes.
const PERSON_CHUNK: usize = 4096;

/// Incremental store builder fed by the generator's record stream.
///
/// Records must arrive in the generator's dependency order: all persons,
/// then all `knows` edges, then activity via the [`ActivitySink`] impl.
/// [`StreamBuilder::finish`] assembles the CSR adjacencies and returns
/// the store plus (when a cut was given) the update-event tail.
pub struct StreamBuilder<'w> {
    world: &'w StaticWorld,
    /// Records at/after this instant are withheld from the store and
    /// (if set) captured for the update streams.
    cut: Option<DateTime>,
    s: Store,

    // Dense creation-date ledgers over ALL generated entities (ids are
    // sequential), bulk and tail alike — tail events may depend on bulk
    // entities.
    person_created: Vec<DateTime>,
    forum_created: Vec<DateTime>,
    message_created: Vec<(DateTime, MessageKind)>,
    /// Tail records (at/after `cut`) kept for update-stream synthesis;
    /// stays empty when no cut is configured.
    tail: RawGraph,

    // Edge accumulators, in exactly the order the bulk path produces
    // them so the stable CSR counting sort yields identical adjacency.
    interest_edges: Vec<(Ix, Ix, ())>,
    study_edges: Vec<(Ix, Ix, i32)>,
    work_edges: Vec<(Ix, Ix, i32)>,
    city_edges: Vec<(Ix, Ix, ())>,
    knows_edges: Vec<(Ix, Ix, DateTime)>,
    forum_tag_edges: Vec<(Ix, Ix, ())>,
    moderates: Vec<(Ix, Ix, ())>,
    member_edges: Vec<(Ix, Ix, DateTime)>,
    tag_edges: Vec<(Ix, Ix, ())>,
    creator_edges: Vec<(Ix, Ix, ())>,
    forum_post_edges: Vec<(Ix, Ix, ())>,
    reply_edges: Vec<(Ix, Ix, ())>,
    like_edges: Vec<(Ix, Ix, DateTime)>,
}

impl<'w> StreamBuilder<'w> {
    /// A builder with the static world loaded. Pass `Some(cut)` to
    /// withhold the stream tail (records at/after the cut) from the
    /// store and capture it for [`StreamBuilder::finish`] to turn into
    /// update events.
    pub fn new(world: &'w StaticWorld, cut: Option<DateTime>) -> Self {
        let mut s = Store::default();
        crate::build::load_static(&mut s, world);
        StreamBuilder {
            world,
            cut,
            s,
            person_created: Vec::new(),
            forum_created: Vec::new(),
            message_created: Vec::new(),
            tail: RawGraph::default(),
            interest_edges: Vec::new(),
            study_edges: Vec::new(),
            work_edges: Vec::new(),
            city_edges: Vec::new(),
            knows_edges: Vec::new(),
            forum_tag_edges: Vec::new(),
            moderates: Vec::new(),
            member_edges: Vec::new(),
            tag_edges: Vec::new(),
            creator_edges: Vec::new(),
            forum_post_edges: Vec::new(),
            reply_edges: Vec::new(),
            like_edges: Vec::new(),
        }
    }

    fn keep(&self, t: DateTime) -> bool {
        self.cut.is_none_or(|c| t < c)
    }

    /// Ingests one chunk of persons (columns + static edges).
    pub fn add_persons(&mut self, chunk: &[RawPerson]) {
        let cut = self.cut;
        let keep = |t: DateTime| cut.is_none_or(|c| t < c);
        let s = &mut self.s;
        for p in chunk {
            self.person_created.push(p.creation_date);
            if !keep(p.creation_date) {
                if cut.is_some() {
                    self.tail.persons.push(p.clone());
                }
                continue;
            }
            let ix = s.persons.len() as Ix;
            s.person_ix.insert(p.id.0, ix);
            s.persons.id.push(p.id.0);
            s.persons.first_name.push(p.first_name);
            s.persons.last_name.push(p.last_name);
            s.persons.gender.push(p.gender);
            s.persons.birthday.push(p.birthday);
            s.persons.creation_date.push(p.creation_date);
            s.persons.location_ip.push(&p.location_ip);
            s.persons.browser.push(BROWSERS[p.browser as usize].0);
            let city = s.place_ix[&p.city.0];
            s.persons.city.push(city);
            s.persons.emails.push_row(&p.emails);
            s.persons.speaks.push_row(p.languages.iter().map(|&l| self.world.languages[l as usize]));
            for t in &p.interests {
                self.interest_edges.push((ix, s.tag_ix[&t.0], ()));
            }
            if let Some((org, year)) = p.study_at {
                self.study_edges.push((ix, s.org_ix[&org.0], year));
            }
            for &(org, from) in &p.work_at {
                self.work_edges.push((ix, s.org_ix[&org.0], from));
            }
            self.city_edges.push((city, ix, ()));
        }
    }

    /// Ingests the `knows` edges (call after all persons).
    pub fn add_knows(&mut self, knows: &[RawKnows]) {
        for k in knows {
            if !self.keep(k.creation_date) {
                if self.cut.is_some() {
                    self.tail.knows.push(*k);
                }
                continue;
            }
            let (Some(&a), Some(&b)) =
                (self.s.person_ix.get(&k.a.0), self.s.person_ix.get(&k.b.0))
            else {
                continue;
            };
            self.knows_edges.push((a, b, k.creation_date));
            self.knows_edges.push((b, a, k.creation_date));
        }
    }

    /// Assembles adjacency, rebuilds the date index and returns the
    /// store plus the update-event tail (empty without a cut).
    pub fn finish(mut self) -> (Store, Vec<TimedEvent>) {
        {
            let s = &mut self.s;
            let np = s.persons.len();
            let nt = s.tags.len();
            let nf = s.forums.len();
            let nm = s.messages.len();

            let (pi, ip) = crate::adj::forward_reverse(np, nt, &self.interest_edges);
            *s.person_interest = pi;
            *s.interest_person = ip;
            *s.person_study = Adj::from_edges(np, &self.study_edges);
            *s.person_work = Adj::from_edges(np, &self.work_edges);
            *s.city_person = Adj::from_edges(s.places.len(), &self.city_edges);
            *s.knows = Adj::from_edges(np, &self.knows_edges);

            let (ft, tf) = crate::adj::forward_reverse(nf, nt, &self.forum_tag_edges);
            *s.forum_tag = ft;
            *s.tag_forum = tf;
            *s.person_moderates = Adj::from_edges(np, &self.moderates);
            *s.forum_member = Adj::from_edges(nf, &self.member_edges);
            let rev: Vec<(u32, u32, DateTime)> =
                self.member_edges.iter().map(|&(f, p, d)| (p, f, d)).collect();
            *s.member_forum = Adj::from_edges(np, &rev);

            let (mt, tm) = crate::adj::forward_reverse(nm, nt, &self.tag_edges);
            *s.message_tag = mt;
            *s.tag_message = tm;
            *s.person_messages = Adj::from_edges(np, &self.creator_edges);
            *s.forum_posts = Adj::from_edges(nf, &self.forum_post_edges);
            *s.message_replies = Adj::from_edges(nm, &self.reply_edges);

            *s.person_likes = Adj::from_edges(np, &self.like_edges);
            let rev: Vec<(u32, u32, DateTime)> =
                self.like_edges.iter().map(|&(p, m, d)| (m, p, d)).collect();
            *s.message_likes = Adj::from_edges(nm, &rev);

            s.rebuild_date_index();
            s.shrink_columns();
        }
        let events = match self.cut {
            Some(cut) => snb_datagen::stream::build_update_streams_dense(
                &self.tail,
                &self.person_created,
                &self.forum_created,
                &self.message_created,
                cut,
            ),
            None => Vec::new(),
        };
        (self.s, events)
    }
}

impl ActivitySink for StreamBuilder<'_> {
    fn forum(&mut self, f: RawForum) {
        self.forum_created.push(f.creation_date);
        if !self.keep(f.creation_date) {
            if self.cut.is_some() {
                self.tail.forums.push(f);
            }
            return;
        }
        let s = &mut self.s;
        let Some(&moderator) = s.person_ix.get(&f.moderator.0) else { return };
        let ix = s.forums.len() as Ix;
        s.forum_ix.insert(f.id.0, ix);
        s.forums.id.push(f.id.0);
        s.forums.title.push(&f.title);
        s.forums.creation_date.push(f.creation_date);
        s.forums.moderator.push(moderator);
        for t in &f.tags {
            self.forum_tag_edges.push((ix, s.tag_ix[&t.0], ()));
        }
        self.moderates.push((moderator, ix, ()));
    }

    fn membership(&mut self, m: RawMembership) {
        if !self.keep(m.join_date) {
            if self.cut.is_some() {
                self.tail.memberships.push(m);
            }
            return;
        }
        let (Some(&f), Some(&p)) =
            (self.s.forum_ix.get(&m.forum.0), self.s.person_ix.get(&m.person.0))
        else {
            return;
        };
        self.member_edges.push((f, p, m.join_date));
    }

    fn message(&mut self, m: RawMessage) {
        self.message_created.push((m.creation_date, m.kind));
        if !self.keep(m.creation_date) {
            if self.cut.is_some() {
                self.tail.messages.push(m);
            }
            return;
        }
        let s = &mut self.s;
        let ix = s.messages.len() as Ix;
        s.message_ix.insert(m.id.0, ix);
        s.messages.id.push(m.id.0);
        s.messages.kind.push(m.kind);
        s.messages.creation_date.push(m.creation_date);
        let creator = s.person_ix[&m.creator.0];
        s.messages.creator.push(creator);
        s.messages.country.push(s.place_ix[&m.country.0]);
        s.messages.browser.push(BROWSERS[m.browser as usize].0);
        s.messages.location_ip.push(&m.location_ip);
        s.messages.content.push(&m.content);
        s.messages.length.push(m.length);
        s.messages.image_file.push(m.image_file.as_deref().unwrap_or_default());
        s.messages
            .language
            .push(m.language.map(|l| self.world.languages[l as usize]).unwrap_or_default());
        let forum_ix = match m.forum {
            Some(f) => s.forum_ix[&f.0],
            None => NONE,
        };
        s.messages.forum.push(forum_ix);
        // Dependency-safe emission order: a parent/root always has a
        // smaller id and was ingested first, so single-pass resolution
        // replaces the bulk path's second pass.
        let parent_ix = match m.reply_of {
            Some(parent) => {
                let p = s.message_ix[&parent.0];
                self.reply_edges.push((p, ix, ()));
                p
            }
            None => NONE,
        };
        s.messages.reply_of.push(parent_ix);
        s.messages.root_post.push(s.message_ix[&m.root_post.0]);
        for t in &m.tags {
            self.tag_edges.push((ix, s.tag_ix[&t.0], ()));
        }
        self.creator_edges.push((creator, ix, ()));
        if m.kind == MessageKind::Post {
            self.forum_post_edges.push((forum_ix, ix, ()));
        }
    }

    fn like(&mut self, l: RawLike) {
        if !self.keep(l.creation_date) {
            if self.cut.is_some() {
                self.tail.likes.push(l);
            }
            return;
        }
        let (Some(&p), Some(&m)) =
            (self.s.person_ix.get(&l.person.0), self.s.message_ix.get(&l.message.0))
        else {
            return;
        };
        self.like_edges.push((p, m, l.creation_date));
    }
}

/// Runs the generation pipeline chunk-at-a-time, ingesting into the
/// store as records appear. Returns the store plus the update-event
/// tail when `cut` is set.
fn streaming_build(
    config: &GeneratorConfig,
    cut: Option<DateTime>,
) -> (Store, Vec<TimedEvent>) {
    let world = StaticWorld::build(config.seed);
    let mut builder = StreamBuilder::new(&world, cut);

    // Persons arrive in chunks; they stay resident (the knows and
    // activity passes sample the whole population) but that is
    // O(persons) — the message volume that dominates the raw graph
    // streams straight through.
    let mut persons: Vec<RawPerson> = Vec::with_capacity(config.persons as usize);
    for chunk in snb_datagen::person_chunks(config, &world, PERSON_CHUNK) {
        builder.add_persons(&chunk);
        persons.extend(chunk);
    }
    let knows = snb_datagen::knows::generate_knows(config, &persons);
    builder.add_knows(&knows);
    snb_datagen::generate_activity_into(config, &world, &persons, &knows, &mut builder);
    builder.finish()
}

/// Streaming twin of [`crate::build::store_for_config`]: the identical
/// store, built without materialising the raw activity.
pub fn streaming_store_for_config(config: &GeneratorConfig) -> Store {
    streaming_build(config, None).0
}

/// Streaming twin of [`crate::build::bulk_store_and_stream`]: the bulk
/// store plus the sorted update-event tail, with only the tail records
/// (~10%) ever materialised in raw form.
pub fn streaming_bulk_store_and_stream(
    config: &GeneratorConfig,
) -> (Store, Vec<TimedEvent>) {
    streaming_build(config, Some(config.stream_cut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{bulk_store_and_stream, store_for_config};
    use snb_core::scale::ScaleFactor;

    fn config(n: u64) -> GeneratorConfig {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = n;
        c
    }

    /// Exhaustive equality between two stores built from the same
    /// config: every column and every adjacency list.
    fn assert_stores_equal(a: &Store, b: &Store) {
        assert_eq!(*a.persons.id, *b.persons.id);
        assert_eq!(*a.forums.id, *b.forums.id);
        assert_eq!(*a.messages.id, *b.messages.id);
        assert_eq!(*a.persons.creation_date, *b.persons.creation_date);
        assert_eq!(*a.messages.creation_date, *b.messages.creation_date);
        assert_eq!(*a.messages.reply_of, *b.messages.reply_of);
        assert_eq!(*a.messages.root_post, *b.messages.root_post);
        assert_eq!(*a.messages.forum, *b.messages.forum);
        assert_eq!(*a.messages.creator, *b.messages.creator);
        assert_eq!(*a.messages.length, *b.messages.length);
        assert_eq!(*a.persons.city, *b.persons.city);
        assert_eq!(*a.message_by_date, *b.message_by_date);
        for i in 0..a.persons.len() {
            assert_eq!(&a.persons.first_name[i], &b.persons.first_name[i]);
            assert_eq!(&a.persons.location_ip[i], &b.persons.location_ip[i]);
            assert_eq!(a.persons.emails.row_vec(i), b.persons.emails.row_vec(i));
            assert_eq!(a.persons.speaks.row_vec(i), b.persons.speaks.row_vec(i));
        }
        for i in 0..a.messages.len() {
            assert_eq!(&a.messages.content[i], &b.messages.content[i]);
            assert_eq!(&a.messages.image_file[i], &b.messages.image_file[i]);
            assert_eq!(&a.messages.language[i], &b.messages.language[i]);
            assert_eq!(&a.messages.browser[i], &b.messages.browser[i]);
        }
        for i in 0..a.forums.len() {
            assert_eq!(&a.forums.title[i], &b.forums.title[i]);
        }
        // Adjacency: identical neighbour sequences everywhere.
        macro_rules! adj_eq {
            ($field:ident, $n:expr) => {
                assert_eq!(a.$field.edge_count(), b.$field.edge_count(), stringify!($field));
                for src in 0..$n as Ix {
                    let an: Vec<_> = a.$field.neighbors(src).collect();
                    let bn: Vec<_> = b.$field.neighbors(src).collect();
                    assert_eq!(an, bn, "{} of {}", stringify!($field), src);
                }
            };
        }
        adj_eq!(knows, a.persons.len());
        adj_eq!(person_interest, a.persons.len());
        adj_eq!(interest_person, a.tags.len());
        adj_eq!(person_study, a.persons.len());
        adj_eq!(person_work, a.persons.len());
        adj_eq!(city_person, a.places.len());
        adj_eq!(forum_tag, a.forums.len());
        adj_eq!(tag_forum, a.tags.len());
        adj_eq!(person_moderates, a.persons.len());
        adj_eq!(forum_member, a.forums.len());
        adj_eq!(member_forum, a.persons.len());
        adj_eq!(message_tag, a.messages.len());
        adj_eq!(tag_message, a.tags.len());
        adj_eq!(person_messages, a.persons.len());
        adj_eq!(forum_posts, a.forums.len());
        adj_eq!(message_replies, a.messages.len());
        adj_eq!(person_likes, a.persons.len());
        adj_eq!(message_likes, a.messages.len());
    }

    #[test]
    fn streaming_build_matches_bulk() {
        let c = config(150);
        let bulk = store_for_config(&c);
        let streamed = streaming_store_for_config(&c);
        streamed.validate_invariants().unwrap();
        assert_stores_equal(&bulk, &streamed);
    }

    #[test]
    fn streaming_split_matches_bulk_split() {
        let c = config(150);
        let (bulk, bulk_events) = bulk_store_and_stream(&c);
        let (streamed, stream_events) = streaming_bulk_store_and_stream(&c);
        streamed.validate_invariants().unwrap();
        assert_stores_equal(&bulk, &streamed);
        // The update-event tails agree event for event.
        assert_eq!(bulk_events.len(), stream_events.len());
        for (x, y) in bulk_events.iter().zip(&stream_events) {
            assert_eq!(x.timestamp, y.timestamp);
            assert_eq!(x.dependent, y.dependent);
            assert_eq!(x.event.operation_id(), y.event.operation_id());
        }
    }

    #[test]
    fn streaming_chunk_boundary_has_no_effect() {
        // Chunked person generation is index-derived, so chunk size is
        // invisible; drive the builder manually with a tiny chunk.
        let c = config(90);
        let world = StaticWorld::build(c.seed);
        let mut b = StreamBuilder::new(&world, None);
        let mut persons = Vec::new();
        for chunk in snb_datagen::person_chunks(&c, &world, 7) {
            b.add_persons(&chunk);
            persons.extend(chunk);
        }
        let knows = snb_datagen::knows::generate_knows(&c, &persons);
        b.add_knows(&knows);
        snb_datagen::generate_activity_into(&c, &world, &persons, &knows, &mut b);
        let (s, events) = b.finish();
        assert!(events.is_empty());
        assert_stores_equal(&store_for_config(&c), &s);
    }
}
