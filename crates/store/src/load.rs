//! Bulk-loading a [`Store`] from a CsvBasic dataset directory
//! (spec §6.1.3: "The test sponsor must provide all the necessary
//! documentation and scripts to load the dataset into the database").
//!
//! Reads the `social_network/{static,dynamic}` layout written by
//! [`snb_datagen::serializer`] with the [`CsvBasic`] variant
//! (spec Table 2.13) and reconstructs the full store, including reverse
//! adjacency and secondary indexes.
//!
//! [`CsvBasic`]: snb_datagen::serializer::CsvVariant::Basic

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use snb_core::datetime::{Date, DateTime};
use snb_core::model::{Gender, MessageKind, OrganisationKind, PlaceKind};
use snb_core::{SnbError, SnbResult};

use crate::adj::Adj;
use crate::columns::{Ix, NONE};
use crate::store::Store;

/// Reads one pipe-separated CSV file, skipping the header, and calls
/// `f` for each record's fields.
fn read_csv(dir: &Path, name: &str, mut f: impl FnMut(&[&str]) -> SnbResult<()>) -> SnbResult<()> {
    let path = dir.join(name);
    let reader =
        BufReader::new(File::open(&path).map_err(|e| {
            SnbError::parse(path.display().to_string(), format!("cannot open: {e}"))
        })?);
    let mut lines = reader.lines();
    let _header = lines.next();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        f(&fields).map_err(|e| {
            SnbError::parse(format!("{}:{}", path.display(), lineno + 2), e.to_string())
        })?;
    }
    Ok(())
}

fn parse_u64(s: &str) -> SnbResult<u64> {
    s.parse().map_err(|_| SnbError::parse("u64", s))
}

fn parse_i32(s: &str) -> SnbResult<i32> {
    s.parse().map_err(|_| SnbError::parse("i32", s))
}

fn parse_datetime(s: &str) -> SnbResult<DateTime> {
    DateTime::parse(s).ok_or_else(|| SnbError::parse("DateTime", s))
}

fn parse_date(s: &str) -> SnbResult<Date> {
    Date::parse(s).ok_or_else(|| SnbError::parse("Date", s))
}

/// Loads a CsvBasic dataset rooted at `root` (the directory containing
/// `social_network/`).
#[allow(clippy::too_many_lines)]
pub fn load_csv_basic(root: &Path) -> SnbResult<Store> {
    let base = root.join("social_network");
    let st = base.join("static");
    let dy = base.join("dynamic");
    let mut s = Store::default();

    // --- static: places ---
    read_csv(&st, "place_0_0.csv", |f| {
        let id = parse_u64(f[0])?;
        let ix = s.places.len() as Ix;
        s.place_ix.insert(id, ix);
        s.places.id.push(id);
        s.places.name.push(f[1]);
        s.places.kind.push(match f[3] {
            "city" => PlaceKind::City,
            "country" => PlaceKind::Country,
            "continent" => PlaceKind::Continent,
            other => return Err(SnbError::parse("place type", other)),
        });
        s.places.part_of.push(NONE);
        s.place_by_name.insert(f[1].to_string(), ix);
        Ok(())
    })?;
    read_csv(&st, "place_isPartOf_place_0_0.csv", |f| {
        let child = s.place_ix[&parse_u64(f[0])?];
        let parent = s.place_ix[&parse_u64(f[1])?];
        s.places.part_of[child as usize] = parent;
        Ok(())
    })?;
    let mut place_children = Vec::new();
    for (pid, &parent) in s.places.part_of.iter().enumerate() {
        if parent != NONE {
            place_children.push((parent, pid as Ix, ()));
        }
    }
    *s.place_children = Adj::from_edges(s.places.len(), &place_children);

    // --- static: tag classes ---
    read_csv(&st, "tagclass_0_0.csv", |f| {
        let id = parse_u64(f[0])?;
        let ix = s.tag_classes.len() as Ix;
        s.tag_class_ix.insert(id, ix);
        s.tag_classes.id.push(id);
        s.tag_classes.name.push(f[1]);
        s.tag_classes.parent.push(NONE);
        s.tag_class_by_name.insert(f[1].to_string(), ix);
        Ok(())
    })?;
    read_csv(&st, "tagclass_isSubclassOf_tagclass_0_0.csv", |f| {
        let child = s.tag_class_ix[&parse_u64(f[0])?];
        let parent = s.tag_class_ix[&parse_u64(f[1])?];
        s.tag_classes.parent[child as usize] = parent;
        Ok(())
    })?;
    let mut class_children = Vec::new();
    for (ci, &parent) in s.tag_classes.parent.iter().enumerate() {
        if parent != NONE {
            class_children.push((parent, ci as Ix, ()));
        }
    }
    *s.tagclass_children = Adj::from_edges(s.tag_classes.len(), &class_children);

    // --- static: tags ---
    read_csv(&st, "tag_0_0.csv", |f| {
        let id = parse_u64(f[0])?;
        let ix = s.tags.len() as Ix;
        s.tag_ix.insert(id, ix);
        s.tags.id.push(id);
        s.tags.name.push(f[1]);
        s.tags.class.push(NONE);
        s.tag_by_name.insert(f[1].to_string(), ix);
        Ok(())
    })?;
    read_csv(&st, "tag_hasType_tagclass_0_0.csv", |f| {
        let tag = s.tag_ix[&parse_u64(f[0])?];
        let class = s.tag_class_ix[&parse_u64(f[1])?];
        s.tags.class[tag as usize] = class;
        Ok(())
    })?;
    let mut class_tags = Vec::new();
    for (ti, &class) in s.tags.class.iter().enumerate() {
        if class != NONE {
            class_tags.push((class, ti as Ix, ()));
        }
    }
    *s.tagclass_tags = Adj::from_edges(s.tag_classes.len(), &class_tags);

    // --- static: organisations ---
    read_csv(&st, "organisation_0_0.csv", |f| {
        let id = parse_u64(f[0])?;
        let ix = s.organisations.len() as Ix;
        s.org_ix.insert(id, ix);
        s.organisations.id.push(id);
        s.organisations.kind.push(match f[1] {
            "university" => OrganisationKind::University,
            "company" => OrganisationKind::Company,
            other => return Err(SnbError::parse("organisation type", other)),
        });
        s.organisations.name.push(f[2]);
        s.organisations.place.push(NONE);
        Ok(())
    })?;
    read_csv(&st, "organisation_isLocatedIn_place_0_0.csv", |f| {
        let org = s.org_ix[&parse_u64(f[0])?];
        let place = s.place_ix[&parse_u64(f[1])?];
        s.organisations.place[org as usize] = place;
        Ok(())
    })?;

    // --- dynamic: persons ---
    read_csv(&dy, "person_0_0.csv", |f| {
        let id = parse_u64(f[0])?;
        let ix = s.persons.len() as Ix;
        s.person_ix.insert(id, ix);
        s.persons.id.push(id);
        s.persons.first_name.push(f[1]);
        s.persons.last_name.push(f[2]);
        s.persons.gender.push(if f[3] == "male" { Gender::Male } else { Gender::Female });
        s.persons.birthday.push(parse_date(f[4])?);
        s.persons.creation_date.push(parse_datetime(f[5])?);
        s.persons.location_ip.push(f[6]);
        s.persons.browser.push(f[7]);
        s.persons.city.push(NONE);
        Ok(())
    })?;
    let np = s.persons.len();
    read_csv(&dy, "person_isLocatedIn_place_0_0.csv", |f| {
        let p = s.person_ix[&parse_u64(f[0])?];
        s.persons.city[p as usize] = s.place_ix[&parse_u64(f[1])?];
        Ok(())
    })?;
    // Multi-valued person attributes are buffered per person and
    // pushed as whole rows: the CSR list columns are append-only, and
    // the association files key rows by person id, not file order.
    let mut emails: Vec<Vec<String>> = vec![Vec::new(); np];
    read_csv(&dy, "person_email_emailaddress_0_0.csv", |f| {
        let p = s.person_ix[&parse_u64(f[0])?];
        emails[p as usize].push(f[1].to_string());
        Ok(())
    })?;
    for row in &emails {
        s.persons.emails.push_row(row);
    }
    let mut speaks: Vec<Vec<String>> = vec![Vec::new(); np];
    read_csv(&dy, "person_speaks_language_0_0.csv", |f| {
        let p = s.person_ix[&parse_u64(f[0])?];
        speaks[p as usize].push(f[1].to_string());
        Ok(())
    })?;
    for row in &speaks {
        s.persons.speaks.push_row(row);
    }
    let mut city_person = Vec::new();
    for (p, &city) in s.persons.city.iter().enumerate() {
        city_person.push((city, p as Ix, ()));
    }
    *s.city_person = Adj::from_edges(s.places.len(), &city_person);

    let mut interest = Vec::new();
    read_csv(&dy, "person_hasInterest_tag_0_0.csv", |f| {
        interest.push((s.person_ix[&parse_u64(f[0])?], s.tag_ix[&parse_u64(f[1])?], ()));
        Ok(())
    })?;
    let (pi, ip) = crate::adj::forward_reverse(np, s.tags.len(), &interest);
    *s.person_interest = pi;
    *s.interest_person = ip;

    let mut study = Vec::new();
    read_csv(&dy, "person_studyAt_organisation_0_0.csv", |f| {
        study.push((s.person_ix[&parse_u64(f[0])?], s.org_ix[&parse_u64(f[1])?], parse_i32(f[2])?));
        Ok(())
    })?;
    *s.person_study = Adj::from_edges(np, &study);
    let mut work = Vec::new();
    read_csv(&dy, "person_workAt_organisation_0_0.csv", |f| {
        work.push((s.person_ix[&parse_u64(f[0])?], s.org_ix[&parse_u64(f[1])?], parse_i32(f[2])?));
        Ok(())
    })?;
    *s.person_work = Adj::from_edges(np, &work);

    let mut knows = Vec::new();
    read_csv(&dy, "person_knows_person_0_0.csv", |f| {
        let a = s.person_ix[&parse_u64(f[0])?];
        let b = s.person_ix[&parse_u64(f[1])?];
        let d = parse_datetime(f[2])?;
        knows.push((a, b, d));
        knows.push((b, a, d));
        Ok(())
    })?;
    *s.knows = Adj::from_edges(np, &knows);

    // --- dynamic: forums ---
    read_csv(&dy, "forum_0_0.csv", |f| {
        let id = parse_u64(f[0])?;
        let ix = s.forums.len() as Ix;
        s.forum_ix.insert(id, ix);
        s.forums.id.push(id);
        s.forums.title.push(f[1]);
        s.forums.creation_date.push(parse_datetime(f[2])?);
        s.forums.moderator.push(NONE);
        Ok(())
    })?;
    let nf = s.forums.len();
    read_csv(&dy, "forum_hasModerator_person_0_0.csv", |f| {
        let forum = s.forum_ix[&parse_u64(f[0])?];
        s.forums.moderator[forum as usize] = s.person_ix[&parse_u64(f[1])?];
        Ok(())
    })?;
    let mut moderates = Vec::new();
    for (f, &m) in s.forums.moderator.iter().enumerate() {
        moderates.push((m, f as Ix, ()));
    }
    *s.person_moderates = Adj::from_edges(np, &moderates);

    let mut members = Vec::new();
    read_csv(&dy, "forum_hasMember_person_0_0.csv", |f| {
        members.push((
            s.forum_ix[&parse_u64(f[0])?],
            s.person_ix[&parse_u64(f[1])?],
            parse_datetime(f[2])?,
        ));
        Ok(())
    })?;
    *s.forum_member = Adj::from_edges(nf, &members);
    let rev: Vec<_> = members.iter().map(|&(f, p, d)| (p, f, d)).collect();
    *s.member_forum = Adj::from_edges(np, &rev);

    let mut forum_tags = Vec::new();
    read_csv(&dy, "forum_hasTag_tag_0_0.csv", |f| {
        forum_tags.push((s.forum_ix[&parse_u64(f[0])?], s.tag_ix[&parse_u64(f[1])?], ()));
        Ok(())
    })?;
    let (ft, tf) = crate::adj::forward_reverse(nf, s.tags.len(), &forum_tags);
    *s.forum_tag = ft;
    *s.tag_forum = tf;

    // --- dynamic: posts then comments (posts first so reply targets of
    // comment->post edges resolve) ---
    read_csv(&dy, "post_0_0.csv", |f| {
        let id = parse_u64(f[0])?;
        let ix = s.messages.len() as Ix;
        s.message_ix.insert(id, ix);
        s.messages.id.push(id);
        s.messages.kind.push(MessageKind::Post);
        s.messages.image_file.push(f[1]);
        s.messages.creation_date.push(parse_datetime(f[2])?);
        s.messages.location_ip.push(f[3]);
        s.messages.browser.push(f[4]);
        s.messages.language.push(f[5]);
        s.messages.content.push(f[6]);
        s.messages.length.push(parse_i32(f[7])? as u32);
        s.messages.creator.push(NONE);
        s.messages.country.push(NONE);
        s.messages.forum.push(NONE);
        s.messages.reply_of.push(NONE);
        s.messages.root_post.push(ix);
        Ok(())
    })?;
    read_csv(&dy, "comment_0_0.csv", |f| {
        let id = parse_u64(f[0])?;
        let ix = s.messages.len() as Ix;
        s.message_ix.insert(id, ix);
        s.messages.id.push(id);
        s.messages.kind.push(MessageKind::Comment);
        s.messages.creation_date.push(parse_datetime(f[1])?);
        s.messages.location_ip.push(f[2]);
        s.messages.browser.push(f[3]);
        s.messages.content.push(f[4]);
        s.messages.length.push(parse_i32(f[5])? as u32);
        s.messages.image_file.push("");
        s.messages.language.push("");
        s.messages.creator.push(NONE);
        s.messages.country.push(NONE);
        s.messages.forum.push(NONE);
        s.messages.reply_of.push(NONE);
        s.messages.root_post.push(NONE);
        Ok(())
    })?;
    let nm = s.messages.len();

    for (file, kind) in [
        ("post_hasCreator_person_0_0.csv", MessageKind::Post),
        ("comment_hasCreator_person_0_0.csv", MessageKind::Comment),
    ] {
        read_csv(&dy, file, |f| {
            let m = s.message_ix[&parse_u64(f[0])?];
            debug_assert_eq!(s.messages.kind[m as usize], kind);
            s.messages.creator[m as usize] = s.person_ix[&parse_u64(f[1])?];
            Ok(())
        })?;
    }
    // CsvBasic writes post_isLocatedIn_place.csv (sic, spec Table 2.13
    // omits the thread suffix for this one file; we emit the suffixed
    // name for uniformity).
    for file in ["post_isLocatedIn_place_0_0.csv", "comment_isLocatedIn_place_0_0.csv"] {
        read_csv(&dy, file, |f| {
            let m = s.message_ix[&parse_u64(f[0])?];
            s.messages.country[m as usize] = s.place_ix[&parse_u64(f[1])?];
            Ok(())
        })?;
    }
    let mut forum_posts = Vec::new();
    read_csv(&dy, "forum_containerOf_post_0_0.csv", |f| {
        let forum = s.forum_ix[&parse_u64(f[0])?];
        let post = s.message_ix[&parse_u64(f[1])?];
        s.messages.forum[post as usize] = forum;
        forum_posts.push((forum, post, ()));
        Ok(())
    })?;
    *s.forum_posts = Adj::from_edges(nf, &forum_posts);

    let mut replies = Vec::new();
    for file in ["comment_replyOf_post_0_0.csv", "comment_replyOf_comment_0_0.csv"] {
        read_csv(&dy, file, |f| {
            let c = s.message_ix[&parse_u64(f[0])?];
            let parent = s.message_ix[&parse_u64(f[1])?];
            s.messages.reply_of[c as usize] = parent;
            replies.push((parent, c, ()));
            Ok(())
        })?;
    }
    *s.message_replies = Adj::from_edges(nm, &replies);
    // Resolve root posts by walking up (memoised by processing posts
    // first: a comment's parent may itself still be unresolved, so walk).
    for m in 0..nm as Ix {
        if s.messages.root_post[m as usize] == NONE {
            let mut chain = vec![m];
            let mut cur = m;
            while s.messages.root_post[cur as usize] == NONE {
                cur = s.messages.reply_of[cur as usize];
                chain.push(cur);
            }
            let root = s.messages.root_post[cur as usize];
            for c in chain {
                s.messages.root_post[c as usize] = root;
            }
        }
    }

    let mut msg_tags = Vec::new();
    for file in ["post_hasTag_tag_0_0.csv", "comment_hasTag_tag_0_0.csv"] {
        read_csv(&dy, file, |f| {
            msg_tags.push((s.message_ix[&parse_u64(f[0])?], s.tag_ix[&parse_u64(f[1])?], ()));
            Ok(())
        })?;
    }
    let (mt, tm) = crate::adj::forward_reverse(nm, s.tags.len(), &msg_tags);
    *s.message_tag = mt;
    *s.tag_message = tm;

    let mut creator_edges = Vec::new();
    for (m, &c) in s.messages.creator.iter().enumerate() {
        creator_edges.push((c, m as Ix, ()));
    }
    *s.person_messages = Adj::from_edges(np, &creator_edges);

    let mut likes = Vec::new();
    for file in ["person_likes_post_0_0.csv", "person_likes_comment_0_0.csv"] {
        read_csv(&dy, file, |f| {
            likes.push((
                s.person_ix[&parse_u64(f[0])?],
                s.message_ix[&parse_u64(f[1])?],
                parse_datetime(f[2])?,
            ));
            Ok(())
        })?;
    }
    *s.person_likes = Adj::from_edges(np, &likes);
    let rev: Vec<_> = likes.iter().map(|&(p, m, d)| (m, p, d)).collect();
    *s.message_likes = Adj::from_edges(nm, &rev);

    s.rebuild_date_index();
    s.shrink_columns();
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_store;
    use snb_core::scale::ScaleFactor;
    use snb_datagen::dictionaries::StaticWorld;
    use snb_datagen::serializer::{serialize, CsvVariant};
    use snb_datagen::GeneratorConfig;

    #[test]
    fn csv_round_trip_is_isomorphic() {
        let mut c = GeneratorConfig::for_scale(ScaleFactor::by_name("0.001").unwrap());
        c.persons = 70;
        let world = StaticWorld::build(c.seed);
        let graph = snb_datagen::generate(&c);
        let cut = c.stream_cut();
        let direct = build_store(&graph, &world, Some(cut));

        let dir = std::env::temp_dir().join(format!("snb_load_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        serialize(&graph, &world, CsvVariant::Basic, cut, &dir).unwrap();
        let loaded = load_csv_basic(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(loaded.persons.len(), direct.persons.len());
        assert_eq!(loaded.messages.len(), direct.messages.len());
        assert_eq!(loaded.forums.len(), direct.forums.len());
        assert_eq!(loaded.knows.edge_count(), direct.knows.edge_count());
        assert_eq!(loaded.person_likes.edge_count(), direct.person_likes.edge_count());
        assert_eq!(loaded.message_tag.edge_count(), direct.message_tag.edge_count());
        loaded.validate_invariants().unwrap();

        // Spot-check attribute fidelity by raw id.
        for &pid in direct.persons.id.iter().take(20) {
            let a = direct.person(pid).unwrap() as usize;
            let b = loaded.person(pid).unwrap() as usize;
            assert_eq!(direct.persons.first_name[a], loaded.persons.first_name[b]);
            assert_eq!(direct.persons.birthday[a], loaded.persons.birthday[b]);
            assert_eq!(direct.persons.creation_date[a], loaded.persons.creation_date[b]);
            assert_eq!(
                direct.places.id[direct.persons.city[a] as usize],
                loaded.places.id[loaded.persons.city[b] as usize]
            );
        }
        for &mid in direct.messages.id.iter().take(50) {
            let a = direct.message(mid).unwrap() as usize;
            let b = loaded.message(mid).unwrap() as usize;
            assert_eq!(direct.messages.content[a], loaded.messages.content[b]);
            assert_eq!(direct.messages.creation_date[a], loaded.messages.creation_date[b]);
            assert_eq!(
                direct.messages.id[direct.messages.root_post[a] as usize],
                loaded.messages.id[loaded.messages.root_post[b] as usize]
            );
        }
    }
}
