//! Offline stand-in for the `criterion` crate.
//!
//! Supports the benchmark sources in `crates/bench/benches` unchanged:
//! `Criterion::default()` builder knobs, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is a plain wall-clock mean
//! over a warm-up + timed loop — no statistics, plots, or comparisons,
//! but the same shape of per-benchmark output lines.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Top-level harness handle (configuration + reporting).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the timed-measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into() }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mean = run_benchmark(self, f);
        report(&id, mean);
        self
    }
}

/// A named collection of benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let mean = run_benchmark(self.c, f);
        report(&id, mean);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, called in batches sized during warm-up.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let started = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.total += started.elapsed();
            self.iters += self.iters_per_sample;
        }
    }
}

fn run_benchmark(c: &Criterion, mut f: impl FnMut(&mut Bencher)) -> Duration {
    // Warm-up: find a batch size whose execution fits the budgets.
    let mut probe = Bencher { iters_per_sample: 1, samples: 1, total: Duration::ZERO, iters: 0 };
    let warm_started = Instant::now();
    f(&mut probe);
    let mut per_iter = probe.total.max(Duration::from_nanos(1)) / probe.iters.max(1) as u32;
    while warm_started.elapsed() < c.warm_up_time {
        let mut more = Bencher { iters_per_sample: 1, samples: 1, total: Duration::ZERO, iters: 0 };
        f(&mut more);
        per_iter = (per_iter + more.total.max(Duration::from_nanos(1))) / 2;
    }
    let budget_per_sample = c.measurement_time / c.sample_size as u32;
    let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).max(1);

    let mut b = Bencher {
        iters_per_sample: iters_per_sample.min(u64::MAX as u128) as u64,
        samples: c.sample_size,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / b.iters.min(u32::MAX as u64) as u32
    }
}

fn report(id: &str, mean: Duration) {
    println!("{id:<40} time: {mean:>12.3?}/iter");
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        let c2 = c.clone().warm_up_time(Duration::from_millis(1));
        let _ = c2;
        let mut ran = 0u64;
        c.benchmark_group("g").bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }
}
