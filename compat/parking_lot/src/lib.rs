//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`read()`/`write()`/`lock()` return guards directly). A poisoned
//! std lock only occurs after a panic while holding the guard; the
//! stand-in propagates the inner value anyway, matching parking_lot's
//! semantics of never poisoning.

use std::sync::{self, PoisonError};

/// Re-export of the std read guard (API-compatible via `Deref`).
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-export of the std write guard (API-compatible via `Deref`).
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Re-export of the std mutex guard (API-compatible via `Deref`).
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with parking_lot's poison-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's poison-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
