//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! Crossbeam's `Receiver` is `Sync` (any thread may drain it); the std
//! receiver is not, so it sits behind a mutex here — adequate for the
//! driver's single-consumer use and still correct for multi-consumer.

/// Multi-producer channels with a shareable receiver.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Error returned when the receiving side has hung up.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// Every sender has hung up and the buffer is drained.
        Disconnected,
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or the channel closes).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a bounded channel (shareable across
    /// threads, unlike `std::sync::mpsc::Receiver`).
    pub struct Receiver<T>(Mutex<mpsc::Receiver<T>>);

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.guard().recv().map_err(|_| RecvError)
        }

        /// Returns a buffered message without blocking, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates messages until every sender is dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self.guard())
        }

        fn guard(&self) -> MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Blocking iterator over a [`Receiver`].
    pub struct Iter<'a, T>(MutexGuard<'a, mpsc::Receiver<T>>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Mutex::new(rx)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded::<u32>(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn send_after_hangup_errors() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
