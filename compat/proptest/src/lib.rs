//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! `proptest!` macro over named strategies (integer ranges, tuples,
//! `prop::collection::vec`), `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`. Inputs are drawn from a splitmix64
//! stream seeded from the test's module path, so every run explores the
//! same cases (reproducibility over shrinking: there is no shrinker —
//! a failure reports the case index and the assertion message).

use std::fmt;
use std::ops::Range;

/// A failed property assertion (carried out of the test closure).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded from a string tag.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from `tag` (typically the test's path).
    pub fn deterministic(tag: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in tag.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors with a length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of proptest's `prop` module.
pub mod prop {
    pub use crate::collection;
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{prop, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` looping over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ([$cfg:expr] $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest {} case {}/{} failed: {}",
                               stringify!($name), __case, __config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Property-test assertion; returns an error from the test closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`", __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{}: `{:?}` != `{:?}`", format!($($fmt)+), __a, __b
            )));
        }
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __a, __b
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(-5i32..7), &mut rng);
            assert!((-5..7).contains(&v));
            let (a, b) = Strategy::sample(&(0u64..3, 10usize..12), &mut rng);
            assert!(a < 3 && (10..12).contains(&b));
            let xs = Strategy::sample(&prop::collection::vec(0u32..4, 1..9), &mut rng);
            assert!((1..9).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: addition is commutative.
        #[test]
        fn macro_smoke(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a < 1000, "a out of range: {}", a);
        }
    }
}
