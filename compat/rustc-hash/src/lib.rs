//! Offline stand-in for the `rustc-hash` crate.
//!
//! The container this repo builds in has no access to crates.io, so the
//! workspace vendors the tiny API surface it actually uses: the Fx
//! multiply-rotate hasher and the `FxHashMap`/`FxHashSet` aliases. The
//! algorithm below is the classic Firefox/rustc Fx hash (rotate, xor,
//! multiply by a 64-bit seed); it is deterministic across runs and
//! platforms of the same pointer width, which the benchmark's
//! reproducibility story relies on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<V> = HashSet<V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_usable() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m[&1], 10);
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("a"));
        assert!(!s.insert("a"));
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
