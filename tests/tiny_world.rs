//! Robustness sweep: every query must handle degenerate worlds without
//! panicking — a near-empty network, persons with no friends, forums
//! with no posts. (Failure-injection layer of the test plan.)

use ldbc_snb::bi::*;
use ldbc_snb::datagen::GeneratorConfig;
use ldbc_snb::interactive::{ic13, short};
use ldbc_snb::params::ParamGen;
use ldbc_snb::store::store_for_config;
use snb_core::Date;

fn tiny(persons: u64) -> ldbc_snb::store::Store {
    let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
    c.persons = persons;
    store_for_config(&c)
}

#[test]
fn all_bi_queries_survive_a_three_person_world() {
    let s = tiny(3);
    let gen = ParamGen::new(&s, 1);
    for q in ldbc_snb::driver::ALL_BI_QUERIES {
        // Curated bindings may be empty at this scale; direct bindings
        // must still not panic.
        for b in gen.bi_params(q, 2) {
            let _ = ldbc_snb::bi::run(&s, &b);
            let _ = ldbc_snb::bi::run_naive(&s, &b);
        }
    }
    // Hand-rolled bindings with parameters that match nothing.
    let _ = bi01::run(&s, &bi01::Params { date: Date::from_ymd(2005, 1, 1) });
    let _ = bi05::run(&s, &bi05::Params { country: "New_Zealand".into() });
    let _ = bi13::run(&s, &bi13::Params { country: "Sweden".into() });
    let _ = bi17::run(&s, &bi17::Params { country: "Hungary".into() });
    let _ = bi20::run(&s, &bi20::Params { tag_classes: vec!["Thing".into()] });
}

#[test]
fn interactive_queries_survive_isolated_persons() {
    let s = tiny(5);
    for pid in s.persons.id.clone() {
        let _ = short::is1::run(&s, &short::is1::Params { person_id: pid });
        let _ = short::is2::run(&s, &short::is2::Params { person_id: pid });
        let _ = short::is3::run(&s, &short::is3::Params { person_id: pid });
        let _ = ldbc_snb::interactive::ic07::run(
            &s,
            &ldbc_snb::interactive::ic07::Params { person_id: pid },
        );
        let _ = ldbc_snb::interactive::ic10::run(
            &s,
            &ldbc_snb::interactive::ic10::Params { person_id: pid, month: 6 },
        );
    }
    // Path queries between every pair.
    for &a in &s.persons.id {
        for &b in &s.persons.id {
            let rows = ic13::run(&s, &ic13::Params { person1_id: a, person2_id: b });
            assert_eq!(rows.len(), 1);
            if a == b {
                assert_eq!(rows[0].shortest_path_length, 0);
            }
        }
    }
}

#[test]
fn validation_holds_even_on_degenerate_worlds() {
    for n in [2u64, 5, 12] {
        let s = tiny(n);
        let gen = ParamGen::new(&s, n);
        for q in ldbc_snb::driver::ALL_BI_QUERIES {
            for b in gen.bi_params(q, 1) {
                ldbc_snb::bi::validate(&s, &b).unwrap_or_else(|e| panic!("n={n}: {e}"));
            }
        }
    }
}

#[test]
fn deleting_everything_leaves_a_queryable_store() {
    use ldbc_snb::store::DeleteOp;
    let mut s = tiny(6);
    let victims: Vec<DeleteOp> = s.persons.id.clone().into_iter().map(DeleteOp::Person).collect();
    s.apply_deletes(&victims).unwrap();
    assert_eq!(s.persons.len(), 0);
    assert_eq!(s.messages.len(), 0);
    assert_eq!(s.forums.len(), 0);
    s.validate_invariants().unwrap();
    // Queries on the empty world return empty results, not panics.
    assert!(bi01::run(&s, &bi01::Params { date: Date::from_ymd(2013, 1, 1) }).is_empty());
    assert!(bi12::run(&s, &bi12::Params { date: Date::from_ymd(2010, 1, 1), like_threshold: 0 })
        .is_empty());
    let t = bi17::run(&s, &bi17::Params { country: "China".into() });
    assert_eq!(t[0].count, 0);
}
