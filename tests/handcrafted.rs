//! Exact-value tests on a hand-crafted subgraph: a controlled cast of
//! persons, posts, comments and likes inserted through the IU path on
//! top of an *empty* generated world, so query results are fully
//! predictable (no generated noise).

use ldbc_snb::bi::{bi06, bi12, bi14};
use ldbc_snb::datagen::GeneratorConfig;
use ldbc_snb::interactive::{ic07, ic08, short};
use ldbc_snb::store::{store_for_config, CommentInsert, PersonInsert, PostInsert, Store};
use snb_core::model::Gender;
use snb_core::{Date, DateTime};

/// An empty dynamic world: static entities only.
fn empty_world() -> Store {
    let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
    c.persons = 0;
    store_for_config(&c)
}

fn add_person(s: &mut Store, id: u64, name: &str, t: i64) {
    let city =
        s.places.id[s.place_by_name.get("Beijing").map(|&c| c as usize).expect("Beijing exists")];
    s.insert_person(PersonInsert {
        id,
        first_name: name.into(),
        last_name: "Fixture".into(),
        gender: Gender::Female,
        birthday: Date::from_ymd(1990, 3, 15),
        creation_date: DateTime(t),
        location_ip: "1.2.3.4".into(),
        browser_used: "Firefox".into(),
        city_id: city,
        speaks: vec!["zh".into()],
        emails: vec![format!("{name}@example.com")],
        tag_ids: vec![0],
        study_at: vec![],
        work_at: vec![],
    })
    .unwrap();
}

fn add_wall(s: &mut Store, id: u64, moderator: u64, t: i64) {
    s.insert_forum(ldbc_snb::store::ForumInsert {
        id,
        title: format!("Wall {id}"),
        creation_date: DateTime(t),
        moderator_person_id: moderator,
        tag_ids: vec![0],
    })
    .unwrap();
}

fn add_post(s: &mut Store, id: u64, author: u64, forum: u64, t: i64, tags: Vec<u64>) {
    let country = s.places.id[s.country_by_name("China").unwrap() as usize];
    s.insert_post(PostInsert {
        id,
        image_file: String::new(),
        creation_date: DateTime(t),
        location_ip: "1.2.3.4".into(),
        browser_used: "Firefox".into(),
        language: "zh".into(),
        content: format!("post {id}"),
        length: 7,
        author_person_id: author,
        forum_id: forum,
        country_id: country,
        tag_ids: tags,
    })
    .unwrap();
}

fn add_comment(s: &mut Store, id: u64, author: u64, parent_post: i64, parent_comment: i64, t: i64) {
    let country = s.places.id[s.country_by_name("China").unwrap() as usize];
    s.insert_comment(CommentInsert {
        id,
        creation_date: DateTime(t),
        location_ip: "1.2.3.4".into(),
        browser_used: "Firefox".into(),
        content: format!("comment {id}"),
        length: 9,
        author_person_id: author,
        country_id: country,
        reply_to_post_id: parent_post,
        reply_to_comment_id: parent_comment,
        tag_ids: vec![],
    })
    .unwrap();
}

/// The shared cast: Alice (1), Bob (2), Carol (3); Alice's wall (10);
/// two posts by Alice (100 tagged #0, 101 tagged #1), one comment chain
/// under 100 (200 by Bob, 201 by Carol replying to 200), likes on 100
/// from Bob and Carol, like on 101 from Bob.
fn fixture() -> Store {
    let mut s = empty_world();
    add_person(&mut s, 1, "Alice", 1_000);
    add_person(&mut s, 2, "Bob", 1_000);
    add_person(&mut s, 3, "Carol", 1_000);
    s.insert_knows(1, 2, DateTime(2_000)).unwrap();
    add_wall(&mut s, 10, 1, 2_000);
    add_post(&mut s, 100, 1, 10, 10_000, vec![0]);
    add_post(&mut s, 101, 1, 10, 20_000, vec![1]);
    add_comment(&mut s, 200, 2, 100, -1, 11_000);
    add_comment(&mut s, 201, 3, -1, 200, 12_000);
    s.insert_like(2, 100, DateTime(13_000)).unwrap();
    s.insert_like(3, 100, DateTime(14_000)).unwrap();
    s.insert_like(2, 101, DateTime(21_000)).unwrap();
    s
}

#[test]
fn bi12_exact_rows() {
    let s = fixture();
    let rows = bi12::run(&s, &bi12::Params { date: Date::from_ymd(1970, 1, 1), like_threshold: 1 });
    // Only post 100 has > 1 like.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].message_id, 100);
    assert_eq!(rows[0].like_count, 2);
    assert_eq!(rows[0].first_name, "Alice");
    // Threshold 0: both posts and no comments (comments have 0 likes).
    let rows = bi12::run(&s, &bi12::Params { date: Date::from_ymd(1970, 1, 1), like_threshold: 0 });
    assert_eq!(
        rows.iter().map(|r| (r.message_id, r.like_count)).collect::<Vec<_>>(),
        vec![(100, 2), (101, 1)]
    );
}

#[test]
fn bi06_exact_score() {
    let s = fixture();
    let tag0 = s.tags.name[0].to_string();
    let rows = bi06::run(&s, &bi06::Params { tag: tag0 });
    // Alice's post 100 carries tag 0: 1 message, 1 direct reply, 2 likes
    // → score 1 + 2*1 + 10*2 = 23.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].person_id, 1);
    assert_eq!(rows[0].message_count, 1);
    assert_eq!(rows[0].reply_count, 1);
    assert_eq!(rows[0].like_count, 2);
    assert_eq!(rows[0].score, 23);
}

#[test]
fn bi14_exact_thread_counts() {
    let s = fixture();
    let rows = bi14::run(
        &s,
        &bi14::Params { begin: Date::from_ymd(1970, 1, 1), end: Date::from_ymd(1970, 1, 2) },
    );
    // Alice initiated 2 threads; thread of 100 holds 3 messages, thread
    // of 101 holds 1 → 4 total.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].person_id, 1);
    assert_eq!(rows[0].thread_count, 2);
    assert_eq!(rows[0].message_count, 4);
}

#[test]
fn ic07_recent_likers_exact() {
    let s = fixture();
    let rows = ic07::run(&s, &ic07::Params { person_id: 1 });
    // Bob's latest like is on 101 at t=21000; Carol's on 100 at t=14000.
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].person_id, 2);
    assert_eq!(rows[0].message_id, 101);
    assert_eq!(rows[0].like_creation_date, DateTime(21_000));
    assert!(!rows[0].is_new, "Bob is Alice's friend");
    assert_eq!(rows[1].person_id, 3);
    assert_eq!(rows[1].message_id, 100);
    assert!(rows[1].is_new, "Carol is a stranger");
    // Latency: like at 21000 on message created 20000 → 0 minutes
    // (truncated), like at 14000 on 10000 → 0 minutes too; check the
    // field is non-negative and consistent.
    for r in &rows {
        assert!(r.minutes_latency >= 0);
    }
}

#[test]
fn ic08_recent_replies_exact() {
    let s = fixture();
    let rows = ic08::run(&s, &ic08::Params { person_id: 1 });
    // Only comment 200 replies directly to Alice's messages (201
    // replies to Bob's comment).
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].comment_id, 200);
    assert_eq!(rows[0].person_id, 2);
    let bob_rows = ic08::run(&s, &ic08::Params { person_id: 2 });
    assert_eq!(bob_rows.len(), 1);
    assert_eq!(bob_rows[0].comment_id, 201);
    assert_eq!(bob_rows[0].person_id, 3);
}

#[test]
fn is2_thread_resolution_exact() {
    let s = fixture();
    // Carol's only message is comment 201; its root is post 100 by
    // Alice.
    let rows = short::is2::run(&s, &short::is2::Params { person_id: 3 });
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].message_id, 201);
    assert_eq!(rows[0].original_post_id, 100);
    assert_eq!(rows[0].original_post_author_id, 1);
    assert_eq!(rows[0].original_post_author_first_name, "Alice");
}

#[test]
fn is7_knows_flag_exact() {
    let s = fixture();
    let rows = short::is7::run(&s, &short::is7::Params { message_id: 100 });
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].reply_author_id, 2);
    assert!(rows[0].reply_author_knows_original, "Bob knows Alice");
    let rows = short::is7::run(&s, &short::is7::Params { message_id: 200 });
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].reply_author_id, 3);
    assert!(!rows[0].reply_author_knows_original, "Carol does not know Bob");
}

#[test]
fn empty_generated_world_is_sound() {
    let s = empty_world();
    assert_eq!(s.persons.len(), 0);
    assert_eq!(s.messages.len(), 0);
    assert!(!s.places.is_empty(), "static world present");
    s.validate_invariants().unwrap();
}
