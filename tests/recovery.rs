//! Recovery semantics (spec §6.3): after a crash, the system must come
//! back with every committed update present. The in-memory store's
//! durability story is "bulk dataset + update-stream replay": recovery
//! = reload the bulk CSVs and re-apply the stream up to the last
//! committed operation. These tests simulate the §6.3 procedure —
//! interrupt a run at an arbitrary point, recover, and verify the last
//! committed update (and everything before it) is present and nothing
//! after it leaked in.

use ldbc_snb::datagen::dictionaries::StaticWorld;
use ldbc_snb::datagen::stream::UpdateEvent;
use ldbc_snb::datagen::GeneratorConfig;
use ldbc_snb::store::bulk_store_and_stream;

fn config() -> GeneratorConfig {
    let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
    c.persons = 90;
    c
}

/// A coarse state fingerprint: entity and edge counts.
fn fingerprint(s: &ldbc_snb::store::Store) -> (usize, usize, usize, usize, usize, usize) {
    (
        s.persons.len(),
        s.forums.len(),
        s.messages.len(),
        s.knows.edge_count(),
        s.person_likes.edge_count(),
        s.forum_member.edge_count(),
    )
}

#[test]
fn recovery_replays_to_the_crash_point() {
    let c = config();
    let world = StaticWorld::build(c.seed);
    // "Measured run": apply a prefix of the stream, then crash.
    let (mut live, events) = bulk_store_and_stream(&c);
    let crash_at = events.len() * 2 / 3;
    for e in &events[..crash_at] {
        live.apply_event(e, &world).unwrap();
    }
    let committed = fingerprint(&live);
    drop(live); // the crash

    // Recovery: reload the bulk dataset and replay the same prefix.
    let (mut recovered, events2) = bulk_store_and_stream(&c);
    assert_eq!(events.len(), events2.len(), "deterministic stream");
    for e in &events2[..crash_at] {
        recovered.apply_event(e, &world).unwrap();
    }
    assert_eq!(fingerprint(&recovered), committed);
    recovered.validate_invariants().unwrap();

    // The last committed update is actually in the database (§6.3's
    // check), and the first uncommitted one is not.
    let check_present = |s: &ldbc_snb::store::Store, e: &UpdateEvent, expect: bool| match e {
        UpdateEvent::AddPerson(p) => assert_eq!(s.person_ix.contains_key(&p.id.0), expect),
        UpdateEvent::AddForum(f) => assert_eq!(s.forum_ix.contains_key(&f.id.0), expect),
        UpdateEvent::AddPost(m) | UpdateEvent::AddComment(m) => {
            assert_eq!(s.message_ix.contains_key(&m.id.0), expect)
        }
        UpdateEvent::AddKnows(k) => {
            let (a, b) = (s.person_ix.get(&k.a.0), s.person_ix.get(&k.b.0));
            if let (Some(&a), Some(&b)) = (a, b) {
                assert_eq!(s.knows.contains(a, b), expect);
            } else {
                assert!(!expect, "endpoints missing for a committed edge");
            }
        }
        // Likes/memberships can coincide with pre-existing edges; count
        // checks above already cover them.
        _ => {}
    };
    check_present(&recovered, &events2[crash_at - 1].event, true);
    check_present(&recovered, &events2[crash_at].event, false);
}

#[test]
fn recovery_through_csv_reload_matches_in_memory_path() {
    // Full §6.1.3 + §6.3 loop: serialize the bulk dataset to CSV, load
    // it back (a cold restart from disk), replay the stream, and
    // compare against the in-memory bulk + replay.
    use ldbc_snb::datagen::serializer::{serialize, CsvVariant};
    use ldbc_snb::store::load::load_csv_basic;

    let c = config();
    let world = StaticWorld::build(c.seed);
    let graph = ldbc_snb::datagen::generate(&c);
    let cut = c.stream_cut();
    let events = ldbc_snb::datagen::stream::build_update_streams(&graph, cut);

    let dir = std::env::temp_dir().join(format!("snb_recovery_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    serialize(&graph, &world, CsvVariant::Basic, cut, &dir).unwrap();
    let mut from_disk = load_csv_basic(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let (mut in_memory, _) = bulk_store_and_stream(&c);
    for e in &events {
        from_disk.apply_event(e, &world).unwrap();
        in_memory.apply_event(e, &world).unwrap();
    }
    assert_eq!(fingerprint(&from_disk), fingerprint(&in_memory));
    from_disk.validate_invariants().unwrap();

    // Workload-level equivalence after recovery.
    let gen = ldbc_snb::params::ParamGen::new(&in_memory, c.seed);
    for q in [1u8, 6, 12, 14, 20, 21] {
        for b in gen.bi_params(q, 2) {
            assert_eq!(
                ldbc_snb::bi::run(&from_disk, &b),
                ldbc_snb::bi::run(&in_memory, &b),
                "BI {q} differs after disk recovery"
            );
        }
    }
}
