//! Snapshot isolation, end to end: a reader pinned to a published
//! store version must see *exactly* that version — byte-identical
//! results over all 25 BI queries — no matter how hard a concurrent
//! writer churns inserts and deletes, and no matter how the store is
//! partitioned or how many other readers race it. The property is the
//! contract the whole lock-free read path rests on: versions are
//! immutable once published, and pinning one keeps it alive unchanged.

use std::sync::atomic::{AtomicBool, Ordering};

use proptest::prelude::*;

use ldbc_snb::bi::QuerySummary;
use ldbc_snb::datagen::dictionaries::StaticWorld;
use ldbc_snb::datagen::stream::UpdateEvent;
use ldbc_snb::datagen::GeneratorConfig;
use ldbc_snb::engine::QueryContext;
use ldbc_snb::params::ParamGen;
use ldbc_snb::store::{bulk_store_and_stream, DeleteOp, PartitionedStore, StoreHandle};

/// All 25 BI query summaries on a pinned snapshot (rows + result
/// fingerprint — the repo's byte-identity proxy for result sets).
fn run_all_25(
    snap: &ldbc_snb::store::StoreSnapshot,
    pool: &[ldbc_snb::bi::BiParams],
) -> Vec<QuerySummary> {
    let ctx = QueryContext::single_threaded();
    pool.iter().map(|p| ldbc_snb::bi::run_with(snap, &ctx, p)).collect()
}

proptest! {
    // Each case builds a store and replays a stream under concurrency;
    // keep the case count small and the dataset tiny.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn pinned_reader_is_isolated_from_churn(
        partitions in 1usize..4,
        reader_threads in 1usize..4,
    ) {
        let mut config = GeneratorConfig::for_scale_name("0.001").unwrap();
        config.persons = 70;
        let world = StaticWorld::build(config.seed);
        let (store, stream) = bulk_store_and_stream(&config);
        let pool: Vec<ldbc_snb::bi::BiParams> = {
            let gen = ParamGen::new(&store, config.seed);
            (1..=25u8).flat_map(|q| gen.bi_params(q, 1)).collect()
        };
        prop_assert_eq!(pool.len(), 25);

        let handle = StoreHandle::new(PartitionedStore::new(store, partitions));

        // Pin the base version and fingerprint it before any write.
        let pinned = handle.snapshot();
        let pinned_version = pinned.version();
        let baseline = run_all_25(&pinned, &pool);

        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            // Unpinned readers racing the writer on fresh snapshots:
            // they assert nothing about values (their version moves),
            // they exist to exercise pin/unpin under churn.
            for _ in 0..reader_threads {
                let handle = &handle;
                let done = &done;
                let pool = &pool;
                scope.spawn(move || {
                    let ctx = QueryContext::single_threaded();
                    let mut i = 0usize;
                    while !done.load(Ordering::Acquire) {
                        let snap = handle.snapshot();
                        let _ = ldbc_snb::bi::run_with(&snap, &ctx, &pool[i % pool.len()]);
                        i += 1;
                    }
                });
            }
            // Writer: inserts in stream order plus a delete for every
            // other like — every publish supersedes the pinned version.
            let writer = scope.spawn(|| {
                let mut pending: Vec<DeleteOp> = Vec::new();
                for (i, chunk) in stream.chunks(16).enumerate() {
                    for (j, event) in chunk.iter().enumerate() {
                        if let UpdateEvent::AddLikePost(like) = &event.event {
                            if (i * 16 + j).is_multiple_of(2) {
                                pending.push(DeleteOp::Like(like.person.0, like.message.0));
                            }
                        }
                    }
                    handle
                        .publish_with(|next| {
                            for event in chunk {
                                next.apply_event(event, &world)?;
                            }
                            if !next.date_index_fresh() {
                                next.rebuild_date_index();
                            }
                            Ok(())
                        })
                        .expect("churn insert batch");
                    if pending.len() >= 24 {
                        let ops = std::mem::take(&mut pending);
                        handle
                            .publish_with(|next| next.apply_deletes(&ops).map(|_| ()))
                            .expect("churn delete batch");
                    }
                }
            });
            // The probe: while the writer churns, the pinned snapshot
            // keeps answering with the base version's exact results.
            let mut probes = 0usize;
            while !writer.is_finished() || probes == 0 {
                let mid = run_all_25(&pinned, &pool);
                for (q, (got, want)) in mid.iter().zip(&baseline).enumerate() {
                    assert_eq!(
                        (got.rows, got.fingerprint),
                        (want.rows, want.fingerprint),
                        "pinned reader drifted on BI {} during churn",
                        q + 1
                    );
                }
                probes += 1;
            }
            writer.join().expect("writer");
            done.store(true, Ordering::Release);
            prop_assert!(probes > 0);
            Ok(())
        })?;

        // The world did move on: churn published new versions past the
        // pin, and the pinned version id never changed.
        prop_assert!(handle.version() > pinned_version, "writer never published");
        prop_assert_eq!(pinned.version(), pinned_version);
        // One final full pass after the churn is over.
        let after = run_all_25(&pinned, &pool);
        for (q, (got, want)) in after.iter().zip(&baseline).enumerate() {
            prop_assert_eq!(
                (got.rows, got.fingerprint),
                (want.rows, want.fingerprint),
                "pinned reader drifted on BI {} after churn", q + 1
            );
        }
        // Lock-free means lock-free: nobody ever hit the safety valve.
        prop_assert_eq!(handle.stats().reader_blocked, 0);
    }
}
