//! Determinism guarantees (spec §2.3.3): the whole pipeline — datagen,
//! load, parameter curation, query execution — is a pure function of
//! the seed, so "all Test Sponsors face the same dataset".

use ldbc_snb::datagen::GeneratorConfig;
use ldbc_snb::params::ParamGen;
use ldbc_snb::store::store_for_config;

fn config(seed: u64) -> GeneratorConfig {
    let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
    c.persons = 100;
    c.seed = seed;
    c
}

#[test]
fn full_pipeline_is_a_pure_function_of_the_seed() {
    let s1 = store_for_config(&config(7));
    let s2 = store_for_config(&config(7));
    // Store-level equality on every column that feeds queries.
    assert_eq!(s1.persons.id, s2.persons.id);
    assert_eq!(s1.persons.first_name, s2.persons.first_name);
    assert_eq!(s1.messages.id, s2.messages.id);
    assert_eq!(s1.messages.content, s2.messages.content);
    assert_eq!(s1.messages.creation_date, s2.messages.creation_date);
    assert_eq!(s1.forums.title, s2.forums.title);
    assert_eq!(s1.knows.edge_count(), s2.knows.edge_count());
    // Query-level: identical fingerprints for every BI query on the
    // same curated bindings.
    let g1 = ParamGen::new(&s1, 7);
    let g2 = ParamGen::new(&s2, 7);
    for q in ldbc_snb::driver::ALL_BI_QUERIES {
        let b1 = g1.bi_params(q, 3);
        let b2 = g2.bi_params(q, 3);
        assert_eq!(format!("{b1:?}"), format!("{b2:?}"), "BI {q} bindings differ");
        for (x, y) in b1.iter().zip(&b2) {
            assert_eq!(ldbc_snb::bi::run(&s1, x), ldbc_snb::bi::run(&s2, y), "BI {q}");
        }
    }
}

#[test]
fn every_bi_query_is_thread_count_invariant() {
    // The morsel-driven execution contract: results are bit-identical
    // for any thread count, because morsel assignment is static
    // round-robin and partials merge in deterministic worker order.
    use ldbc_snb::engine::QueryContext;
    let s = store_for_config(&config(7));
    let gen = ParamGen::new(&s, 7);
    let contexts = [QueryContext::new(1), QueryContext::new(2), QueryContext::new(4)];
    for q in ldbc_snb::driver::ALL_BI_QUERIES {
        for b in gen.bi_params(q, 2) {
            let baseline = ldbc_snb::bi::run_with(&s, &contexts[0], &b);
            for ctx in &contexts[1..] {
                assert_eq!(
                    baseline,
                    ldbc_snb::bi::run_with(&s, ctx, &b),
                    "BI {q} differs at {} threads",
                    ctx.threads()
                );
            }
            // And the parallel result still matches the single-threaded
            // naive oracle.
            assert_eq!(baseline, ldbc_snb::bi::run_naive(&s, &b), "BI {q} vs naive");
        }
    }
}

#[test]
fn scan_heavy_interactive_queries_are_thread_count_invariant() {
    use ldbc_snb::engine::QueryContext;
    let s = store_for_config(&config(7));
    let gen = ParamGen::new(&s, 7);
    let contexts = [QueryContext::new(1), QueryContext::new(2), QueryContext::new(4)];
    for q in [2u8, 3, 6, 9] {
        for b in gen.ic_params(q, 3) {
            let baseline = ldbc_snb::interactive::run_complex_with(&s, &contexts[0], &b);
            for ctx in &contexts[1..] {
                assert_eq!(
                    baseline,
                    ldbc_snb::interactive::run_complex_with(&s, ctx, &b),
                    "IC {q} differs at {} threads",
                    ctx.threads()
                );
            }
        }
    }
}

#[test]
fn different_seeds_give_different_networks() {
    let s1 = store_for_config(&config(1));
    let s2 = store_for_config(&config(2));
    assert_ne!(s1.persons.first_name, s2.persons.first_name);
    assert_ne!(s1.messages.len(), 0);
    // Same schema-level structure though: same static world.
    assert_eq!(s1.places.name, s2.places.name);
    assert_eq!(s1.tags.name, s2.tags.name);
    assert_eq!(s1.tag_classes.name, s2.tag_classes.name);
}

#[test]
fn turtle_and_csv_serializers_cover_the_same_records() {
    use ldbc_snb::datagen::dictionaries::StaticWorld;
    use ldbc_snb::datagen::serializer::{serialize, CsvVariant};
    use ldbc_snb::datagen::turtle::serialize_turtle;

    let c = config(3);
    let world = StaticWorld::build(c.seed);
    let graph = ldbc_snb::datagen::generate(&c);
    let cut = c.stream_cut();
    let dir = std::env::temp_dir().join(format!("snb_ttl_csv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    serialize(&graph, &world, CsvVariant::Basic, cut, &dir).unwrap();
    serialize_turtle(&graph, &world, cut, &dir).unwrap();

    let csv_persons = std::fs::read_to_string(dir.join("social_network/dynamic/person_0_0.csv"))
        .unwrap()
        .lines()
        .count()
        - 1;
    let ttl = std::fs::read_to_string(dir.join("social_network/0_ldbc_socialnet.ttl")).unwrap();
    let ttl_persons = ttl.matches("rdf:type snvoc:Person").count();
    assert_eq!(csv_persons, ttl_persons, "CSV and Turtle disagree on person count");
    let csv_posts = std::fs::read_to_string(dir.join("social_network/dynamic/post_0_0.csv"))
        .unwrap()
        .lines()
        .count()
        - 1;
    let ttl_posts = ttl.matches("rdf:type snvoc:Post").count();
    assert_eq!(csv_posts, ttl_posts);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deletes_then_queries_stay_consistent_with_rebuilt_world() {
    // Deleting an entity and re-running the workload must equal a world
    // that never contained what was deleted — checked structurally via
    // the validation oracle (optimized vs naive still agree after
    // deletes, so both engines see the same post-delete world).
    use ldbc_snb::store::DeleteOp;
    let c = config(11);
    let mut s = store_for_config(&c);
    let victim_person = s.persons.id[5];
    let victim_forum = s.forums.id[s.forums.len() / 2];
    s.apply_deletes(&[DeleteOp::Person(victim_person), DeleteOp::Forum(victim_forum)]).unwrap();
    let validated =
        ldbc_snb::driver::validate_all(&s, &ldbc_snb::driver::ALL_BI_QUERIES, 2, c.seed).unwrap();
    assert!(validated >= 25);
}
