//! Property-based tests (proptest) on the core data structures and
//! invariants, cross-crate.

use proptest::prelude::*;
use rustc_hash::FxHashSet;

use ldbc_snb::core::datetime::{civil_from_days, days_from_civil, Date};
use ldbc_snb::engine::topk::{sort_truncate, TopK};
use ldbc_snb::engine::traverse::floyd_warshall;
use ldbc_snb::params::curate;
use ldbc_snb::store::Adj;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Date round trip: any day number in a ±200-year window maps to a
    /// civil date and back.
    #[test]
    fn date_round_trip(days in -73_000i32..73_000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
        prop_assert!((1..=12u32).contains(&m));
        prop_assert!((1..=31u32).contains(&d));
    }

    /// Adding one day always advances the civil date lexicographically.
    #[test]
    fn dates_are_monotone(days in -73_000i32..73_000) {
        let a = Date(days).to_ymd();
        let b = Date(days + 1).to_ymd();
        prop_assert!(b > a);
    }

    /// Top-k agrees with sort-then-truncate for arbitrary inputs.
    #[test]
    fn topk_matches_sort_truncate(
        items in prop::collection::vec((0u64..100, 0u64..1000), 0..200),
        k in 0usize..25
    ) {
        let mut tk = TopK::new(k);
        for &(key, v) in &items {
            tk.push((key, v), v);
        }
        let expect = sort_truncate(
            items.iter().map(|&(key, v)| ((key, v), v)).collect(),
            k,
        );
        prop_assert_eq!(tk.into_sorted(), expect);
    }

    /// CSR adjacency reproduces an adjacency-list oracle, including
    /// after overflow inserts and compaction.
    #[test]
    fn adjacency_matches_oracle(
        base in prop::collection::vec((0u32..20, 0u32..20), 0..120),
        inserts in prop::collection::vec((0u32..20, 0u32..20), 0..40)
    ) {
        let edges: Vec<(u32, u32, ())> = base.iter().map(|&(s, t)| (s, t, ())).collect();
        let mut adj = Adj::from_edges(20, &edges);
        let mut oracle: Vec<Vec<u32>> = vec![Vec::new(); 20];
        for &(s, t) in &base {
            oracle[s as usize].push(t);
        }
        for &(s, t) in &inserts {
            adj.insert(s, t, ());
            oracle[s as usize].push(t);
        }
        for u in 0..20u32 {
            let got: Vec<u32> = adj.targets_of(u).collect();
            prop_assert_eq!(&got, &oracle[u as usize], "vertex {}", u);
            prop_assert_eq!(adj.degree(u), oracle[u as usize].len());
        }
        adj.compact();
        for u in 0..20u32 {
            let got: Vec<u32> = adj.targets_of(u).collect();
            prop_assert_eq!(&got, &oracle[u as usize], "post-compact vertex {}", u);
        }
    }

    /// Curation output is a subset with minimal factor spread compared
    /// with any other window of the same size.
    #[test]
    fn curation_minimises_spread(
        factors in prop::collection::vec(0u64..10_000, 1..80),
        k in 1usize..12
    ) {
        let cands: Vec<(usize, u64)> = factors.iter().copied().enumerate().collect();
        let picked = curate(&cands, k);
        let n = k.min(cands.len());
        prop_assert_eq!(picked.len(), n);
        // Distinct indices within range.
        let set: FxHashSet<usize> = picked.iter().copied().collect();
        prop_assert_eq!(set.len(), n);
        // Spread is minimal among sorted windows.
        let mut sorted = factors.clone();
        sorted.sort_unstable();
        let best = sorted.windows(n).map(|w| w[n - 1] - w[0]).min().unwrap();
        let mut picked_factors: Vec<u64> = picked.iter().map(|&i| factors[i]).collect();
        picked_factors.sort_unstable();
        let spread = picked_factors[n - 1] - picked_factors[0];
        prop_assert_eq!(spread, best);
    }

    /// `par_map_reduce` equals the sequential fold for any input length,
    /// thread count, and morsel size (the determinism contract of the
    /// morsel-driven execution layer).
    #[test]
    fn par_map_reduce_equals_sequential_fold(
        values in prop::collection::vec(0u64..1_000, 0..300),
        threads in 1usize..6,
        morsel in 1usize..50
    ) {
        use ldbc_snb::engine::QueryContext;
        let ctx = QueryContext::new(threads).with_morsel(morsel);
        let got = ctx.par_map_reduce(
            values.len(),
            || 0u64,
            |acc, range| {
                for &v in &values[range] {
                    *acc += v;
                }
            },
            |into, from| *into += from,
        );
        let want: u64 = values.iter().sum();
        prop_assert_eq!(got, want);

        // Order-preserving variant: par_scan stitches morsels back into
        // the sequential order.
        let scanned: Vec<u64> = ctx.par_scan(values.len(), |out, range| {
            out.extend(values[range].iter().map(|v| v * 2));
        });
        let expect: Vec<u64> = values.iter().map(|v| v * 2).collect();
        prop_assert_eq!(scanned, expect);
    }

    /// The stale-index linear-scan fallback and the fresh date index
    /// select the same message sets for arbitrary windows (the fallback
    /// returns ascending message order, the index date order — compare
    /// as sorted sets). Also pins that the access-path counters tell
    /// the two paths apart.
    #[test]
    fn stale_fallback_agrees_with_fresh_index(
        lo_day in 0u32..2000,
        len_days in 0u32..400
    ) {
        use ldbc_snb::bi::common::{messages_after, messages_before, messages_in};
        use ldbc_snb::core::Date as CDate;
        use ldbc_snb::engine::QueryMetrics;

        let fresh = window_test_store(false);
        let stale = window_test_store(true);
        let lo = CDate::from_ymd(2010, 1, 1).plus_days(lo_day as i32).at_midnight();
        let hi = CDate::from_ymd(2010, 1, 1).plus_days((lo_day + len_days) as i32).at_midnight();

        let fresh_metrics = QueryMetrics::new(1);
        let stale_metrics = QueryMetrics::new(1);
        let sort = |mut v: Vec<u32>| { v.sort_unstable(); v };
        let via_index = sort(messages_in(fresh, &fresh_metrics, lo, hi).to_vec());
        let via_scan = sort(messages_in(stale, &stale_metrics, lo, hi).to_vec());
        prop_assert_eq!(&via_index, &via_scan);
        prop_assert_eq!(
            sort(messages_before(fresh, &fresh_metrics, lo).to_vec()),
            sort(messages_before(stale, &stale_metrics, lo).to_vec())
        );
        prop_assert_eq!(
            sort(messages_after(fresh, &fresh_metrics, hi).to_vec()),
            sort(messages_after(stale, &stale_metrics, hi).to_vec())
        );
        let fresh_profile = fresh_metrics.snapshot();
        let stale_profile = stale_metrics.snapshot();
        prop_assert_eq!(fresh_profile.index_hits, 3);
        prop_assert_eq!(fresh_profile.index_fallbacks, 0);
        prop_assert_eq!(stale_profile.index_hits, 0);
        prop_assert_eq!(stale_profile.index_fallbacks, 3);
    }

    /// Partition × thread matrix determinism: for any
    /// (partition_count, thread_count) ∈ {1, 2, 4}² and any BI query,
    /// the partition-aligned parallel engine returns byte-identical
    /// results (rows and fingerprint) to the single-threaded naive
    /// reference oracle — sharded morsel plans must be invisible.
    #[test]
    fn partitioned_execution_matches_naive_oracle(
        p_idx in 0usize..3,
        t_idx in 0usize..3,
        q_idx in 0usize..25
    ) {
        use ldbc_snb::engine::QueryContext;
        use ldbc_snb::params::ParamGen;
        const SWEEP: [usize; 3] = [1, 2, 4];
        let store = window_test_store(false);
        let query = (q_idx + 1) as u8;
        let gen = ParamGen::new(store, 7);
        let ctx = QueryContext::new(SWEEP[t_idx]).with_partitions(SWEEP[p_idx]);
        for b in gen.bi_params(query, 2) {
            let got = ldbc_snb::bi::run_with(store, &ctx, &b);
            let want = ldbc_snb::bi::run_naive(store, &b);
            prop_assert_eq!(got.rows, want.rows, "BI {} rows under {:?}", query, (SWEEP[p_idx], SWEEP[t_idx]));
            prop_assert_eq!(
                got.fingerprint, want.fingerprint,
                "BI {} fingerprint under {:?}", query, (SWEEP[p_idx], SWEEP[t_idx])
            );
        }
    }
}

/// Shared stores for the window proptest: built once per process (the
/// generator is deterministic). The stale variant has the tail of its
/// date permutation index popped, forcing every window read down the
/// linear-scan fallback path.
fn window_test_store(stale: bool) -> &'static ldbc_snb::store::Store {
    use ldbc_snb::datagen::GeneratorConfig;
    use ldbc_snb::store::{store_for_config, Store};
    use std::sync::OnceLock;
    static FRESH: OnceLock<Store> = OnceLock::new();
    static STALE: OnceLock<Store> = OnceLock::new();
    let build = || {
        let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
        c.persons = 100;
        store_for_config(&c)
    };
    if stale {
        STALE.get_or_init(|| {
            let mut s = build();
            s.message_by_date.pop();
            assert!(!s.date_index_fresh());
            s
        })
    } else {
        FRESH.get_or_init(build)
    }
}

/// Shortest-path lengths from the engine's bidirectional BFS agree with
/// Floyd–Warshall on random graphs expressed through a real store. The
/// graph is built by inserting `knows` edges into a generated store
/// whose own edges are removed by construction (fresh persons only).
#[test]
fn bfs_agrees_with_floyd_warshall_on_random_graphs() {
    use ldbc_snb::core::rng::Rng;
    use ldbc_snb::core::Date as CDate;
    use ldbc_snb::core::DateTime;
    use ldbc_snb::datagen::GeneratorConfig;
    use ldbc_snb::store::{store_for_config, PersonInsert};

    let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
    c.persons = 10;
    let mut store = store_for_config(&c);
    // Add an isolated cohort of fresh persons and wire random edges
    // among them only.
    let city = store.places.id[store.persons.city[0] as usize];
    let base_ix = store.persons.len();
    let n = 24usize;
    for i in 0..n {
        store
            .insert_person(PersonInsert {
                id: 1_000_000 + i as u64,
                first_name: format!("P{i}"),
                last_name: "Prop".into(),
                gender: ldbc_snb::core::model::Gender::Male,
                birthday: CDate::from_ymd(1990, 1, 1),
                creation_date: DateTime(0),
                location_ip: String::new(),
                browser_used: "Firefox".into(),
                city_id: city,
                speaks: vec![],
                emails: vec![],
                tag_ids: vec![],
                study_at: vec![],
                work_at: vec![],
            })
            .unwrap();
    }
    let mut rng = Rng::new(12345);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            if rng.chance(0.12) {
                edges.push((a, b));
                store
                    .insert_knows(1_000_000 + a as u64, 1_000_000 + b as u64, DateTime(1))
                    .unwrap();
            }
        }
    }
    let oracle = floyd_warshall(n, &edges);
    for (a, row) in oracle.iter().enumerate() {
        for (b, &want) in row.iter().enumerate() {
            let got = ldbc_snb::engine::traverse::shortest_path_len(
                &store,
                ldbc_snb::engine::QueryMetrics::sink(),
                (base_ix + a) as u32,
                (base_ix + b) as u32,
            );
            if want >= u32::MAX / 4 {
                assert_eq!(got, -1, "{a}->{b}");
            } else {
                assert_eq!(got, want as i32, "{a}->{b}");
            }
        }
    }
}
