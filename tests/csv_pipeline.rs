//! Dataset-pipeline integration: serialize a generated network to the
//! CsvBasic layout, bulk-load it back (§6.1.3), and verify the two
//! stores are indistinguishable to the query workloads.

use ldbc_snb::datagen::dictionaries::StaticWorld;
use ldbc_snb::datagen::serializer::{serialize, CsvVariant};
use ldbc_snb::datagen::{generate, GeneratorConfig};
use ldbc_snb::params::ParamGen;
use ldbc_snb::store::{build_store, load::load_csv_basic};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("snb_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn csv_round_trip_preserves_all_query_results() {
    let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
    c.persons = 90;
    let world = StaticWorld::build(c.seed);
    let graph = generate(&c);
    let cut = c.stream_cut();
    let direct = build_store(&graph, &world, Some(cut));

    let dir = tempdir("roundtrip");
    serialize(&graph, &world, CsvVariant::Basic, cut, &dir).unwrap();
    let loaded = load_csv_basic(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let gen = ParamGen::new(&direct, c.seed);
    for q in ldbc_snb::driver::ALL_BI_QUERIES {
        for b in gen.bi_params(q, 2) {
            assert_eq!(
                ldbc_snb::bi::run(&direct, &b),
                ldbc_snb::bi::run(&loaded, &b),
                "BI {q} differs after CSV round trip"
            );
        }
    }
    for q in 1..=14u8 {
        for b in gen.ic_params(q, 2) {
            assert_eq!(
                ldbc_snb::interactive::run_complex(&direct, &b),
                ldbc_snb::interactive::run_complex(&loaded, &b),
                "IC {q} differs after CSV round trip"
            );
        }
    }
}

#[test]
fn all_serializer_variants_write_spec_file_counts() {
    let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
    c.persons = 40;
    let world = StaticWorld::build(c.seed);
    let graph = generate(&c);
    let cut = c.stream_cut();
    let dir = tempdir("variants");
    // Spec Tables 2.13-2.16 file counts.
    for (variant, expected) in [
        (CsvVariant::Basic, 33),
        (CsvVariant::MergeForeign, 20),
        (CsvVariant::Composite, 31),
        (CsvVariant::CompositeMergeForeign, 18),
    ] {
        let files = serialize(&graph, &world, variant, cut, &dir).unwrap();
        assert_eq!(files.len(), expected, "{variant:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn update_stream_files_parse_back_consistently() {
    use ldbc_snb::datagen::stream::{build_update_streams, write_update_streams};
    let mut c = GeneratorConfig::for_scale_name("0.001").unwrap();
    c.persons = 80;
    let world = StaticWorld::build(c.seed);
    let graph = generate(&c);
    let events = build_update_streams(&graph, c.stream_cut());
    let dir = tempdir("streams");
    write_update_streams(&events, &world, &graph, &dir).unwrap();
    let person =
        std::fs::read_to_string(dir.join("social_network/updateStream_0_0_person.csv")).unwrap();
    let forum =
        std::fs::read_to_string(dir.join("social_network/updateStream_0_0_forum.csv")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let total_lines = person.lines().count() + forum.lines().count();
    assert_eq!(total_lines, events.len());
    // Each line: t|t_d|op|..., non-decreasing t within each file.
    for content in [&person, &forum] {
        let mut last = i64::MIN;
        for line in content.lines() {
            let t: i64 = line.split('|').next().unwrap().parse().unwrap();
            assert!(t >= last);
            last = t;
        }
    }
}
