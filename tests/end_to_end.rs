//! End-to-end integration: generate → bulk-load → replay update
//! streams → run both workloads, with full optimized-vs-naive
//! cross-validation of the BI workload (the benchmark's validation
//! mode, spec §6.2).

use ldbc_snb::datagen::dictionaries::StaticWorld;
use ldbc_snb::datagen::GeneratorConfig;
use ldbc_snb::params::ParamGen;
use ldbc_snb::store::{bulk_store_and_stream, store_for_config};

fn config(persons: u64, seed: u64) -> GeneratorConfig {
    let mut c = GeneratorConfig::for_scale_name("0.001").expect("scale exists");
    c.persons = persons;
    c.seed = seed;
    c
}

#[test]
fn validate_all_bi_queries_on_two_seeds() {
    for seed in [531_389u64, 20_220_701] {
        let c = config(130, seed);
        let store = store_for_config(&c);
        let validated =
            ldbc_snb::driver::validate_all(&store, &ldbc_snb::driver::ALL_BI_QUERIES, 3, seed)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(validated >= 50, "seed {seed}: only {validated} bindings validated");
    }
}

#[test]
fn all_ic_queries_run_on_curated_bindings() {
    let c = config(130, 99);
    let store = store_for_config(&c);
    let gen = ParamGen::new(&store, c.seed);
    let mut nonzero = 0;
    for q in 1..=14u8 {
        for b in gen.ic_params(q, 3) {
            if ldbc_snb::interactive::run_complex(&store, &b) > 0 {
                nonzero += 1;
            }
        }
    }
    // Most curated bindings should produce results on a connected hub.
    assert!(nonzero >= 14, "only {nonzero} bindings returned rows");
}

#[test]
fn bi_results_identical_on_bulk_plus_replay_vs_full_load() {
    // Loading everything at once and loading the bulk part + replaying
    // the stream must be indistinguishable to every BI query.
    let c = config(110, 7);
    let full = store_for_config(&c);
    let (mut replayed, events) = bulk_store_and_stream(&c);
    let world = StaticWorld::build(c.seed);
    for e in &events {
        replayed.apply_event(e, &world).expect("replay applies");
    }
    let gen = ParamGen::new(&full, c.seed);
    for q in ldbc_snb::driver::ALL_BI_QUERIES {
        for b in gen.bi_params(q, 2) {
            let a = ldbc_snb::bi::run(&full, &b);
            let r = ldbc_snb::bi::run(&replayed, &b);
            assert_eq!(a, r, "BI {q} differs between full load and replay");
        }
    }
    // And compaction must not change results either.
    replayed.compact();
    for q in [2u8, 12, 14, 21, 25] {
        for b in gen.bi_params(q, 2) {
            assert_eq!(
                ldbc_snb::bi::run(&full, &b),
                ldbc_snb::bi::run(&replayed, &b),
                "BI {q} differs after compaction"
            );
        }
    }
}

#[test]
fn interactive_driver_full_run_is_consistent() {
    let c = config(100, 3);
    let (mut store, events) = bulk_store_and_stream(&c);
    let world = StaticWorld::build(c.seed);
    let report = ldbc_snb::driver::run_interactive(
        &mut store,
        &world,
        &events,
        &ldbc_snb::driver::InteractiveConfig::default(),
    )
    .expect("driver run succeeds");
    assert_eq!(report.updates_applied, events.len());
    assert!(report.complex_reads > 0);
    store.validate_invariants().expect("consistent after driven run");
    // The frequency mix: IC 1 (freq 26) should have ~updates/26
    // instances.
    let ic1 = report.log.records.iter().filter(|r| r.operation == "IC 1").count();
    let expected = events.len() / 26;
    assert!(ic1.abs_diff(expected) <= 1, "IC 1 instances {ic1} vs expected {expected}");
}

#[test]
fn generation_scales_monotonically() {
    let small = store_for_config(&config(60, 1)).stats();
    let large = store_for_config(&config(180, 1)).stats();
    assert!(large.nodes > small.nodes);
    assert!(large.edges > small.edges);
    assert!(large.posts > small.posts);
    // Per-person density should be roughly stable (within 3x).
    let d_small = small.edges as f64 / small.persons as f64;
    let d_large = large.edges as f64 / large.persons as f64;
    assert!(d_large < d_small * 3.0 && d_large > d_small / 3.0);
}

#[test]
fn validate_all_ic_queries_dual_engine() {
    // Both interactive engines (optimized and naive) must agree on
    // every curated binding — the IC analogue of the BI validation.
    let c = config(120, 17);
    let store = store_for_config(&c);
    let gen = ParamGen::new(&store, c.seed);
    let mut validated = 0;
    for q in 1..=14u8 {
        for b in gen.ic_params(q, 3) {
            ldbc_snb::interactive::validate_complex(&store, &b).unwrap_or_else(|e| panic!("{e}"));
            validated += 1;
        }
    }
    assert!(validated >= 28, "only {validated} IC bindings validated");
}
