//! The interactive side of the benchmark: bulk-load 90% of a network,
//! replay part of the withheld update stream, and observe the writes
//! through short and complex reads — read-your-writes across the
//! overflow insert path.
//!
//! ```text
//! cargo run --release --example interactive_session
//! ```

use ldbc_snb::datagen::dictionaries::StaticWorld;
use ldbc_snb::datagen::GeneratorConfig;
use ldbc_snb::interactive::{ic02, ic13, short};
use ldbc_snb::store::bulk_store_and_stream;
use snb_core::Date;

fn main() {
    let config = GeneratorConfig::for_scale_name("0.003").expect("known scale factor");
    let world = StaticWorld::build(config.seed);
    let (mut store, events) = bulk_store_and_stream(&config);
    println!(
        "bulk-loaded {} persons / {} messages; {} update events withheld",
        store.persons.len(),
        store.messages.len(),
        events.len()
    );

    // A person who exists in the bulk data.
    let hub = (0..store.persons.len() as u32)
        .max_by_key(|&p| store.knows.degree(p))
        .expect("non-empty store");
    let hub_id = store.persons.id[hub as usize];

    // Profile + friends before the replay.
    let profile = &short::is1::run(&store, &short::is1::Params { person_id: hub_id })[0];
    let friends_before = short::is3::run(&store, &short::is3::Params { person_id: hub_id }).len();
    println!(
        "\nIS 1: {} {} (born {}), {} friends before replay",
        profile.first_name, profile.last_name, profile.birthday, friends_before
    );

    // Replay the stream (IU 1-8 through the insert path).
    let mut applied_by_op = [0usize; 9];
    for e in &events {
        store.apply_event(e, &world).expect("replay applies cleanly");
        applied_by_op[e.event.operation_id() as usize] += 1;
    }
    println!("\nreplayed update stream:");
    for (op, count) in applied_by_op.iter().enumerate().skip(1) {
        println!("  IU {op}: {count} events");
    }

    let friends_after = short::is3::run(&store, &short::is3::Params { person_id: hub_id }).len();
    println!("\nIS 3: {friends_before} -> {friends_after} friends after replay");

    // Complex reads over the final state.
    let feed = ic02::run(
        &store,
        &ic02::Params { person_id: hub_id, max_date: Date::from_ymd(2013, 1, 1) },
    );
    println!("\nIC 2 — latest friend messages:");
    for r in feed.iter().take(5) {
        let preview: String = r.message_content.chars().take(40).collect();
        println!(
            "  [{}] {} {}: {preview}",
            r.message_creation_date, r.person_first_name, r.person_last_name
        );
    }

    let other = store.persons.id[(hub as usize + store.persons.len() / 2) % store.persons.len()];
    let path = ic13::run(&store, &ic13::Params { person1_id: hub_id, person2_id: other });
    println!("\nIC 13 — shortest path {hub_id} -> {other}: {}", path[0].shortest_path_length);

    store.validate_invariants().expect("store consistent after replay");
    println!("\nstore invariants hold after full replay ✓");
}
