//! The Datagen CLI: generate a dataset and write the full benchmark
//! artefact set (spec §2.3.4) — bulk CSVs in a chosen serializer
//! variant, update streams, and substitution-parameter files.
//!
//! ```text
//! cargo run --release --example export_dataset -- /tmp/snb_out 0.003 basic
//! ```

use ldbc_snb::datagen::dictionaries::StaticWorld;
use ldbc_snb::datagen::serializer::{serialize, CsvVariant};
use ldbc_snb::datagen::stream::{build_update_streams, write_update_streams};
use ldbc_snb::datagen::{generate, GeneratorConfig};
use ldbc_snb::params::{write_substitution_files, ParamGen};
use ldbc_snb::store::build_store;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = PathBuf::from(args.first().map(String::as_str).unwrap_or("/tmp/snb_dataset"));
    let sf = args.get(1).map(String::as_str).unwrap_or("0.003");
    let variant = match args.get(2).map(String::as_str).unwrap_or("basic") {
        "basic" => CsvVariant::Basic,
        "merge" => CsvVariant::MergeForeign,
        "composite" => CsvVariant::Composite,
        "composite-merge" => CsvVariant::CompositeMergeForeign,
        other => panic!("unknown variant {other:?}; use basic|merge|composite|composite-merge"),
    };

    let config = GeneratorConfig::for_scale_name(sf).expect("known scale factor");
    println!("generating SF {sf} ({} persons) into {} ...", config.persons, out.display());
    let world = StaticWorld::build(config.seed);
    let graph = generate(&config);
    let cut = config.stream_cut();

    let files = serialize(&graph, &world, variant, cut, &out).expect("serialize dataset");
    println!("dataset: {} CSV files under social_network/", files.len());

    let events = build_update_streams(&graph, cut);
    write_update_streams(&events, &world, &graph, &out).expect("write update streams");
    println!("update streams: {} events (cut at {})", events.len(), cut);

    // Substitution parameters are curated against the bulk store.
    let store = build_store(&graph, &world, Some(cut));
    let gen = ParamGen::new(&store, config.seed);
    let params = write_substitution_files(&gen, 10, &out).expect("write parameters");
    println!("substitution parameters: {} files", params.len());

    println!("\ndone. layout:");
    println!("  {}/social_network/static/ + dynamic/", out.display());
    println!("  {}/social_network/updateStream_0_0_{{person,forum}}.csv", out.display());
    println!("  {}/substitution_parameters/", out.display());
}
