//! A business-intelligence analyst session: the kind of questions the
//! BI workload's intro motivates, answered over a generated network.
//!
//! ```text
//! cargo run --release --example social_analytics [sf-name]
//! ```

use ldbc_snb::bi::{bi01, bi04, bi13, bi17, bi21};
use ldbc_snb::datagen::GeneratorConfig;
use ldbc_snb::store::store_for_config;
use snb_core::Date;

fn main() {
    let sf = std::env::args().nth(1).unwrap_or_else(|| "0.003".into());
    let config = GeneratorConfig::for_scale_name(&sf).expect("known scale factor");
    let store = store_for_config(&config);
    println!("analysing a network of {} persons\n", store.persons.len());

    // Q: what does our content mix look like? (BI 1, posting summary)
    let summary = bi01::run(&store, &bi01::Params { date: Date::from_ymd(2013, 1, 1) });
    println!("content mix by year / kind / length (BI 1):");
    for r in summary.iter().take(8) {
        println!(
            "  {} {:8} len-cat {}: {:6} messages ({:.1}% of total, avg {:.0} chars)",
            r.year,
            if r.is_comment { "comments" } else { "posts" },
            r.length_category,
            r.message_count,
            r.percentage_of_messages * 100.0,
            r.average_message_length,
        );
    }

    // Q: which forums drive discussion about musicians in China? (BI 4)
    let forums = bi04::run(
        &store,
        &bi04::Params { tag_class: "MusicalArtist".into(), country: "China".into() },
    );
    println!("\ntop music-talk forums moderated from China (BI 4):");
    for r in forums.iter().take(5) {
        println!("  {:5} posts  {}", r.post_count, r.forum_title);
    }

    // Q: what was trending month by month in India? (BI 13)
    let trends = bi13::run(&store, &bi13::Params { country: "India".into() });
    println!("\nmonthly tag trends in India (BI 13):");
    for r in trends.iter().take(6) {
        let tags: Vec<String> =
            r.popular_tags.iter().take(3).map(|(t, c)| format!("{t} ({c})")).collect();
        println!("  {}-{:02}: {}", r.year, r.month, tags.join(", "));
    }

    // Q: how tightly knit are national communities? (BI 17)
    println!("\nfriendship triangles per country (BI 17):");
    for country in ["China", "India", "United_States", "Germany"] {
        let t = bi17::run(&store, &bi17::Params { country: country.into() });
        println!("  {country}: {} triangles", t[0].count);
    }

    // Q: who signed up but never engages? (BI 21, zombies)
    let zombies = bi21::run(
        &store,
        &bi21::Params { country: "China".into(), end_date: Date::from_ymd(2012, 6, 1) },
    );
    println!("\nzombie accounts in China (BI 21): {} found", zombies.len());
    for z in zombies.iter().take(5) {
        println!(
            "  person {:>5}: score {:.2} ({} of {} likes from other zombies)",
            z.zombie_id, z.zombie_score, z.zombie_like_count, z.total_like_count
        );
    }
}
