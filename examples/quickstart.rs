//! Quickstart: generate a tiny social network, load the store, and run
//! a BI query end-to-end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ldbc_snb::bi::bi12;
use ldbc_snb::datagen::GeneratorConfig;
use ldbc_snb::store::store_for_config;
use snb_core::Date;

fn main() {
    // 1. Configure the generator: a named scale factor fixes the person
    //    count; everything else (3 simulated years from 2010, seed) has
    //    spec defaults.
    let config = GeneratorConfig::for_scale_name("0.003").expect("known scale factor");
    println!("generating {} persons (seed {}) ...", config.persons, config.seed);

    // 2. Generate + bulk-load into the columnar store in one call.
    let store = store_for_config(&config);
    let stats = store.stats();
    println!(
        "loaded: {} nodes, {} edges ({} posts, {} comments, {} knows edges)",
        stats.nodes, stats.edges, stats.posts, stats.comments, stats.knows
    );

    // 3. Run BI 12 ("Trending posts"): messages after a date with more
    //    than a given number of likes.
    let params = bi12::Params { date: Date::from_ymd(2011, 6, 1), like_threshold: 2 };
    let rows = bi12::run(&store, &params);
    println!(
        "\nBI 12 — trending posts after {} with > {} likes:",
        params.date, params.like_threshold
    );
    for r in rows.iter().take(10) {
        println!(
            "  {:>6}  {} {}  {} likes  ({})",
            r.message_id, r.first_name, r.last_name, r.like_count, r.creation_date
        );
    }
    println!("({} rows total)", rows.len());

    // 4. Cross-validate against the independent naive engine — the
    //    benchmark's validation mode.
    assert_eq!(rows, bi12::run_naive(&store, &params));
    println!("\nvalidation: optimized and naive engines agree ✓");
}
