#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bi_runtimes profile smoke-run"
SMOKE_JSON="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
trap 'rm -f "$SMOKE_JSON"' EXIT
SNB_BENCH_OUT="$SMOKE_JSON" \
  cargo run -q --release -p snb-bench --bin bi_runtimes -- 0.001 --profile \
  > /dev/null
# Schema check: the emitted JSON must carry every operator-counter field
# for all 25 queries at every sweep point (25 queries x 3 thread counts).
for key in min_us mean_us p50_us max_us morsels rows_scanned index_hits \
           index_fallbacks fallback_rows topk_offered topk_pruned \
           prune_rate edges_traversed; do
  count="$(grep -o "\"$key\":" "$SMOKE_JSON" | wc -l)"
  if [ "$count" -ne 75 ]; then
    echo "BENCH_bi.json schema check failed: key '$key' appears $count times, want 75" >&2
    exit 1
  fi
done
# A fresh bulk-loaded store must never take the linear-scan fallback.
if grep -qE '"index_fallbacks": [1-9]' "$SMOKE_JSON"; then
  echo "BENCH_bi.json reports stale-index fallbacks on a fresh store" >&2
  exit 1
fi

echo "CI OK"
