#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bi_runtimes profile smoke-run"
SMOKE_JSON="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
SERVICE_JSON="$(mktemp /tmp/service_smoke.XXXXXX.json)"
SERVER_OUT="$(mktemp /tmp/server_smoke.XXXXXX.out)"
ACCESS_LOG="$(mktemp /tmp/server_smoke.XXXXXX.jsonl)"
STALL_OUT="$(mktemp /tmp/stall_smoke.XXXXXX.out)"
STALL_LOG="$(mktemp /tmp/stall_smoke.XXXXXX.jsonl)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$SMOKE_JSON" "$SERVICE_JSON" "$SERVER_OUT" "$ACCESS_LOG" \
        "$STALL_OUT" "$STALL_LOG"
}
trap cleanup EXIT
SNB_BENCH_OUT="$SMOKE_JSON" \
  cargo run -q --release -p snb-bench --bin bi_runtimes -- 0.001 --profile \
  > /dev/null
# Schema check: the emitted JSON must carry every operator-counter field
# for all 25 queries at every sweep point (25 queries x 3 thread counts).
for key in min_us mean_us p50_us max_us morsels rows_scanned index_hits \
           index_fallbacks fallback_rows topk_offered topk_pruned \
           prune_rate edges_traversed; do
  count="$(grep -o "\"$key\":" "$SMOKE_JSON" | wc -l)"
  if [ "$count" -ne 75 ]; then
    echo "BENCH_bi.json schema check failed: key '$key' appears $count times, want 75" >&2
    exit 1
  fi
done
# A fresh bulk-loaded store must never take the linear-scan fallback.
if grep -qE '"index_fallbacks": [1-9]' "$SMOKE_JSON"; then
  echo "BENCH_bi.json reports stale-index fallbacks on a fresh store" >&2
  exit 1
fi
# PR 3: the JSON must carry the run-metadata block.
grep -q '"meta": {"git_commit":' "$SMOKE_JSON" || {
  echo "BENCH_bi.json is missing the meta block" >&2; exit 1; }

echo "==> partition-sweep determinism (store shards 1/2/4)"
# bi_runtimes sweeps the partition count over the SNB_PARTITIONS values
# {1, 2, 4} and embeds one folded fingerprint per point — sharding must
# be invisible in the results, so exactly one distinct value may appear.
for p in 1 2 4; do
  grep -q "\"partitions\": $p," "$SMOKE_JSON" || {
    echo "BENCH_bi.json partition_sweep is missing partitions=$p" >&2; exit 1; }
done
distinct="$(grep -o '"fingerprint": "0x[0-9a-f]*"' "$SMOKE_JSON" | sort -u | wc -l)"
if [ "$distinct" -ne 1 ]; then
  echo "partition sweep fingerprints diverge ($distinct distinct values)" >&2
  exit 1
fi
# Run metadata must record the resolved partition knob.
grep -q '"partitions_resolved":' "$SMOKE_JSON" || {
  echo "BENCH_bi.json meta is missing partitions_resolved" >&2; exit 1; }

echo "==> service_load in-process smoke (oracle verification, 2 shards)"
# Closed-loop drive with per-request result verification against the
# in-process power-run oracle; a nonzero exit means protocol errors or
# a fingerprint divergence. SNB_PARTITIONS=2 serves from a two-shard
# PartitionedStore while the oracle is unpartitioned — any divergence
# introduced by sharding fails the run.
SNB_SERVICE_OUT="$SERVICE_JSON" SNB_PARTITIONS=2 \
  cargo run -q --release -p snb-bench --bin service_load -- 0.001 \
  --clients 4 --duration 2s > /dev/null
grep -q '"partitions": 2' "$SERVICE_JSON" || {
  echo "BENCH_service.json config is missing the partition count" >&2; exit 1; }
grep -q '"partitions_resolved": 2' "$SERVICE_JSON" || {
  echo "BENCH_service.json meta is missing partitions_resolved" >&2; exit 1; }

echo "==> interference smoke (lock-free read path under concurrent writes)"
# E15: a write-free baseline window, then the same read load while the
# writer publishes store versions. The baseline must publish nothing
# (asserted in-process), a version must be published in the write
# window (ditto), and no snapshot reader may ever hit the retry safety
# valve — reader_blocked > 0 means the read path regressed to blocking.
INTERF_JSON="$(mktemp /tmp/interf_smoke.XXXXXX.json)"
SNB_SERVICE_OUT="$INTERF_JSON" \
  cargo run -q --release -p snb-bench --bin service_load -- 0.001 \
  --interference --clients 2 --duration 1500ms > /dev/null
for key in interference baseline with_writes read_p99_ratio \
           versions_published peak_live_snapshots store_version; do
  grep -q "\"$key\":" "$INTERF_JSON" || {
    echo "interference JSON is missing key '$key'" >&2
    rm -f "$INTERF_JSON"; exit 1; }
done
grep -q '"reader_blocked": 0' "$INTERF_JSON" || {
  echo "a snapshot reader hit the blocked safety valve during interference" >&2
  rm -f "$INTERF_JSON"; exit 1; }
rm -f "$INTERF_JSON"

echo "==> snb-server smoke (overload shed, deadline miss, graceful shutdown)"
# Ephemeral port, one worker, an undersized queue: the overload burst
# must shed (not buffer without bound) and the microsecond-deadline
# burst must answer DeadlineExceeded (not hang).
SNB_ACCESS_LOG="$ACCESS_LOG" \
  cargo run -q --release -p snb-server --bin snb-server -- 0.001 \
  --port 0 --workers 1 --queue-cap 8 > "$SERVER_OUT" 2>/dev/null &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 240); do
  ADDR="$(grep -o '127\.0\.0\.1:[0-9]*' "$SERVER_OUT" | head -1 || true)"
  [ -n "$ADDR" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "snb-server exited before listening" >&2; exit 1
  fi
  sleep 0.5
done
[ -n "$ADDR" ] || { echo "snb-server never started listening" >&2; exit 1; }
SNB_SERVICE_OUT="$SERVICE_JSON" \
  cargo run -q --release -p snb-bench --bin service_load -- 0.001 \
  --clients 4 --duration 2s --connect "$ADDR" --exercise-edges > /dev/null
# Schema + edge-case assertions on BENCH_service.json.
for key in meta config latency_us throughput outcomes p50 p95 p99 \
           offered_qps achieved_qps burst_shed burst_deadline_missed; do
  grep -q "\"$key\":" "$SERVICE_JSON" || {
    echo "BENCH_service.json is missing key '$key'" >&2; exit 1; }
done
shed="$(grep -o '"burst_shed": [0-9]*' "$SERVICE_JSON" | grep -o '[0-9]*$')"
missed="$(grep -o '"burst_deadline_missed": [0-9]*' "$SERVICE_JSON" | grep -o '[0-9]*$')"
[ "$shed" -ge 1 ] || { echo "overload burst shed nothing (shed=$shed)" >&2; exit 1; }
[ "$missed" -ge 1 ] || { echo "deadline burst missed nothing (missed=$missed)" >&2; exit 1; }
# Graceful drain-then-shutdown: SIGTERM must produce a clean exit and a
# flushed access log.
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "snb-server did not exit cleanly on SIGTERM" >&2; exit 1
fi
SERVER_PID=""
[ -s "$ACCESS_LOG" ] || { echo "access log was not flushed on shutdown" >&2; exit 1; }
grep -q '"outcome": "ok"' "$ACCESS_LOG" || {
  echo "access log has no served requests" >&2; exit 1; }
# Every record must carry the snapshot-read provenance fields.
grep -q '"store_version":' "$ACCESS_LOG" || {
  echo "access log records are missing store_version" >&2; exit 1; }
grep -q '"snapshot_age_us":' "$ACCESS_LOG" || {
  echo "access log records are missing snapshot_age_us" >&2; exit 1; }

echo "==> chaos recovery smoke (WAL + SIGKILL + dedupe + oracle equality)"
# Gate on the WAL checksum/truncation unit tests before paying for the
# full chaos run — a broken record format makes the rest meaningless.
cargo test -q --release -p snb-server --lib wal:: > /dev/null
# The harness spawns snb-server itself (ephemeral port, temp WAL dir),
# SIGKILLs it at four injected fault points (WAL tears, apply panic,
# torn store-image write), restarts it, resubmits unacked batches, and
# verifies the recovered store against an acked-batches oracle over all
# 25 BI queries. Nonzero exit = lost ack, duplicate application, torn
# image landing, or result divergence.
CHAOS_JSON="$(mktemp /tmp/chaos_smoke.XXXXXX.json)"
SNB_SERVICE_OUT="$CHAOS_JSON" \
  cargo run -q --release -p snb-bench --bin service_load -- 0.001 --chaos \
  --server-bin target/release/snb-server > /dev/null
for key in chaos phases dedupes lost_acks queries_verified mismatches; do
  grep -q "\"$key\":" "$CHAOS_JSON" || {
    echo "chaos JSON is missing key '$key'" >&2; rm -f "$CHAOS_JSON"; exit 1; }
done
grep -q '"lost_acks": 0' "$CHAOS_JSON" || {
  echo "chaos run lost an acknowledged batch" >&2; rm -f "$CHAOS_JSON"; exit 1; }
grep -q '"mismatches": 0' "$CHAOS_JSON" || {
  echo "recovered store diverges from the acked-batches oracle" >&2
  rm -f "$CHAOS_JSON"; exit 1; }
rm -f "$CHAOS_JSON"

echo "==> loading smoke (streaming ingest + packed strings + image recovery, E19)"
# The binary itself hard-fails below the 2x person-string gate, on a
# broken recovery curve (image tail > snapshot interval), and on
# oracle divergence at the deepest history; CI re-checks the JSON
# schema and pins an absolute bytes-per-person ceiling so a footprint
# regression can't hide behind a still-passing ratio.
LOADING_JSON="$(mktemp /tmp/loading_smoke.XXXXXX.json)"
SNB_SERVICE_OUT="$LOADING_JSON" \
  cargo run -q --release -p snb-bench --bin service_load -- 0.001 --loading \
  > /dev/null
for key in loading streaming materialized strings recovery oracle \
    person_ratio bytes_per_person_packed verified_history peak_rss_bytes; do
  grep -q "\"$key\":" "$LOADING_JSON" || {
    echo "loading JSON is missing key '$key'" >&2; rm -f "$LOADING_JSON"; exit 1; }
done
# Image-anchored recovery points must replay a bounded tail (0 here:
# every tested history lands exactly on a compaction point).
grep -q '"tail_replayed": 0' "$LOADING_JSON" || {
  echo "no image-anchored recovery point with a bounded tail" >&2
  rm -f "$LOADING_JSON"; exit 1; }
BPP="$(sed -n 's/.*"bytes_per_person_packed": \([0-9.]*\).*/\1/p' "$LOADING_JSON" | head -1)"
awk -v bpp="$BPP" 'BEGIN { exit !(bpp > 0 && bpp <= 120) }' || {
  echo "packed person-string footprint regressed: $BPP bytes/person (ceiling 120)" >&2
  rm -f "$LOADING_JSON"; exit 1; }
rm -f "$LOADING_JSON"

echo "==> read-path chaos (conn.read.stall -> typed conn_stalled outcome)"
# A connection goes quiet while the armed stall wedges its handler in
# the read path; the idle deadline must trip and the close must land in
# the access log with the typed conn_stalled outcome (not a hang, not a
# silent drop).
SNB_ACCESS_LOG="$STALL_LOG" SNB_FAULTS='conn.read.stall=stall:800@h1' \
  cargo run -q --release -p snb-server --bin snb-server -- 0.001 \
  --port 0 --workers 1 --conn-timeout-ms 300 > "$STALL_OUT" 2>/dev/null &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 240); do
  ADDR="$(grep -o '127\.0\.0\.1:[0-9]*' "$STALL_OUT" | head -1 || true)"
  [ -n "$ADDR" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "snb-server (stall stage) exited before listening" >&2; exit 1
  fi
  sleep 0.5
done
[ -n "$ADDR" ] || { echo "snb-server (stall stage) never listened" >&2; exit 1; }
PORT="${ADDR##*:}"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
sleep 2
exec 3<&- 3>&-
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "snb-server (stall stage) did not exit cleanly on SIGTERM" >&2; exit 1
fi
SERVER_PID=""
grep -q '"outcome": "conn_stalled"' "$STALL_LOG" || {
  echo "access log has no conn_stalled outcome for the stalled connection" >&2
  exit 1; }

echo "==> connection sweep smoke (reactor ladder + starvation gate)"
# E16 on a small ladder: the reactor must hold every level's connections
# concurrently open (conn_peak is asserted in-process), the per-level
# JSON must carry the full latency/QPS/per-lane schema, and the BI-flood
# phase must shed zero short reads — the sweep binary itself exits
# nonzero if the starvation gate is violated. The read path must stay
# lock-free throughout (reader_blocked == 0).
SWEEP_JSON="$(mktemp /tmp/sweep_smoke.XXXXXX.json)"
SNB_SERVICE_OUT="$SWEEP_JSON" \
  cargo run -q --release -p snb-bench --bin service_load -- 0.001 \
  --sweep --sweep-levels 1,8,64 --sweep-duration 500ms > /dev/null
for key in sweep levels flood connections error_rate qps p50_us p90_us \
           p99_us lanes short heavy write short_shed conn_peak; do
  grep -q "\"$key\":" "$SWEEP_JSON" || {
    echo "sweep JSON is missing key '$key'" >&2; rm -f "$SWEEP_JSON"; exit 1; }
done
grep -q '"short_shed": 0' "$SWEEP_JSON" || {
  echo "short reads were shed during the BI-flood phase" >&2
  rm -f "$SWEEP_JSON"; exit 1; }
grep -q '"reader_blocked": 0' "$SWEEP_JSON" || {
  echo "a snapshot reader hit the blocked safety valve during the sweep" >&2
  rm -f "$SWEEP_JSON"; exit 1; }
rm -f "$SWEEP_JSON"

echo "==> replication smoke (log shipping, SIGKILL failover, oracle equality)"
# E17: one primary + two follower processes over the log-shipping port.
# The harness measures cold-WAL catch-up, samples replication lag while
# writes stream, ladders read throughput from one node to the cluster
# (the 1.8x gate self-waives below 4 cores — recorded as
# scaling_gated), then SIGKILLs the primary right after an ack,
# promotes a follower over the replication port, replays the client
# outbox (seq-dedupe absorbs whatever shipped), and verifies all 25 BI
# queries on the promoted node against an every-batch oracle. The
# binary exits nonzero on any stuck catch-up, refused promote, lost
# record, or fingerprint divergence.
REPL_JSON="$(mktemp /tmp/repl_smoke.XXXXXX.json)"
SNB_SERVICE_OUT="$REPL_JSON" \
  cargo run -q --release -p snb-bench --bin service_load -- 0.001 --replication \
  --followers 2 --server-bin target/release/snb-server > /dev/null
for key in replication catch_up stale_read_refusals lag_records read_scaling \
           scaling scaling_gated failover writable_from failover_ms \
           resubmitted queries_verified mismatches; do
  grep -q "\"$key\":" "$REPL_JSON" || {
    echo "replication JSON is missing key '$key'" >&2; rm -f "$REPL_JSON"; exit 1; }
done
grep -q '"mismatches": 0' "$REPL_JSON" || {
  echo "promoted node diverges from the every-batch oracle" >&2
  rm -f "$REPL_JSON"; exit 1; }
rm -f "$REPL_JSON"

echo "==> split-brain smoke (net.partition, fencing epochs, auto re-subscribe)"
# E18: the primary is black-holed mid-traffic by a deterministic
# net.partition fault (sockets stay open, bytes vanish), a follower is
# promoted at a bumped fencing epoch with the sibling list, and writes
# keep hitting both nodes. Hard gates: the zombie ex-primary acks ZERO
# post-promotion writes (in-window writes are black-holed; post-heal
# the announce fences it into typed terminal refusals), every
# pre-partition acked write survives on the new primary, the surviving
# follower re-subscribes to the announced primary without operator
# re-pointing, the fenced redirect is followed client-side, and both
# survivors answer all 25 BI queries identically to an every-batch
# oracle. The binary exits nonzero on any gate; the JSON greps pin the
# contract keys so a silently skipped phase cannot pass.
SB_JSON="$(mktemp /tmp/splitbrain_smoke.XXXXXX.json)"
SNB_SERVICE_OUT="$SB_JSON" \
  cargo run -q --release -p snb-bench --bin service_load -- 0.001 --split-brain \
  --server-bin target/release/snb-server > /dev/null
for key in failover partitioned_at_seq writable_from epoch promote_ms first_ack_ms \
           resubscribe_ms fenced_after_ms zombie_write_attempts fenced_rejects_observed \
           redirect_followed queries_verified; do
  grep -q "\"$key\":" "$SB_JSON" || {
    echo "split-brain JSON is missing key '$key'" >&2; rm -f "$SB_JSON"; exit 1; }
done
grep -q '"zombie_acks_after_promotion": 0' "$SB_JSON" || {
  echo "the fenced ex-primary acked writes after promotion (split-brain)" >&2
  rm -f "$SB_JSON"; exit 1; }
grep -q '"lost_acked_writes": 0' "$SB_JSON" || {
  echo "acked writes are missing from the promoted primary" >&2
  rm -f "$SB_JSON"; exit 1; }
grep -q '"mismatches": 0' "$SB_JSON" || {
  echo "survivors diverge from the every-batch oracle after failover" >&2
  rm -f "$SB_JSON"; exit 1; }
rm -f "$SB_JSON"

echo "CI OK"
