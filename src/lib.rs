//! # ldbc-snb
//!
//! Umbrella crate for the Rust reproduction of the LDBC Social Network
//! Benchmark (Business Intelligence workload). Re-exports every component
//! crate; see `README.md` for the architecture overview and `DESIGN.md`
//! for the system inventory and per-experiment index.

pub use snb_bi as bi;
pub use snb_core as core;
pub use snb_datagen as datagen;
pub use snb_driver as driver;
pub use snb_engine as engine;
pub use snb_interactive as interactive;
pub use snb_params as params;
pub use snb_server as server;
pub use snb_store as store;
